"""Tests for the synthetic workload generator and the cost model."""

import pytest

from repro.ir.module import MArg, MConst, MFunction
from repro.workload import (
    WorkloadConfig,
    function_cost,
    generate_module,
    instruction_cost,
    module_cost,
    speedup,
)
from repro.workload.costmodel import OPCODE_COST


class TestGenerator:
    def test_deterministic(self):
        a = generate_module(WorkloadConfig(seed=5, functions=10))
        b = generate_module(WorkloadConfig(seed=5, functions=10))
        assert repr(a.functions[3]) == repr(b.functions[3])

    def test_different_seeds_differ(self):
        a = generate_module(WorkloadConfig(seed=5, functions=5))
        b = generate_module(WorkloadConfig(seed=6, functions=5))
        assert repr(a.functions[0]) != repr(b.functions[0])

    def test_all_functions_ssa_valid(self):
        module = generate_module(WorkloadConfig(seed=9, functions=30))
        for fn in module.functions:
            fn.verify()
            assert fn.ret is not None

    def test_respects_function_count(self):
        module = generate_module(WorkloadConfig(seed=1, functions=17))
        assert len(module.functions) == 17

    def test_widths_sampled_from_config(self):
        module = generate_module(
            WorkloadConfig(seed=1, functions=20, widths=(4, 8))
        )
        widths = {fn.args[0].width for fn in module.functions}
        assert widths <= {4, 8}
        assert len(widths) == 2

    def test_functions_are_executable(self):
        import random

        from repro.ir import intops
        from repro.ir.interp import run_function

        module = generate_module(WorkloadConfig(seed=12, functions=10))
        rng = random.Random(0)
        executed = 0
        for fn in module.functions:
            args = {a.name: rng.randrange(1 << a.width) for a in fn.args}
            try:
                run_function(fn, args)
                executed += 1
            except intops.UndefinedBehavior:
                pass
        assert executed >= 5  # most random programs run fine

    def test_pattern_rate_zero_still_generates(self):
        module = generate_module(
            WorkloadConfig(seed=2, functions=5, pattern_rate=0.0)
        )
        assert module.instruction_count() > 0


class TestCostModel:
    def test_every_opcode_priced(self):
        for op in ("add", "mul", "udiv", "select", "zext"):
            assert op in OPCODE_COST

    def test_division_dominates(self):
        assert OPCODE_COST["sdiv"] > OPCODE_COST["mul"] > OPCODE_COST["add"]

    def test_fp_opcodes_priced(self):
        # the FP additions mirror the integer shape: division dominates
        for op in ("fadd", "fsub", "fmul", "fdiv", "frem", "fcmp"):
            assert op in OPCODE_COST
        assert OPCODE_COST["fdiv"] > OPCODE_COST["fmul"] > OPCODE_COST["fcmp"]

    def test_memory_and_cast_opcodes_priced(self):
        for op in ("load", "store", "alloca", "gep", "bitcast",
                   "fpext", "fptrunc", "sitofp", "fptosi"):
            assert op in OPCODE_COST

    def test_unknown_opcode_falls_back(self):
        from repro.workload.costmodel import DEFAULT_COST, opcode_cost

        # unknown opcodes must neither crash nor be accidentally free
        assert opcode_cost("some-future-opcode") == DEFAULT_COST
        assert DEFAULT_COST > 0
        assert opcode_cost("add") == OPCODE_COST["add"]

    def test_instruction_cost_mixed_ir(self):
        from repro.workload.costmodel import instruction_cost

        fn = MFunction("f", [MArg("%x", 16)])
        inst = fn.add("fmul", [MConst(2, 16), MConst(3, 16)], 16)
        assert instruction_cost(inst) == OPCODE_COST["fmul"]

    def test_function_cost_sums(self):
        fn = MFunction("f", [MArg("%x", 8)])
        fn.add("add", [fn.args[0], MConst(1, 8)], 8)
        fn.add("udiv", [fn.args[0], MConst(2, 8)], 8)
        assert function_cost(fn) == OPCODE_COST["add"] + OPCODE_COST["udiv"]

    def test_module_cost(self):
        module = generate_module(WorkloadConfig(seed=4, functions=4))
        assert module_cost(module) == sum(
            function_cost(f) for f in module.functions
        )

    def test_speedup(self):
        assert speedup(100.0, 90.0) == pytest.approx(0.1)
        assert speedup(0.0, 10.0) == 0.0

    def test_optimization_reduces_cost(self):
        from repro.opt import PeepholePass, compile_opts
        from repro.suite import load_all_flat

        module = generate_module(WorkloadConfig(seed=31, functions=20))
        before = module_cost(module)
        PeepholePass(compile_opts(load_all_flat())).run_module(module)
        assert module_cost(module) < before
