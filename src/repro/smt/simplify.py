"""Global term simplification (rewrite-to-fixpoint).

The smart constructors in :mod:`repro.smt.terms` perform *local*
simplification at construction time.  This module adds a second layer:
a bottom-up rewriting pass applying non-local rules that only pay off on
whole verification conditions, e.g.

* ``ite`` fusion: ``ite(c, f(x), f(y)) → f(ite(c, x, y))`` for unary f;
* comparison folding against ``ite`` arms with constant branches;
* xor/and/or chains re-associated so constants meet and fold;
* double arithmetic negation and subtraction normalization.

All rules are proven semantics-preserving by the property tests in
``tests/smt/test_simplify.py``, which compare against the evaluator over
full input spaces.  The verifier calls :func:`simplify` on each query
right before bit-blasting (disable with ``Config.simplify_queries``).
"""

from __future__ import annotations

from typing import Dict, Optional

from . import terms as T
from .terms import Term

_UNARY_FUSABLE = {T.OP_BVNOT, T.OP_BVNEG}


def _rule_ite_fuse_unary(t: Term) -> Optional[Term]:
    """ite(c, op(x), op(y)) -> op(ite(c, x, y)) for cheap unary ops."""
    if t.op != T.OP_ITE:
        return None
    c, a, b = t.args
    if a.op in _UNARY_FUSABLE and a.op == b.op:
        inner = T.ite(c, a.args[0], b.args[0])
        return T.bvnot(inner) if a.op == T.OP_BVNOT else T.bvneg(inner)
    return None


def _rule_eq_ite_const(t: Term) -> Optional[Term]:
    """(= (ite c x y) k) with constant arms folds to c or !c."""
    if t.op != T.OP_EQ:
        return None
    lhs, rhs = t.args
    if rhs.op == T.OP_ITE and lhs.op == T.OP_BVCONST:
        lhs, rhs = rhs, lhs
    if lhs.op != T.OP_ITE or rhs.op != T.OP_BVCONST:
        return None
    c, x, y = lhs.args
    if x.op == T.OP_BVCONST and y.op == T.OP_BVCONST:
        hit_x = x.data == rhs.data
        hit_y = y.data == rhs.data
        if hit_x and hit_y:
            return T.TRUE
        if hit_x:
            return c
        if hit_y:
            return T.not_(c)
        return T.FALSE
    return None


def _rule_reassoc_const(t: Term) -> Optional[Term]:
    """(op (op x k1) k2) -> (op x (k1 op k2)) for assoc-commutative ops."""
    builders = {
        T.OP_BVADD: T.bvadd,
        T.OP_BVMUL: T.bvmul,
        T.OP_BVAND: T.bvand,
        T.OP_BVOR: T.bvor,
        T.OP_BVXOR: T.bvxor,
    }
    build = builders.get(t.op)
    if build is None:
        return None
    a, b = t.args
    if b.op != T.OP_BVCONST or a.op != t.op:
        return None
    x, k1 = a.args
    if k1.op != T.OP_BVCONST:
        return None
    return build(x, build(k1, b))


def _rule_sub_to_add_const(t: Term) -> Optional[Term]:
    """(bvsub x k) -> (bvadd x -k): exposes reassociation with adds."""
    if t.op != T.OP_BVSUB:
        return None
    a, b = t.args
    if b.op == T.OP_BVCONST and b.data != 0:
        return T.bvadd(a, T.bv_const(-b.data, b.width))
    return None


def _rule_not_of_cmp(t: Term) -> Optional[Term]:
    """(not (bvult a b)) -> (bvule b a), and friends."""
    if t.op != T.OP_NOT:
        return None
    inner = t.args[0]
    flip = {
        T.OP_ULT: T.ule,
        T.OP_ULE: T.ult,
        T.OP_SLT: T.sle,
        T.OP_SLE: T.slt,
    }.get(inner.op)
    if flip is None:
        return None
    return flip(inner.args[1], inner.args[0])


def _rule_xor_fold_not(t: Term) -> Optional[Term]:
    """(bvxor (bvnot x) k) -> (bvxor x ~k): melts nots into constants."""
    if t.op != T.OP_BVXOR:
        return None
    a, b = t.args
    if a.op == T.OP_BVNOT and b.op == T.OP_BVCONST:
        return T.bvxor(a.args[0], T.bv_const(~b.data, b.width))
    return None


_RULES = (
    _rule_ite_fuse_unary,
    _rule_eq_ite_const,
    _rule_reassoc_const,
    _rule_sub_to_add_const,
    _rule_not_of_cmp,
    _rule_xor_fold_not,
)


def simplify(term: Term, max_passes: int = 4) -> Term:
    """Bottom-up rewriting to a fixpoint (bounded by *max_passes*).

    Reconstruction goes through the smart constructors, so local folding
    re-fires after every global rule application.
    """
    for _ in range(max_passes):
        new = _one_pass(term)
        if new is term:
            return term
        term = new
    return term


def _one_pass(term: Term) -> Term:
    cache: Dict[int, Term] = {}

    def walk(t: Term) -> Term:
        cached = cache.get(id(t))
        if cached is not None:
            return cached
        if t.args:
            new_args = tuple(walk(a) for a in t.args)
            if any(n is not o for n, o in zip(new_args, t.args)):
                t = T.rebuild(t.op, new_args, t.data, t.sort)
        for rule in _RULES:
            replacement = rule(t)
            if replacement is not None and replacement is not t:
                t = replacement
        cache[id(t)] = t
        return t

    return walk(term)
