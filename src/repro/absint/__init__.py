"""Solver-verified abstract-interpretation tier.

A compositional abstract interpreter over template rule terms with
three forward domains — known bits, unsigned intervals, signed
intervals (reduced product :class:`AbsValue`) — and a backward
demanded-bits transfer.  Unlike the historical trusted dataflow code
in ``repro.opt.analysis``, every transfer function here is *verified*
against the SMT semantics by :mod:`repro.absint.selfcheck`.

The tier is a **must-analysis**: it answers "provably yes" or
"unknown", never "no".  That is what makes the engine fast path
(:func:`prove_refinement` short-circuiting a SAT dispatch) verdict
preserving by construction — see DESIGN.md.
"""

from .domains import AbsValue, KnownBits, SRange, URange
from .prove import (
    AbsintUnsupported, Analysis, prove_refinement, refute_candidate,
    refuted_pre_atoms,
)
from .transfer import (
    demanded_conv, demanded_operands, icmp_decide, total_binop, total_conv,
    total_icmp, transfer_binop, transfer_constexpr, transfer_conv,
    transfer_icmp, transfer_select,
)

__all__ = [
    "AbsValue", "KnownBits", "SRange", "URange",
    "AbsintUnsupported", "Analysis", "prove_refinement",
    "refute_candidate", "refuted_pre_atoms",
    "demanded_conv", "demanded_operands", "icmp_decide",
    "total_binop", "total_conv", "total_icmp",
    "transfer_binop", "transfer_constexpr", "transfer_conv",
    "transfer_icmp", "transfer_select",
]
