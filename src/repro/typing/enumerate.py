"""Enumeration of feasible type assignments (paper §3.2).

The paper enumerates all models of the typing constraints with an SMT
solver, iteratively blocking each model.  Our domain is finite by
construction — integer widths are bounded by ``max_width`` (the paper
uses 64; tests use smaller bounds for speed) and nesting is limited to
two levels — so a backtracking search over class representatives yields
exactly the same assignments.

Width order is biased toward 4 and 8 bits first, mirroring the paper's
counterexample-quality heuristic (§3.1.4): the first failing type
assignment reported to the user is the most readable one.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence

from .constraints import (
    BOOL,
    FIRST_CLASS,
    FIXED,
    FLOAT,
    FP_SMALLER,
    INT,
    INT_OR_PTR,
    MIN_WIDTH,
    POINTER_TO,
    SAME_WIDTH,
    SMALLER,
    ConstraintSystem,
    TypeConstraintError,
)
from .types import (
    FP_KINDS,
    FloatType,
    IntType,
    PointerType,
    Type,
    TypeContext,
    is_first_class,
    is_float,
    is_int,
    is_pointer,
)


def preferred_widths(max_width: int, prefer: Sequence[int] = (4, 8)) -> List[int]:
    """Widths 1..max_width with the preferred ones first."""
    rest = [w for w in range(1, max_width + 1) if w not in prefer]
    return [w for w in prefer if w <= max_width] + rest


def _unary_ok(t: Type, tag: str, payload: Optional[Type]) -> bool:
    if tag == INT:
        return is_int(t)
    if tag == FIRST_CLASS:
        return is_first_class(t)
    if tag == INT_OR_PTR:
        return is_int(t) or is_pointer(t)
    if tag == BOOL:
        return is_int(t) and t.width == 1
    if tag == FIXED:
        return t is payload
    if tag == FLOAT:
        return is_float(t)
    if tag == MIN_WIDTH:
        return is_int(t) and t.width >= payload
    raise ValueError("unknown unary constraint %r" % tag)


def _binary_ok(tag: str, ta: Type, tb: Type, ctx: TypeContext) -> bool:
    if tag == SMALLER:
        return is_int(ta) and is_int(tb) and ta.width < tb.width
    if tag == FP_SMALLER:
        return is_float(ta) and is_float(tb) and ta.width < tb.width
    if tag == SAME_WIDTH:
        return (
            is_first_class(ta)
            and is_first_class(tb)
            and ctx.width_of(ta) == ctx.width_of(tb)
        )
    if tag == POINTER_TO:
        return is_pointer(ta) and ta.pointee is tb
    raise ValueError("unknown binary constraint %r" % tag)


def enumerate_assignments(
    system: ConstraintSystem,
    max_width: int = 8,
    ctx: Optional[TypeContext] = None,
    prefer: Sequence[int] = (4, 8),
    include_pointers: bool = True,
    limit: Optional[int] = None,
    fp_formats: Sequence[str] = FP_KINDS,
) -> Iterator[Dict[str, Type]]:
    """Yield every feasible type assignment as a var -> Type map.

    The assignment maps *all* variables (not only class representatives).
    Raises :class:`TypeConstraintError` if the system mentions a FIXED
    type that conflicts with its class's other constraints in every
    assignment — callers typically treat "no assignments" as that error.
    """
    ctx = ctx or TypeContext()
    classes = system.classes()
    members = system.members()
    binaries = system.resolved_binary()

    widths = preferred_widths(max_width, prefer)
    base_ints: List[Type] = [IntType(w) for w in widths]
    # explicitly-annotated types (e.g. `alloca i8` when the width bound is
    # below 8) and pointers to them must be in the candidate pools too
    fixed_types = {
        payload
        for tags in system.unary.values()
        for tag, payload in tags
        if tag == FIXED and payload is not None
    }
    for t in fixed_types:
        if is_int(t) and t not in base_ints:
            base_ints.append(t)
    base_ptrs: List[Type] = []
    if include_pointers:
        base_ptrs = [PointerType(t) for t in base_ints]
        for t in fixed_types:
            if is_pointer(t) and t not in base_ptrs:
                base_ptrs.append(t)
    # floating-point candidates enter a class's pool only when the class
    # is explicitly floating (FLOAT tag, fixed float annotation, or an
    # fpext/fptrunc endpoint) — integer-only transformations enumerate
    # exactly the same assignments as before FP support existed
    base_fps: List[Type] = [FloatType(k) for k in fp_formats]

    # per-class candidate domains filtered by unary constraints
    domains: Dict[str, List[Type]] = {}
    for cls in classes:
        tags = system.unary.get(cls, [])
        fixed_types = [payload for tag, payload in tags if tag == FIXED]
        if fixed_types:
            candidates: List[Type] = [fixed_types[0]]
        else:
            needs_fp = any(tag == FLOAT for tag, _ in tags) or any(
                tag == FP_SMALLER and cls in (a, b)
                for tag, a, b in binaries
            )
            if needs_fp:
                candidates = list(base_fps)
            else:
                candidates = list(base_ints)
                needs_ptr = any(
                    tag in (FIRST_CLASS, INT_OR_PTR) for tag, _ in tags
                ) or any(
                    tag == POINTER_TO and a == cls for tag, a, _b in binaries
                )
                if needs_ptr:
                    candidates = candidates + base_ptrs
        domains[cls] = [
            t for t in candidates if all(_unary_ok(t, tag, p) for tag, p in tags)
        ]
        if not domains[cls]:
            return  # no feasible assignment at all

    # order classes most-constrained-first for a smaller search tree
    order = sorted(classes, key=lambda c: len(domains[c]))
    index = {c: i for i, c in enumerate(order)}

    # binaries become checkable once both classes are assigned
    checks_at: Dict[int, List] = {}
    for tag, a, b in binaries:
        pos = max(index[a], index[b])
        checks_at.setdefault(pos, []).append((tag, a, b))

    assignment: Dict[str, Type] = {}
    produced = 0

    def backtrack(i: int) -> Iterator[Dict[str, Type]]:
        nonlocal produced
        if limit is not None and produced >= limit:
            return
        if i == len(order):
            full = {}
            for cls, t in assignment.items():
                for member in members.get(cls, [cls]):
                    full[member] = t
            produced += 1
            yield full
            return
        cls = order[i]
        for t in domains[cls]:
            assignment[cls] = t
            ok = True
            for tag, a, b in checks_at.get(i, []):
                if not _binary_ok(tag, assignment[a], assignment[b], ctx):
                    ok = False
                    break
            if ok:
                yield from backtrack(i + 1)
            if limit is not None and produced >= limit:
                break
        assignment.pop(cls, None)

    yield from backtrack(0)


def first_assignment(
    system: ConstraintSystem, max_width: int = 8, **kwargs
) -> Dict[str, Type]:
    """The first feasible assignment, or raise TypeConstraintError."""
    for assignment in enumerate_assignments(system, max_width, **kwargs):
        return assignment
    raise TypeConstraintError("no feasible type assignment")


def count_assignments(system: ConstraintSystem, max_width: int = 8, **kwargs) -> int:
    """Number of feasible assignments (used by tests and the CLI)."""
    return sum(1 for _ in enumerate_assignments(system, max_width, **kwargs))
