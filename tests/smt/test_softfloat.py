"""Differential unit tests for the soft-float circuits.

Every circuit in :mod:`repro.smt.softfloat` is compared against the
concrete IEEE-754 ground truth of :mod:`repro.ir.fpops` by evaluating
it on constant bit patterns — special values exhaustively, plus a
seeded random sample.  Two evaluation styles are used on purpose:

* **via variables** — operands are symbolic and bound through the
  model, so the *general* rounding circuits are exercised;
* **via literals** — operands are constant terms, so the encoder's
  literal fast paths (``x + -0.0``, ``x * 1.0``, ...) kick in.  Both
  must agree with fpops (and hence with each other).

The campaign-scale version of this check is ``fuzz --fp``; these are
the deterministic always-on pins.
"""

import random

import pytest

from repro.fuzz.fpgen import special_bits
from repro.ir import fpops
from repro.smt import softfloat as SF
from repro.smt import terms as T
from repro.smt.eval import evaluate

HALF = SF.format_for_kind("half")
FLOAT = SF.format_for_kind("float")

_X = T.bv_var("sfx", 16)
_Y = T.bv_var("sfy", 16)


def _sample_pairs(count=40, seed=7):
    rng = random.Random(seed)
    specials = special_bits(16)
    pairs = [(a, b) for a in specials for b in specials]
    rng.shuffle(pairs)
    pairs = pairs[:count]
    pairs += [(rng.getrandbits(16), rng.getrandbits(16))
              for _ in range(count)]
    return pairs


def _canon(bits, kind):
    return fpops.qnan_bits(kind) if fpops.is_nan(bits, kind) else bits


class TestBinopsAgainstFpops:
    @pytest.mark.parametrize("op", ["fadd", "fsub", "fmul", "fdiv"])
    def test_general_circuit_at_half(self, op):
        circuit = SF.fbinop(op, HALF, _X, _Y)
        for a, b in _sample_pairs():
            got = evaluate(circuit, {_X: a, _Y: b})
            want = fpops.fbinop(op, a, b, "half")
            assert _canon(got, "half") == _canon(want, "half"), (
                op, hex(a), hex(b))

    @pytest.mark.parametrize("op,const", [
        ("fadd", 0.0), ("fadd", -0.0), ("fsub", 0.0),
        ("fmul", 1.0), ("fmul", -1.0), ("fdiv", 1.0),
    ])
    def test_literal_fast_paths_match(self, op, const):
        # constant second operand: the fast path fires; it must agree
        # with fpops on every special value
        lit = SF.fp_const(HALF, const)
        circuit = SF.fbinop(op, HALF, _X, lit)
        cbits = fpops.encode_literal(const, "half")
        for a in special_bits(16):
            got = evaluate(circuit, {_X: a})
            want = fpops.fbinop(op, a, cbits, "half")
            assert _canon(got, "half") == _canon(want, "half"), (
                op, const, hex(a))


class TestFcmpAgainstFpops:
    @pytest.mark.parametrize("cond", sorted(
        {"false", "oeq", "ogt", "oge", "olt", "ole", "one", "ord",
         "ueq", "ugt", "uge", "ult", "ule", "une", "uno", "true"}))
    def test_all_predicates_at_half(self, cond):
        circuit = SF.fcmp(cond, HALF, _X, _Y)
        for a, b in _sample_pairs(count=25):
            got = bool(evaluate(circuit, {_X: a, _Y: b}))
            assert got == fpops.fcmp(cond, a, b, "half"), (
                cond, hex(a), hex(b))


class TestConversionsAgainstFpops:
    def test_fpext_half_to_float(self):
        circuit = SF.fpconvert_value("fpext", HALF, FLOAT, _X)
        for a in special_bits(16):
            got = evaluate(circuit, {_X: a})
            want = fpops.fpconvert("fpext", a, "half", "float")
            assert _canon(got, "float") == _canon(want, "float"), hex(a)

    def test_fptrunc_float_to_half(self):
        x32 = T.bv_var("sfx32", 32)
        circuit = SF.fpconvert_value("fptrunc", FLOAT, HALF, x32)
        cases = list(special_bits(32))
        # the overflow boundary: rounds to inf at half
        cases.append(fpops.from_float(65520.0, "float"))
        for a in cases:
            got = evaluate(circuit, {x32: a})
            want = fpops.fpconvert("fptrunc", a, "float", "half")
            assert _canon(got, "half") == _canon(want, "half"), hex(a)

    def test_fptosi_value_and_range(self):
        value, in_range = SF.fp_to_int("fptosi", HALF, 16, _X)
        for a in special_bits(16):
            want = fpops.fpconvert("fptosi", a, "half", 16)
            ok = bool(evaluate(in_range, {_X: a}))
            assert ok == (want is not None), hex(a)
            if want is not None:
                assert evaluate(value, {_X: a}) == want, hex(a)

    def test_sitofp_and_uitofp(self):
        xi = T.bv_var("sfi", 16)
        for op in ("sitofp", "uitofp"):
            circuit = SF.int_to_fp(op, 16, HALF, xi)
            for a in (0, 1, 2049, 0x7FFF, 0x8000, 0xFFFF):
                got = evaluate(circuit, {xi: a})
                want = fpops.fpconvert(op, a, 16, "half")
                assert _canon(got, "half") == _canon(want, "half"), (
                    op, hex(a))


class TestBruteBudgetAdmitsHalf:
    """Config.brute_max_bits: the exhaustive oracle covers half rules."""

    def test_half_domain_within_default_budget(self):
        from repro.core import Config
        from repro.smt.brute import brute_check_sat

        cfg = Config()
        assert cfg.brute_max_bits >= 16
        assert "brute_max_bits" in cfg.to_dict()  # part of cache keys
        # a genuinely FP-flavoured property, decided exhaustively over
        # all 2^16 half patterns: x * 1.0 == x (up to NaN payloads)
        prod = SF.fbinop("fmul", HALF, _X, SF.fp_const(HALF, 1.0))
        differs = T.and_(T.not_(T.eq(prod, _X)),
                         T.not_(SF.is_nan(HALF, _X)))
        status, _ = brute_check_sat(differs, max_bits=cfg.brute_max_bits)
        assert status == "unsat"

    def test_budget_is_enforced(self):
        import pytest as _pytest

        from repro.smt.brute import brute_check_sat

        with _pytest.raises(ValueError):
            brute_check_sat(T.eq(_X, _Y), max_bits=8)


class TestRefinement:
    def _refines(self, a, b, nsz):
        cond = SF.refines_eq(HALF, T.bv_const(a, 16), T.bv_const(b, 16),
                             sign_of_zero_insensitive=nsz)
        return bool(evaluate(cond, {}))

    def test_exact_bits_refine(self):
        one = fpops.from_float(1.0, "half")
        assert self._refines(one, one, nsz=False)

    def test_any_nan_refines_any_nan(self):
        # payload-insensitive: the canonical qnan refines a signalling
        # payload and vice versa
        q = fpops.qnan_bits("half")
        weird = 0x7E01
        assert fpops.is_nan(weird, "half")
        assert self._refines(q, weird, nsz=False)
        assert self._refines(weird, q, nsz=False)

    def test_nan_does_not_refine_number(self):
        q = fpops.qnan_bits("half")
        one = fpops.from_float(1.0, "half")
        assert not self._refines(one, q, nsz=False)
        assert not self._refines(q, one, nsz=False)

    def test_zero_signs_need_nsz(self):
        pos = fpops.from_float(0.0, "half")
        neg = fpops.from_float(-0.0, "half")
        assert not self._refines(pos, neg, nsz=False)
        assert self._refines(pos, neg, nsz=True)
        assert self._refines(neg, pos, nsz=True)
        # nsz does not blur zero against non-zero
        one = fpops.from_float(1.0, "half")
        assert not self._refines(pos, one, nsz=True)
