"""Property tests: parse/print round-trips preserve meaning.

Random rules (the fuzzer's generator doubles as the property-test
source) must survive ``parse(print(rule))`` with identical surface
text, identical structure, and an identical verification verdict.
"""

import random

import pytest

from repro.core.verifier import verify
from repro.fuzz import RuleGen, RuleGenConfig, check_roundtrip, default_rule_config
from repro.ir import parse_transformations
from repro.ir.printer import transformation_str

SEEDS = list(range(12))


def _rule(seed):
    return RuleGen(random.Random(seed), RuleGenConfig()).rule(seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_print_parse_print_fixpoint(seed):
    t = _rule(seed)
    text = transformation_str(t)
    assert transformation_str(parse_transformations(text)[0]) == text


@pytest.mark.parametrize("seed", SEEDS)
def test_verdict_stable_across_roundtrip(seed):
    t = _rule(seed)
    config = default_rule_config()
    status = verify(t, config).status
    assert check_roundtrip(t, config, status) == []


def test_roundtrip_check_flags_verdict_change():
    # feed check_roundtrip a deliberately wrong original verdict to
    # prove the comparison is not vacuous
    t = _rule(0)
    config = default_rule_config()
    status = verify(t, config).status
    lying = "invalid" if status == "valid" else "valid"
    flagged = check_roundtrip(t, config, lying)
    assert flagged and flagged[0].check == "roundtrip-verdict"


def test_roundtrip_ignores_unknown_verdicts():
    t = _rule(0)
    config = default_rule_config()
    assert check_roundtrip(t, config, "unknown") == []
