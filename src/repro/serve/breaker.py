"""A circuit breaker around the server's engine dispatch.

When the engine dispatch path starts failing (a wedged worker pool, a
poisoned fork state, an injected ``serve.dispatch`` fault), every
request that reaches it burns a worker-thread slot and a batch window
just to fail slowly.  The breaker converts that into fast failure:
after ``threshold`` *consecutive* dispatch failures it **opens**, and
the server fast-rejects new verification requests with ``overloaded``
(+ ``retry_after``) at admission, before any planning or queueing.
After ``reset_after`` seconds it goes **half-open** and lets exactly
one probe request through: success closes the breaker, failure re-opens
it for another full window.

Health endpoints never pass through the breaker — ``/healthz`` and
``/metrics`` must stay answerable precisely when things are on fire.

Single-threaded by design: all transitions happen on the event-loop
thread (dispatch results are observed there), so no locking.
"""

from __future__ import annotations

import time

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: numeric encoding for the ``serve_breaker_state`` gauge
STATE_GAUGE = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe."""

    def __init__(self, threshold: int = 5, reset_after: float = 10.0,
                 clock=time.monotonic):
        self.threshold = max(1, threshold)
        self.reset_after = max(0.0, reset_after)
        self.clock = clock
        self.state = CLOSED
        self.failures = 0          # consecutive, resets on success
        self.opened_at = 0.0
        self.probe_at = 0.0
        #: lifetime transition counts (exported as metrics)
        self.opens = 0

    def allow(self) -> bool:
        """May a request proceed to planning/dispatch right now?

        Transitions OPEN → HALF_OPEN when the reset window has elapsed;
        in HALF_OPEN only the transitioning call (the probe) passes.  A
        probe that never reports back (e.g. it was answered entirely
        from cache and never dispatched) must not wedge the breaker, so
        after another ``reset_after`` a fresh probe is admitted.
        """
        if self.state == CLOSED:
            return True
        now = self.clock()
        if self.state == OPEN:
            if now - self.opened_at >= self.reset_after:
                self.state = HALF_OPEN
                self.probe_at = now
                return True  # the probe
            return False
        # HALF_OPEN: a probe is in flight; admit another only if it has
        # been silent for a full reset window
        if now - self.probe_at >= self.reset_after:
            self.probe_at = now
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        self.state = CLOSED

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            if self.state != OPEN:
                self.opens += 1
            self.state = OPEN
            self.opened_at = self.clock()
            self.failures = 0

    def retry_after(self) -> float:
        """Seconds until the next probe could be admitted."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.reset_after
                   - (self.clock() - self.opened_at))

    @property
    def gauge(self) -> int:
        return STATE_GAUGE[self.state]
