"""Parser tests: the full surface syntax of Figure 1 plus error cases."""

import pytest

from repro.ir import (
    Alloca,
    BinOp,
    ConstantSymbol,
    ConstExpr,
    ConvOp,
    Copy,
    GEP,
    ICmp,
    Input,
    Literal,
    Load,
    ParseError,
    PredAnd,
    PredCall,
    PredCmp,
    PredNot,
    PredTrue,
    Select,
    Store,
    UndefValue,
    Unreachable,
    parse_transformation,
    parse_transformations,
)
from repro.typing.types import ArrayType, IntType, PointerType


def parse_one(text):
    return parse_transformation(text)


class TestHeaders:
    def test_name_header(self):
        t = parse_one("Name: my-opt\n%r = add %x, 1\n=>\n%r = add 1, %x")
        assert t.name == "my-opt"

    def test_default_name(self):
        t = parse_transformation("%r = add %x, 1\n=>\n%r = add 1, %x",
                                 default_name="fallback")
        assert t.name == "fallback"

    def test_missing_arrow(self):
        with pytest.raises(ParseError):
            parse_one("%r = add %x, 1")

    def test_duplicate_arrow(self):
        with pytest.raises(ParseError):
            parse_one("%r = add %x, 1\n=>\n=>\n%r = %x")

    def test_empty_source(self):
        with pytest.raises(ParseError):
            parse_one("=>\n%r = add %x, 1")

    def test_comments_ignored(self):
        t = parse_one("""
        ; a comment
        %r = add %x, 1   ; trailing comment
        =>
        %r = add 1, %x
        """)
        assert isinstance(t.src["%r"], BinOp)


class TestInstructions:
    def test_binop_flags(self):
        t = parse_one("%r = add nsw nuw %x, %y\n=>\n%r = add %x, %y")
        inst = t.src["%r"]
        assert inst.opcode == "add"
        assert inst.flags == ("nsw", "nuw")

    def test_bad_flag_for_opcode(self):
        with pytest.raises(Exception):
            parse_one("%r = and nsw %x, %y\n=>\n%r = %x")

    def test_exact_flag(self):
        t = parse_one("%r = lshr exact %x, %y\n=>\n%r = lshr %x, %y")
        assert t.src["%r"].flags == ("exact",)

    def test_explicit_type(self):
        t = parse_one("%r = add i32 %x, %y\n=>\n%r = add %y, %x")
        assert t.src["%r"].ty is IntType(32)

    def test_icmp(self):
        t = parse_one("%c = icmp sgt %x, %y\n=>\n%c = icmp slt %y, %x")
        inst = t.src["%c"]
        assert isinstance(inst, ICmp)
        assert inst.cond == "sgt"
        assert inst.ty is IntType(1)

    def test_icmp_bad_cond(self):
        with pytest.raises(ParseError):
            parse_one("%c = icmp wat %x, %y\n=>\n%c = true")

    def test_select(self):
        t = parse_one("%r = select %c, %x, %y\n=>\n%r = select %c, %x, %y")
        assert isinstance(t.src["%r"], Select)

    def test_conversions(self):
        t = parse_one("%r = zext i8 %x to i16\n=>\n%r = zext %x")
        inst = t.src["%r"]
        assert isinstance(inst, ConvOp)
        assert inst.src_ty is IntType(8)
        assert inst.ty is IntType(16)

    def test_conversion_without_types(self):
        t = parse_one("%a = trunc %x\n%r = zext %a\n=>\n%r = and %x, 1")
        assert t.src["%a"].ty is None

    def test_copy_of_literal(self):
        t = parse_one("%a = sdiv %x, %y\n%r = sub 0, %a\n=>\n%r = 0")
        assert isinstance(t.tgt["%r"], Copy)
        assert isinstance(t.tgt["%r"].x, Literal)

    def test_true_false_literals(self):
        t = parse_one("%c = icmp eq %x, %x\n=>\n%c = true")
        lit = t.tgt["%c"].x
        assert isinstance(lit, Literal)
        assert lit.value == 1 and lit.ty is IntType(1)

    def test_undef_operand(self):
        t = parse_one("%r = select undef, i4 -1, 0\n=>\n%r = ashr undef, 3")
        assert isinstance(t.src["%r"].c, UndefValue)
        # each occurrence is a distinct value
        assert t.src["%r"].c is not t.tgt["%r"].a

    def test_store_and_load(self):
        t = parse_one("store %v, %p\n%r = load %p\n=>\nstore %v, %p\n%r = %v")
        assert isinstance(t.src["store#0"], Store)
        assert isinstance(t.src["%r"], Load)

    def test_store_renumbered_from_end(self):
        t = parse_one("store %v, %p\nstore %w, %p\n=>\nstore %w, %p")
        # the LAST source store is store#0, matching the target's
        src_stores = [n for n, i in t.src.items() if isinstance(i, Store)]
        assert src_stores == ["store#1", "store#0"]
        assert t.src["store#0"].v.name == "%w"
        assert t.root == "store#0"

    def test_alloca(self):
        t = parse_one("%p = alloca i8, 2\n%r = load %p\n=>\n"
                      "%p = alloca i8, 2\n%r = load %p")
        inst = t.src["%p"]
        assert isinstance(inst, Alloca)
        assert inst.elem_ty is IntType(8)
        assert inst.count.value == 2

    def test_gep(self):
        t = parse_one("%q = getelementptr %p, 1\n%r = load %q\n=>\n"
                      "%q = getelementptr %p, 1\n%r = load %q")
        assert isinstance(t.src["%q"], GEP)
        assert len(t.src["%q"].idxs) == 1

    def test_unreachable(self):
        t = parse_one("store %v, %p\nunreachable\n=>\nstore %v, %p\nunreachable")
        assert any(isinstance(i, Unreachable) for i in t.src.values())

    def test_pointer_type_annotation(self):
        t = parse_one("%r = load i8* %p\n=>\n%r = load %p")
        assert t.src["%r"].p.ty is PointerType(IntType(8))

    def test_array_type(self):
        t = parse_one("%p = alloca [4 x i8]\n%r = load %p\n=>\n"
                      "%p = alloca [4 x i8]\n%r = load %p")
        assert t.src["%p"].elem_ty is ArrayType(4, IntType(8))


class TestOperandExpressions:
    def test_constant_symbol(self):
        t = parse_one("%r = add %x, C\n=>\n%r = add C, %x")
        assert isinstance(t.src["%r"].b, ConstantSymbol)
        # the same symbol object is shared between templates
        assert t.src["%r"].b is t.tgt["%r"].a

    def test_negative_literal(self):
        t = parse_one("%r = xor %x, -1\n=>\n%r = xor -1, %x")
        assert t.src["%r"].b.value == -1

    def test_hex_literal(self):
        t = parse_one("%r = and %x, 0xFF\n=>\n%r = and 0xFF, %x")
        assert t.src["%r"].b.value == 255

    def test_constexpr_precedence(self):
        t = parse_one("Pre: C2 % (1 << C1) == 0\n"
                      "%r = sdiv %x, C2\n=>\n%r = sdiv %x, C2/(1<<C1)")
        expr = t.tgt["%r"].b
        assert isinstance(expr, ConstExpr)
        assert expr.op == "sdiv"
        assert expr.args[1].op == "shl"

    def test_unary_ops(self):
        t = parse_one("%r = and %x, C\n=>\n%r = and %x, ~-C")
        expr = t.tgt["%r"].b
        assert expr.op == "not"
        assert expr.args[0].op == "neg"

    def test_functions(self):
        t = parse_one("Pre: isPowerOf2(C)\n%r = mul %x, C\n=>\n"
                      "%r = shl %x, log2(C)")
        assert t.tgt["%r"].b.op == "log2"

    def test_width_function(self):
        t = parse_one("%c = icmp slt %x, 0\n%r = select %c, -1, 0\n=>\n"
                      "%r = ashr %x, width(%x)-1")
        expr = t.tgt["%r"].b
        assert expr.op == "sub"
        assert expr.args[0].op == "width"

    def test_unsigned_ops(self):
        t = parse_one("%r = lshr %x, C\n=>\n%r = and %x, -1 u>> C")
        assert t.tgt["%r"].b.op == "lshr"

    def test_bad_function_arity(self):
        with pytest.raises(ParseError):
            parse_one("%r = mul %x, C\n=>\n%r = shl %x, log2(C, C)")


class TestPreconditions:
    def test_default_true(self):
        t = parse_one("%r = add %x, 0\n=>\n%r = %x")
        assert isinstance(t.pre, PredTrue)

    def test_cmp(self):
        t = parse_one("Pre: C1 u>= C2\n%r = shl %x, C1\n=>\n%r = shl %x, C1-C2")
        assert isinstance(t.pre, PredCmp)
        assert t.pre.op == "u>="

    def test_connectives(self):
        t = parse_one(
            "Pre: C1 != 0 && (isPowerOf2(C1) || C1 == 1) && !isSignBit(C1)\n"
            "%r = mul %x, C1\n=>\n%r = mul C1, %x"
        )
        assert isinstance(t.pre, PredAnd)
        assert any(isinstance(p, PredNot) for p in t.pre.ps)

    def test_predicate_with_register_arg(self):
        t = parse_one(
            "Pre: MaskedValueIsZero(%x, ~C)\n%r = and %x, C\n=>\n%r = %x"
        )
        call = t.pre
        assert isinstance(call, PredCall)
        assert call.args[0] is next(iter(t.inputs()))

    def test_unknown_predicate(self):
        with pytest.raises(Exception):
            parse_one("Pre: totallyMadeUp(C)\n%r = mul %x, C\n=>\n%r = mul C, %x")


class TestResolutionErrors:
    def test_redefinition(self):
        with pytest.raises(ParseError):
            parse_one("%r = add %x, 1\n%r = add %x, 2\n=>\n%r = %x")

    def test_use_before_def(self):
        with pytest.raises(ParseError):
            parse_one("%r = add %t, 1\n%t = add %x, 1\n=>\n%r = %x")

    def test_target_new_input_rejected(self):
        with pytest.raises(ParseError):
            parse_one("%r = add %x, 1\n=>\n%r = add %y, 1")

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_one("%r = add %x, 1 garbage\n=>\n%r = %x")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_one("%r = add %x, $\n=>\n%r = %x")


class TestMultipleTransformations:
    def test_split_by_name(self):
        ts = parse_transformations("""
Name: A
%r = add %x, 0
=>
%r = %x
Name: B
%r = mul %x, 1
=>
%r = %x
""")
        assert [t.name for t in ts] == ["A", "B"]

    def test_split_by_blank_line(self):
        ts = parse_transformations("""
%r = add %x, 0
=>
%r = %x

%r = mul %x, 1
=>
%r = %x
""")
        assert len(ts) == 2

    def test_environments_are_independent(self):
        ts = parse_transformations("""
Name: A
%r = add %x, C
=>
%r = add C, %x

Name: B
%r = sub %x, C
=>
%r = add %x, -C
""")
        ca = ts[0].src["%r"].b
        cb = ts[1].src["%r"].b
        assert ca is not cb
