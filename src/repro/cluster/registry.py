"""Cluster membership: a shared registry file plus a health view.

Membership has two halves with different lifetimes:

* :class:`FileRegistry` — the durable, shared half.  A flock-protected
  JSON file that ``repro serve --join`` nodes heartbeat into and
  coordinators read.  It is the only coordination point in the whole
  cluster, and it is crash-only: every mutation is a read-modify-write
  of the whole file under an advisory lock followed by an atomic
  rename, so a killed writer can never leave a torn membership record.
* :class:`NodeRegistry` — one coordinator's in-memory health view.
  Nodes move ``healthy → suspect → dead`` on consecutive forward or
  probe failures and revive on a successful probe.  Every membership
  *change* bumps a **generation** counter, and every node carries its
  own incarnation generation: a dispatch is stamped with the node's
  generation at launch, and a reply whose stamp no longer matches
  (because the node was declared dead, or died and rejoined, while the
  request was in flight) is discarded by the coordinator — a late
  reply from a dead node must never race a re-dispatched one.

The per-node circuit breaker is the serving layer's
(:class:`repro.serve.breaker.CircuitBreaker`): a node whose breaker is
open is skipped at shard selection exactly like a dead one, but it
heals by itself after ``reset_after`` via the half-open probe.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional

from .. import chaos
from ..serve.breaker import CircuitBreaker

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: health states of one node in a coordinator's view
HEALTHY = "healthy"
SUSPECT = "suspect"
DEAD = "dead"

#: heartbeats older than this many seconds mark a file-registry node
#: stale (prune candidates)
DEFAULT_STALE_AFTER = 10.0


class FileRegistry:
    """The shared membership file (``repro serve --join PATH``).

    Layout::

        {"generation": 7,
         "nodes": {"n1": {"addr": "127.0.0.1:7341", "pid": 123,
                          "generation": 5, "stamp": 1723111111.5}}}

    ``generation`` counts membership changes (joins, leaves, prunes);
    each node's own ``generation`` is the global value at its latest
    (re)join, i.e. its incarnation number.  ``stamp`` is the wall-clock
    time of the node's last heartbeat.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self.lock_path = self.path + ".lock"

    # ------------------------------------------------------------------
    # Locked read-modify-write
    # ------------------------------------------------------------------

    def _read(self) -> dict:
        try:
            with open(self.path) as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            return {"generation": 0, "nodes": {}}
        if not isinstance(data, dict) or \
                not isinstance(data.get("nodes"), dict):
            return {"generation": 0, "nodes": {}}
        data.setdefault("generation", 0)
        return data

    def _write(self, data: dict) -> None:
        tmp = self.path + ".tmp"
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(tmp, "w") as handle:
            handle.write(json.dumps(data, sort_keys=True) + "\n")
        os.replace(tmp, self.path)

    def _mutate(self, fn: Callable[[dict], object]):
        """Apply *fn* to the registry under the advisory lock."""
        handle = None
        if fcntl is not None:
            try:
                handle = open(self.lock_path, "a")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                handle = None
        try:
            data = self._read()
            result = fn(data)
            self._write(data)
            return result
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
                handle.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def join(self, node_id: str, addr: str,
             pid: Optional[int] = None) -> int:
        """(Re)register a node; returns its incarnation generation."""

        def apply(data: dict) -> int:
            data["generation"] += 1
            data["nodes"][node_id] = {
                "addr": addr,
                "pid": pid if pid is not None else os.getpid(),
                "generation": data["generation"],
                "stamp": time.time(),
            }
            return data["generation"]

        return self._mutate(apply)

    def heartbeat(self, node_id: str) -> bool:
        """Refresh a node's stamp; False if it was pruned (must rejoin)."""

        def apply(data: dict) -> bool:
            record = data["nodes"].get(node_id)
            if record is None:
                return False
            record["stamp"] = time.time()
            return True

        return self._mutate(apply)

    def leave(self, node_id: str) -> None:
        """Remove a node (graceful shutdown path)."""

        def apply(data: dict) -> None:
            if data["nodes"].pop(node_id, None) is not None:
                data["generation"] += 1

        self._mutate(apply)

    def prune(self, stale_after: float = DEFAULT_STALE_AFTER) -> List[str]:
        """Drop nodes whose heartbeat is older than *stale_after* seconds.

        Returns the pruned node ids.  Called by coordinators before
        reading membership, so a SIGKILLed node disappears from the
        cluster within one stale window without anyone's cooperation.
        """
        now = time.time()

        def apply(data: dict) -> List[str]:
            stale = [node_id for node_id, record in data["nodes"].items()
                     if now - record.get("stamp", 0) > stale_after]
            for node_id in stale:
                del data["nodes"][node_id]
            if stale:
                data["generation"] += 1
            return stale

        return self._mutate(apply)

    def load(self) -> dict:
        """A point-in-time snapshot (no lock: single atomic file read)."""
        return self._read()


class NodeState:
    """One node in a coordinator's health view."""

    __slots__ = ("node_id", "addr", "generation", "state", "failures",
                 "breaker")

    def __init__(self, node_id: str, addr: str, generation: int = 0,
                 breaker_threshold: int = 3, breaker_reset: float = 5.0):
        self.node_id = node_id
        self.addr = addr
        self.generation = generation
        self.state = HEALTHY
        self.failures = 0  # consecutive; resets on success
        self.breaker = CircuitBreaker(threshold=breaker_threshold,
                                      reset_after=breaker_reset)

    def to_dict(self) -> dict:
        return {"node_id": self.node_id, "addr": self.addr,
                "generation": self.generation, "state": self.state,
                "failures": self.failures,
                "breaker": self.breaker.state}


class NodeRegistry:
    """Generation-stamped membership with failure-driven health states.

    All mutation happens on the coordinator's dispatch-collection path
    (one thread); dispatch worker threads only read immutable stamps
    they captured at launch, so no locking is needed.
    """

    def __init__(self, suspect_after: int = 1, dead_after: int = 2,
                 breaker_threshold: int = 3, breaker_reset: float = 5.0):
        self.suspect_after = max(1, suspect_after)
        self.dead_after = max(self.suspect_after, dead_after)
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self._nodes: Dict[str, NodeState] = {}
        #: bumped on every membership/health transition
        self.generation = 0
        #: lifetime transition counts (mirrored into coordinator metrics)
        self.deaths = 0
        self.revivals = 0

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def add(self, node_id: str, addr: str) -> NodeState:
        """Register (or re-address) a node; idempotent."""
        node = self._nodes.get(node_id)
        if node is not None:
            if node.addr != addr:
                # same id, new address: the node died and came back on
                # a new port.  A new incarnation — old stamps must die
                # even if the health state never left HEALTHY.
                node.addr = addr
                node.state = HEALTHY
                node.failures = 0
                self.generation += 1
                node.generation = self.generation
            return node
        node = NodeState(node_id, addr,
                         breaker_threshold=self.breaker_threshold,
                         breaker_reset=self.breaker_reset)
        self.generation += 1
        node.generation = self.generation
        self._nodes[node_id] = node
        return node

    def sync_file(self, registry: FileRegistry,
                  stale_after: float = DEFAULT_STALE_AFTER) -> None:
        """Adopt the file registry's membership (prune stale first)."""
        registry.prune(stale_after)
        data = registry.load()
        seen = set()
        for node_id, record in sorted(data["nodes"].items()):
            seen.add(node_id)
            self.add(node_id, record["addr"])
        for node_id in list(self._nodes):
            if node_id not in seen:
                self.mark_dead(node_id)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def get(self, node_id: str) -> Optional[NodeState]:
        return self._nodes.get(node_id)

    def known(self) -> List[str]:
        """Every node id ever registered (ring membership is stable)."""
        return sorted(self._nodes)

    def healthy(self) -> List[str]:
        """Nodes a dispatch may target right now.

        A node with an open breaker is excluded exactly like a dead
        one; a half-open breaker admits its one probe dispatch.
        """
        return [node_id for node_id, node in sorted(self._nodes.items())
                if node.state != DEAD and node.breaker.allow()]

    def addr_of(self, node_id: str) -> str:
        return self._nodes[node_id].addr

    def generation_of(self, node_id: str) -> int:
        return self._nodes[node_id].generation

    def is_current(self, node_id: str, generation: int) -> bool:
        """Is a reply stamped with *generation* still acceptable?

        False once the node died, rejoined, or otherwise transitioned
        since the dispatch was stamped — the "late reply from a dead
        node" discard rule.
        """
        node = self._nodes.get(node_id)
        return (node is not None and node.state != DEAD
                and node.generation == generation)

    def to_dict(self) -> dict:
        return {"generation": self.generation,
                "nodes": [node.to_dict()
                          for _, node in sorted(self._nodes.items())]}

    # ------------------------------------------------------------------
    # Health transitions
    # ------------------------------------------------------------------

    def _transition(self, node: NodeState, state: str) -> None:
        if node.state == state:
            return
        node.state = state
        self.generation += 1
        node.generation = self.generation

    def mark_failure(self, node_id: str) -> str:
        """Record one forward/probe failure; returns the new state."""
        node = self._nodes[node_id]
        node.failures += 1
        node.breaker.record_failure()
        if node.failures >= self.dead_after:
            if node.state != DEAD:
                self.deaths += 1
            self._transition(node, DEAD)
        elif node.failures >= self.suspect_after:
            self._transition(node, SUSPECT)
        return node.state

    def mark_dead(self, node_id: str) -> None:
        node = self._nodes[node_id]
        if node.state != DEAD:
            self.deaths += 1
        self._transition(node, DEAD)

    def mark_success(self, node_id: str) -> None:
        node = self._nodes[node_id]
        node.failures = 0
        node.breaker.record_success()
        if node.state == SUSPECT:
            self._transition(node, HEALTHY)
        elif node.state == DEAD:
            self.revivals += 1
            self._transition(node, HEALTHY)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe(self, node_id: str, probe_fn: Callable[[str], bool]) -> bool:
        """One health check: ``probe_fn(addr)`` under the chaos hook.

        The ``cluster.heartbeat`` chaos site can fail a probe (an
        ``error`` fault simulates a partitioned or unresponsive node)
        or delay it.
        """
        node = self._nodes[node_id]
        spec = chaos.fire("cluster.heartbeat", node=node_id)
        ok = False
        if spec is not None and spec.kind == chaos.KIND_ERROR:
            ok = False
        else:
            if spec is not None and spec.kind == chaos.KIND_DELAY:
                time.sleep(float(spec.args.get("seconds", 0.05)))
            try:
                ok = bool(probe_fn(node.addr))
            except Exception:
                ok = False
        if ok:
            self.mark_success(node_id)
        else:
            self.mark_failure(node_id)
        return ok

    def probe_all(self, probe_fn: Callable[[str], bool]) -> Dict[str, bool]:
        return {node_id: self.probe(node_id, probe_fn)
                for node_id in self.known()}
