"""Attribute inference tests (paper §3.4, Figure 6)."""

import pytest

from repro.core import Config
from repro.core.attrs import (
    attribute_slots,
    current_assignment,
    infer_attributes,
)
from repro.ir import parse_transformation

CFG = Config(max_width=4, prefer_widths=(4,), max_type_assignments=2)


def infer(text):
    t = parse_transformation(text)
    return t, infer_attributes(t, CFG)


class TestSlots:
    def test_slots_enumerated(self):
        t = parse_transformation("""
        %a = add %x, %y
        %r = lshr %a, C
        =>
        %r = lshr %a, C
        """)
        slots = attribute_slots(t)
        kinds = {(tpl, name, flag) for tpl, name, flag in slots}
        assert ("src", "%a", "nsw") in kinds
        assert ("src", "%a", "nuw") in kinds
        assert ("src", "%r", "exact") in kinds
        assert ("tgt", "%r", "exact") in kinds

    def test_current_assignment(self):
        t = parse_transformation(
            "%r = add nsw %x, %y\n=>\n%r = add %y, %x"
        )
        slots = attribute_slots(t)
        assert current_assignment(t, slots) == {("src", "%r", "nsw")}


class TestInference:
    def test_commute_strengthens_target(self):
        t, result = infer("%r = add nsw %x, %y\n=>\n%r = add %y, %x")
        assert result.postcondition_strengthened
        assert ("tgt", "%r", "nsw") in result.strongest_target
        # nuw is NOT justified by an nsw-only source
        assert ("tgt", "%r", "nuw") not in result.strongest_target

    def test_both_flags_transfer(self):
        t, result = infer("%r = add nsw nuw %x, %y\n=>\n%r = add %y, %x")
        flags = {f for _, _, f in result.strongest_target}
        assert flags == {"nsw", "nuw"}

    def test_unneeded_source_flag_weakened(self):
        # the rewrite is correct without requiring nsw on the source
        t, result = infer("%r = add nsw %x, 0\n=>\n%r = %x")
        assert result.precondition_weakened
        assert result.weakest_source == frozenset()

    def test_required_source_flag_kept(self):
        # here the source nsw is essential (x+1 > x needs no-overflow)
        t, result = infer("""
        %1 = add nsw %x, 1
        %2 = icmp sgt %1, %x
        =>
        %2 = true
        """)
        assert not result.precondition_weakened
        assert ("src", "%1", "nsw") in result.weakest_source

    def test_flags_restored_after_inference(self):
        t = parse_transformation("%r = add nsw %x, %y\n=>\n%r = add %y, %x")
        infer_attributes(t, CFG)
        assert t.src["%r"].flags == ("nsw",)
        assert t.tgt["%r"].flags == ()

    def test_no_slots_is_a_noop(self):
        t, result = infer("%r = and %x, %x\n=>\n%r = %x")
        assert result.slots == []
        assert not result.precondition_weakened
        assert not result.postcondition_strengthened

    def test_incorrect_transformation_reports_nothing(self):
        t, result = infer("%r = add %x, 1\n=>\n%r = add %x, 2")
        assert result.weakest_source is None
        assert result.strongest_target is None

    def test_exact_inference_on_shifts(self):
        # shl nuw by C then lshr by C returns x; lshr may become exact
        t, result = infer("""
        %a = shl nuw %x, C
        %r = lshr %a, C
        =>
        %r = %x
        """)
        assert result.weakest_source is not None
        # source nuw is required: without it high bits may be lost
        assert ("src", "%a", "nuw") in result.weakest_source

    def test_describe_mentions_flags(self):
        _, result = infer("%r = add nsw %x, %y\n=>\n%r = add %y, %x")
        text = result.describe()
        assert "strongest target attributes" in text
        assert "nsw" in text
