"""Token-bucket rate limiting for the verification service.

Admission control has two layers: a global bound on queued work (the
batcher's queue depth, enforced in :mod:`repro.serve.server`) and this
per-connection token bucket, which keeps one chatty client from
monopolizing the queue that all clients share.  The bucket never
sleeps — callers get back the time until the next token and turn it
into a fast ``rate_limited`` + ``retry_after`` rejection, so a greedy
client costs the event loop nothing.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate`` of ``None`` or ``<= 0`` disables limiting entirely (every
    acquire succeeds).  The clock is injectable so tests never sleep.
    """

    def __init__(self, rate: Optional[float], burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = rate if rate and rate > 0 else None
        if self.rate is None:
            self.burst = 0.0
        else:
            self.burst = float(burst) if burst and burst > 0 \
                else max(1.0, self.rate)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        self._stamp = now
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> float:
        """Take *tokens* if available.

        Returns ``0.0`` on success, otherwise the seconds until enough
        tokens will have accumulated (a ``retry_after`` hint) — the
        bucket is left untouched on failure.
        """
        if self.rate is None:
            return 0.0
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return 0.0
        return (tokens - self._tokens) / self.rate
