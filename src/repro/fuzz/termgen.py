"""Seeded random generation of well-sorted SMT terms.

Produces Bool- and BitVec-sorted DAGs over a small variable pool whose
total domain stays brute-forceable, which is the precondition for the
differential oracle in :mod:`repro.fuzz.oracles`: every generated
formula can be exhaustively evaluated by :mod:`repro.smt.brute` and
:mod:`repro.smt.eval` and compared against the CDCL + bit-blasting
pipeline in :mod:`repro.smt.solver`.

Generation goes through the smart constructors of
:mod:`repro.smt.terms`, so the local simplifier is exercised on every
node; the global simplifier (:mod:`repro.smt.simplify`) is compared
separately by the oracle.  Generation is deterministic in the
``random.Random`` instance passed in: the same seed yields the same
semantic formula sequence (commutative-argument order may differ across
interpreter runs because hash-consing canonicalizes by object identity,
but that never changes a formula's meaning or the oracle verdicts).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..smt import terms as T
from ..smt.brute import domain_size
from ..smt.terms import Term


class TermGenConfig:
    """Shape parameters for the term generator.

    Attributes:
        widths: bitvector widths to draw variables and constants from.
        max_bv_vars: bitvector variables available per formula.
        max_bool_vars: Boolean variables available per formula.
        max_depth: recursion depth bound for one formula.
        max_domain: cap on the brute-force domain of a formula's free
            variables; the generator never exceeds it by construction.
    """

    def __init__(self, widths: Sequence[int] = (1, 2, 3, 4),
                 max_bv_vars: int = 3, max_bool_vars: int = 2,
                 max_depth: int = 5, max_domain: int = 1 << 14):
        self.widths = tuple(widths)
        self.max_bv_vars = max_bv_vars
        self.max_bool_vars = max_bool_vars
        self.max_depth = max_depth
        self.max_domain = max_domain


_BV_BINOPS = (
    T.bvadd, T.bvsub, T.bvmul, T.bvudiv, T.bvsdiv, T.bvurem, T.bvsrem,
    T.bvshl, T.bvlshr, T.bvashr, T.bvand, T.bvor, T.bvxor,
)

_BV_CMPS = (T.ult, T.ule, T.ugt, T.uge, T.slt, T.sle, T.sgt, T.sge)


class TermGen:
    """A deterministic random term generator over a fixed variable pool."""

    def __init__(self, rng: random.Random,
                 cfg: Optional[TermGenConfig] = None):
        self.rng = rng
        self.cfg = cfg or TermGenConfig()
        self._pick_vars()

    def _pick_vars(self) -> None:
        cfg, rng = self.cfg, self.rng
        self.bool_vars: List[Term] = [
            T.bool_var("p%d" % i)
            for i in range(rng.randint(1, cfg.max_bool_vars))
        ]
        self.bv_vars: List[Term] = []
        budget_bits = cfg.max_domain.bit_length() - 1 - len(self.bool_vars)
        for i in range(rng.randint(1, cfg.max_bv_vars)):
            width = rng.choice(cfg.widths)
            if width > budget_bits:
                continue
            budget_bits -= width
            self.bv_vars.append(T.bv_var("v%d" % i, width))
        if not self.bv_vars:
            self.bv_vars.append(T.bv_var("v0", min(cfg.widths)))

    # ------------------------------------------------------------------

    def formula(self) -> Term:
        """One random Boolean formula over the pool."""
        return self.gen_bool(self.cfg.max_depth)

    def gen_bool(self, depth: int) -> Term:
        rng = self.rng
        if depth <= 0:
            roll = rng.random()
            if roll < 0.5:
                return rng.choice(self.bool_vars)
            if roll < 0.7:
                return T.bool_const(rng.random() < 0.5)
            v = rng.choice(self.bv_vars)
            return T.eq(v, self._bv_const(v.width))
        production = rng.randrange(10)
        if production == 0:
            return T.not_(self.gen_bool(depth - 1))
        if production == 1:
            return T.and_(*[self.gen_bool(depth - 1)
                            for _ in range(rng.randint(2, 3))])
        if production == 2:
            return T.or_(*[self.gen_bool(depth - 1)
                           for _ in range(rng.randint(2, 3))])
        if production == 3:
            return T.xor_bool(self.gen_bool(depth - 1), self.gen_bool(depth - 1))
        if production == 4:
            return T.implies(self.gen_bool(depth - 1), self.gen_bool(depth - 1))
        if production == 5:
            return T.iff(self.gen_bool(depth - 1), self.gen_bool(depth - 1))
        if production == 6:
            return T.ite(self.gen_bool(depth - 1), self.gen_bool(depth - 1),
                         self.gen_bool(depth - 1))
        width = self._some_width()
        a = self.gen_bv(width, depth - 1)
        b = self.gen_bv(width, depth - 1)
        if production == 7:
            return T.eq(a, b)
        if production == 8:
            return T.ne(a, b)
        return rng.choice(_BV_CMPS)(a, b)

    def gen_bv(self, width: int, depth: int) -> Term:
        rng = self.rng
        if depth <= 0:
            return self._bv_leaf(width)
        production = rng.randrange(8)
        if production == 0:
            return self._bv_leaf(width)
        if production == 1:
            inner = self.gen_bv(width, depth - 1)
            return T.bvnot(inner) if rng.random() < 0.5 else T.bvneg(inner)
        if production in (2, 3, 4):
            op = rng.choice(_BV_BINOPS)
            return op(self.gen_bv(width, depth - 1), self.gen_bv(width, depth - 1))
        if production == 5:
            return T.ite(self.gen_bool(depth - 1),
                         self.gen_bv(width, depth - 1),
                         self.gen_bv(width, depth - 1))
        if production == 6 and width > 1:
            # widen a narrower term
            narrow = rng.randint(1, width - 1)
            inner = self.gen_bv(narrow, depth - 1)
            if rng.random() < 0.3:
                return T.concat(self.gen_bv(width - narrow, depth - 1), inner)
            ext = T.zext_to if rng.random() < 0.5 else T.sext_to
            return ext(inner, width)
        if production == 7:
            # narrow a wider term with extract
            wider = width + rng.randint(1, 2)
            inner = self.gen_bv(wider, depth - 1)
            lo = rng.randint(0, wider - width)
            return T.extract(inner, lo + width - 1, lo)
        return self._bv_leaf(width)

    # ------------------------------------------------------------------

    def _some_width(self) -> int:
        if self.rng.random() < 0.8:
            return self.rng.choice(self.bv_vars).width
        return self.rng.choice(self.cfg.widths)

    def _bv_const(self, width: int) -> Term:
        specials = (0, 1, T.mask(width), T.min_signed(width))
        if self.rng.random() < 0.5:
            return T.bv_const(self.rng.choice(specials), width)
        return T.bv_const(self.rng.randrange(1 << width), width)

    def _bv_leaf(self, width: int) -> Term:
        candidates = [v for v in self.bv_vars if v.width == width]
        if candidates and self.rng.random() < 0.65:
            return self.rng.choice(candidates)
        return self._bv_const(width)

    # ------------------------------------------------------------------

    def ef_query(self) -> Tuple[List[Term], List[Term], Term]:
        """A random ∃∀ instance: ``(outer_vars, inner_vars, phi)``.

        The inner (universally quantified) block is a random subset of
        the formula's free variables, biased small so the expansion and
        CEGIS strategies of :func:`repro.smt.solver.solve_exists_forall`
        are both reachable.
        """
        phi = self.formula()
        free = sorted(T.free_vars(phi), key=lambda v: v.data)
        inner: List[Term] = []
        outer: List[Term] = []
        for v in free:
            if self.rng.random() < 0.35:
                inner.append(v)
            else:
                outer.append(v)
        return outer, inner, phi


def formula_domain_ok(formula: Term, max_domain: int) -> bool:
    """True when the formula's free-variable domain is brute-forceable."""
    return domain_size(T.free_vars(formula)) <= max_domain
