"""Static analysis of Alive rule sets (``python -m repro lint``).

Two tiers of passes over a parsed rule set:

* **AST tier** (:mod:`repro.lint.passes`) — in-process dataflow checks:
  duplicate names, no-op rules, preconditions over unbound names,
  unused constant bindings, constant-foldable preconditions.
* **Semantic tier** (:mod:`repro.lint.semantic`) — SMT-backed checks
  dispatched as content-addressed jobs through the batch engine: dead
  preconditions, redundant clauses, inter-rule subsumption, attribute
  slack (Figure 6 inference) and rewrite-cycle divergence.

Entry points: :func:`lint_files` / :func:`lint_rules`; results come
back as a :class:`~repro.lint.findings.LintReport` that renders to
human text, JSON or SARIF 2.1.0.
"""

from .findings import (
    AST_PASSES,
    Finding,
    LintReport,
    PASSES,
    SEMANTIC_PASSES,
    SEV_ERROR,
    SEV_INFO,
    SEV_WARNING,
    dump_json,
    finding_id,
    load_allowlist,
)
from .runner import LintOptions, lint_files, lint_rules
from .semantic import SubsumptionVerdict, subsumes

__all__ = [
    "AST_PASSES",
    "Finding",
    "LintOptions",
    "LintReport",
    "PASSES",
    "SEMANTIC_PASSES",
    "SEV_ERROR",
    "SEV_INFO",
    "SEV_WARNING",
    "SubsumptionVerdict",
    "dump_json",
    "finding_id",
    "lint_files",
    "lint_rules",
    "load_allowlist",
    "subsumes",
]
