"""Figure 5 — Alive's counterexample for PR21245.

The paper prints this counterexample for the incorrect PR21245
transformation at type i4::

    ERROR: Mismatch in values of i4 %r
    Example:
    %X i4 = 0xF (15, -1)
    C1 i4 = 0x3 (3)
    C2 i4 = 0x8 (8, -8)
    %s i4 = 0x8 (8, -8)
    Source value: 0x1 (1)
    Target value: 0xF (15, -1)

We regenerate the counterexample with the same formatting and check
that it is a genuine refutation (re-evaluating both templates under the
model).  Solver search order may produce a *different* model; the test
asserts the semantic properties (i4, a value mismatch, model really
refutes) and prints both for visual comparison.
"""

from __future__ import annotations

from repro.core import Config, verify
from repro.suite import load_bugs

PAPER_TEXT = """ERROR: Mismatch in values of i4 %r

Example:
%X i4 = 0xF (15, -1)
C1 i4 = 0x3 (3)
C2 i4 = 0x8 (8, -8)
%s i4 = 0x8 (8, -8)
Source value: 0x1 (1)
Target value: 0xF (15, -1)"""


def run_figure5():
    config = Config(max_width=4, prefer_widths=(4,), max_type_assignments=1)
    pr21245 = next(t for t in load_bugs() if t.name == "PR21245")
    return verify(pr21245, config)


def test_figure5(benchmark, report):
    result = benchmark.pedantic(run_figure5, iterations=1, rounds=1)
    assert result.status == "invalid"
    cex = result.counterexample
    text = cex.format()

    report("Figure 5 — counterexample for PR21245")
    report("")
    report("paper:")
    report(PAPER_TEXT)
    report("")
    report("reproduced:")
    report(text)

    assert cex.kind == "value"
    assert cex.type_str == "i4"
    assert cex.value_name == "%r"
    assert cex.source_value != cex.target_value
    # the input section lists %X, C1, C2 and the intermediate %s
    names = [name for name, _, _, _ in cex.inputs + cex.intermediates]
    assert set(names) == {"%X", "C1", "C2", "%s"}
    # with the width-4-first search bias, the solver finds the paper's
    # exact model; keep this assertion as long as it holds
    assert text == PAPER_TEXT
