"""Finding model for the rule-set linter.

A *finding* is one diagnosed hygiene problem in an Alive rule set:
identified by the pass that produced it, carrying a severity, a source
span (``path:line:col`` from the parser), a human message and stable
machine data.  Finding IDs are content-addressed — hashed over the pass
name, the rule's *normalized body* (name header stripped, exactly like
the engine's cache keys) and a per-pass discriminator — so renaming a
rule, moving it between files or re-running the linter never changes an
ID.  That is what makes allowlists and SARIF baselines workable.

Severities follow the usual linter contract:

* ``error`` — the rule is broken (can never fire, references undefined
  names, makes the optimizer loop); the ``lint`` command exits 1.
* ``warning`` — the rule works but carries dead weight (redundant
  clause, shadowed by an earlier rule, droppable attribute).
* ``info`` — stylistic or opportunity notes (unused binding, a target
  attribute that could be strengthened).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence

SEV_ERROR = "error"
SEV_WARNING = "warning"
SEV_INFO = "info"

_SEV_RANK = {SEV_ERROR: 0, SEV_WARNING: 1, SEV_INFO: 2}

#: severity -> SARIF 2.1.0 result level
_SARIF_LEVEL = {SEV_ERROR: "error", SEV_WARNING: "warning", SEV_INFO: "note"}

#: pass id -> (tier, one-line description); the single registry shared
#: by --help text, SARIF rule metadata and the docs
PASSES = {
    "duplicate-name": (
        "ast", "two rules share one name; tools keyed on rule names "
        "silently report only the first"),
    "noop-rule": (
        "ast", "source and target templates are identical; the rule "
        "rewrites nothing"),
    "undefined-pre-name": (
        "ast", "the precondition references a name the source template "
        "never binds, so the predicate can never be evaluated"),
    "unused-binding": (
        "ast", "a matched abstract constant is used neither by the "
        "precondition nor the target"),
    "pre-constant-fold": (
        "ast", "a precondition (or one clause) built from literals "
        "folds to a fixed truth value at every width"),
    "dead-precondition": (
        "semantic", "the precondition is unsatisfiable over every "
        "feasible type assignment; the rule can never fire"),
    "redundant-pre-clause": (
        "semantic", "a precondition clause is implied by the "
        "conjunction of the other clauses"),
    "subsumed-rule": (
        "semantic", "an earlier, more general rule already covers this "
        "rule's source pattern and precondition"),
    "attr-slack": (
        "semantic", "declared nsw/nuw/exact attributes differ from the "
        "inferred weakest-source / strongest-target placement"),
    "rewrite-cycle": (
        "semantic", "driving the rule set to fixpoint from this rule's "
        "instances does not converge"),
    "provable-by-absint": (
        "semantic", "the rule's refinement obligation is discharged by "
        "the verified abstract-interpretation tier alone at every "
        "feasible type assignment; the solver is never needed"),
    "absint-refuted-pre": (
        "semantic", "a precondition atom is contradicted by the "
        "known-bits/interval analysis at every feasible type "
        "assignment; a concrete witness confirms it can never hold"),
    "unsupported-fp": (
        "semantic", "the rule uses floating-point instructions; the "
        "semantic passes that do not model IEEE-754 semantics are "
        "skipped for this rule"),
}

AST_PASSES = tuple(p for p, (tier, _) in PASSES.items() if tier == "ast")
SEMANTIC_PASSES = tuple(
    p for p, (tier, _) in PASSES.items() if tier == "semantic")


def finding_id(pass_id: str, body: str, extra: str = "") -> str:
    """Stable content-addressed finding ID.

    *body* should be the rule's normalized printed form (not its name or
    file position) so the ID survives renames and file reshuffles.
    """
    digest = hashlib.sha256()
    for part in (pass_id, body, extra):
        blob = part.encode("utf-8")
        # length-prefixed so adjacent fields can never be re-split
        digest.update(b"%d:" % len(blob))
        digest.update(blob)
    return "%s-%s" % (pass_id, digest.hexdigest()[:12])


class Finding:
    """One lint diagnosis, with span, severity and stable identity."""

    __slots__ = ("id", "pass_id", "severity", "rule", "message",
                 "path", "line", "col", "data", "related")

    def __init__(self, fid: str, pass_id: str, severity: str, rule: str,
                 message: str, path: Optional[str] = None,
                 line: Optional[int] = None, col: Optional[int] = None,
                 data: Optional[dict] = None,
                 related: Optional[List[dict]] = None):
        if pass_id not in PASSES:
            raise ValueError("unknown lint pass %r" % pass_id)
        if severity not in _SEV_RANK:
            raise ValueError("unknown severity %r" % severity)
        self.id = fid
        self.pass_id = pass_id
        self.severity = severity
        self.rule = rule
        self.message = message
        self.path = path
        self.line = line
        self.col = col
        self.data = data or {}
        self.related = related or []

    def location(self) -> str:
        """``path:line:col`` with whatever parts are known."""
        parts = [self.path or "<memory>"]
        if self.line is not None:
            parts.append(str(self.line))
            if self.col is not None:
                parts.append(str(self.col))
        return ":".join(parts)

    def sort_key(self):
        return (self.path or "~", self.line or 0, self.col or 0,
                _SEV_RANK[self.severity], self.pass_id, self.id)

    def to_dict(self) -> dict:
        out = {
            "id": self.id,
            "pass": self.pass_id,
            "severity": self.severity,
            "rule": self.rule,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }
        if self.data:
            out["data"] = self.data
        if self.related:
            out["related"] = self.related
        return out

    def format(self) -> str:
        return "%s: %s: [%s] %s: %s  (%s)" % (
            self.location(), self.severity, self.pass_id, self.rule,
            self.message, self.id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Finding(%s, %s)" % (self.id, self.rule)


class LintReport:
    """The result of linting one rule set.

    ``findings`` are the live diagnoses (sorted by span), ``suppressed``
    the ones an allowlist filtered out (kept so staleness of the
    allowlist itself is checkable), ``files`` the inputs, ``stats`` the
    :class:`~repro.engine.stats.EngineStats` of the semantic-job
    dispatch (None when the semantic tier was skipped).
    """

    def __init__(self, findings: Sequence[Finding],
                 suppressed: Sequence[Finding] = (),
                 files: Sequence[str] = (),
                 rules_checked: int = 0,
                 stats=None):
        self.findings = sorted(findings, key=Finding.sort_key)
        self.suppressed = sorted(suppressed, key=Finding.sort_key)
        self.files = list(files)
        self.rules_checked = rules_checked
        self.stats = stats

    def counts(self) -> Dict[str, int]:
        out = {SEV_ERROR: 0, SEV_WARNING: 0, SEV_INFO: 0}
        for f in self.findings:
            out[f.severity] += 1
        return out

    def by_pass(self, pass_id: str) -> List[Finding]:
        return [f for f in self.findings if f.pass_id == pass_id]

    def exit_code(self) -> int:
        """1 only when an error-severity finding survived the allowlist."""
        return 1 if self.counts()[SEV_ERROR] else 0

    def format_text(self) -> str:
        lines = [f.format() for f in self.findings]
        counts = self.counts()
        summary = (
            "%d finding(s) in %d rule(s): %d error(s), %d warning(s), "
            "%d info" % (len(self.findings), self.rules_checked,
                         counts[SEV_ERROR], counts[SEV_WARNING],
                         counts[SEV_INFO])
        )
        if self.suppressed:
            summary += "; %d suppressed by allowlist" % len(self.suppressed)
        lines.append(summary)
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "version": 1,
            "files": self.files,
            "rules_checked": self.rules_checked,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "summary": self.counts(),
        }

    def to_sarif(self, tool_version: str = "1.0.0") -> dict:
        """SARIF 2.1.0 log with one run and per-pass rule metadata."""
        rules = []
        rule_index = {}
        for pass_id, (tier, description) in PASSES.items():
            rule_index[pass_id] = len(rules)
            rules.append({
                "id": pass_id,
                "shortDescription": {"text": description},
                "properties": {"tier": tier},
            })
        results = []
        for f in self.findings:
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path or "<memory>"},
                }
            }
            region = {}
            if f.line is not None:
                region["startLine"] = f.line
            if f.col is not None:
                region["startColumn"] = f.col
            if region:
                location["physicalLocation"]["region"] = region
            results.append({
                "ruleId": f.pass_id,
                "ruleIndex": rule_index[f.pass_id],
                "level": _SARIF_LEVEL[f.severity],
                "message": {"text": "%s: %s" % (f.rule, f.message)},
                "locations": [location],
                "partialFingerprints": {"alive/findingId": f.id},
            })
        return {
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "alive-repro-lint",
                    "informationUri":
                        "https://github.com/nunoplopes/alive",
                    "version": tool_version,
                    "rules": rules,
                }},
                "results": results,
            }],
        }


def load_allowlist(path: str) -> frozenset:
    """Read an allowlist file: one finding ID per line, ``#`` comments."""
    ids = set()
    with open(path) as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if line:
                ids.add(line)
    return frozenset(ids)


def dump_json(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)
