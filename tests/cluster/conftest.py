"""Fixtures for the cluster suite.

Coordinator behavior (failover, hedging, replication, provenance) is
tested against **fake nodes**: in-process objects that answer
``request_jobs`` by running the real engine (:func:`repro.engine.
submit_jobs`) against their own per-node :class:`ResultCache`.  The
verification semantics are therefore real — verdicts, keys and cache
entries are exactly what a live ``repro serve`` node would produce —
while the transport is synchronous, injectable, and scriptable
(``dead``, ``latency``, ``transient_once``).  The end-to-end
subprocess path is covered separately by ``test_failover.py``.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

import pytest

from repro import chaos
from repro.cluster import ClusterCoordinator, ClusterOptions
from repro.core import Config
from repro.engine import EngineStats, ResultCache, submit_jobs
from repro.engine.cache import semantics_fingerprint
from repro.ir import parse_transformation
from repro.serve.client import ClientError

TEST_CONFIG = Config(max_width=4, prefer_widths=(4,),
                     max_type_assignments=2)

#: a small mixed corpus: valid identities plus one refuted rule, so
#: parity checks cover both verdict paths and a counterexample text
CORPUS_TEXTS = [
    "Name: good-add\n%r = add %x, 0\n=>\n%r = %x\n",
    "Name: bad-add\n%r = add %x, 1\n=>\n%r = add %x, 2\n",
    "Name: good-sub\n%r = sub %x, 0\n=>\n%r = %x\n",
    "Name: good-or\n%r = or %x, 0\n=>\n%r = %x\n",
    "Name: good-xor\n%r = xor %x, 0\n=>\n%r = %x\n",
    "Name: good-mul\n%r = mul %x, 1\n=>\n%r = %x\n",
]


def corpus():
    return [parse_transformation(text, "t%d" % i)
            for i, text in enumerate(CORPUS_TEXTS)]


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    yield
    chaos.uninstall()


class FakeNode:
    """One in-process 'verifier node' with its own result cache."""

    def __init__(self, node_id: str, cache_path: str, fingerprint: str):
        self.node_id = node_id
        self.addr = "fake://%s" % node_id
        self.cache = ResultCache(cache_path, fingerprint=fingerprint)
        self.dead = False          # connection refused on any request
        self.latency = 0.0         # seconds each request_jobs blocks
        self.transient_once: set = set()  # keys answered transiently once
        self.requests: List[dict] = []
        self.installed: List[str] = []    # keys adopted via cache_put


class FakeClient:
    """Duck-typed :class:`VerifyClient` bound to one :class:`FakeNode`."""

    def __init__(self, node: FakeNode):
        self.node = node

    def request_jobs(self, payloads, shard=None, hedged=False):
        node = self.node
        node.requests.append({"keys": [p["key"] for p in payloads],
                              "shard": shard, "hedged": hedged})
        if node.dead:
            raise ClientError("connection refused (fake dead node)")
        if node.latency:
            time.sleep(node.latency)
        outcomes: Dict[str, dict] = {}
        fresh = []
        for payload in payloads:
            if payload["key"] in node.transient_once:
                node.transient_once.discard(payload["key"])
                outcomes[payload["key"]] = {
                    "status": "unknown", "detail": "gave up",
                    "transient": True}
            else:
                fresh.append(payload)
        stats = EngineStats()
        outcomes.update(submit_jobs(fresh, jobs=1, cache=node.cache,
                                    stats=stats))
        return {"ok": True, "outcomes": outcomes,
                "stats": {"jobs": len(payloads),
                          "cache_hits": stats.cache_hits}}

    def cache_put(self, entries):
        node = self.node
        if node.dead:
            raise ClientError("connection refused (fake dead node)")
        installed = rejected = 0
        for entry in entries:
            if node.cache.install(entry):
                installed += 1
                node.installed.append(entry["key"])
            else:
                rejected += 1
        return {"ok": True, "installed": installed, "rejected": rejected}

    def healthz(self):
        if self.node.dead:
            raise ClientError("connection refused (fake dead node)")
        return {"status": "ok", "node_id": self.node.node_id}

    def close(self):
        pass


class FakeCluster:
    """A coordinator wired to fake nodes, plus the injected hooks."""

    def __init__(self, coordinator: ClusterCoordinator,
                 nodes: Dict[str, FakeNode], sleeps: List[float]):
        self.coordinator = coordinator
        self.nodes = nodes
        self.sleeps = sleeps  # coordinator backoff sleeps (never real)

    def node(self, node_id: str) -> FakeNode:
        return self.nodes[node_id]


@pytest.fixture
def make_cluster(tmp_path):
    """Factory: ``make_cluster(count=3, cache=False, **options)``."""

    def build(count: int = 3, cache: bool = False,
              rng=None, **option_kwargs) -> FakeCluster:
        fingerprint = semantics_fingerprint()
        nodes = {}
        for i in range(count):
            node_id = "n%d" % i
            nodes[node_id] = FakeNode(
                node_id, str(tmp_path / ("%s.jsonl" % node_id)),
                fingerprint)
        by_addr = {node.addr: node for node in nodes.values()}
        # big hedge delay by default: tests that want hedging opt in
        option_kwargs.setdefault("hedge_delay", 30.0)
        option_kwargs.setdefault("chunk_size", 2)
        coordinator_cache: Optional[ResultCache] = None
        if cache:
            coordinator_cache = ResultCache(
                str(tmp_path / "coordinator.jsonl"),
                fingerprint=fingerprint)
        sleeps: List[float] = []
        import random as random_mod
        coordinator = ClusterCoordinator(
            {node_id: node.addr for node_id, node in nodes.items()},
            config=TEST_CONFIG,
            cache=coordinator_cache,
            options=ClusterOptions(**option_kwargs),
            client_factory=lambda addr: FakeClient(by_addr[addr]),
            rng=rng if rng is not None else random_mod.Random(0),
            sleep=sleeps.append)
        return FakeCluster(coordinator, nodes, sleeps)

    return build
