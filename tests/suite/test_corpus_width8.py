"""Spot verification of corpus entries at width 8.

The fast suite verifies everything at width 4; this file re-proves a
representative sample across all feasible widths up to 8 (closer to the
paper's 64-bit bound) to guard against width-4-only coincidences, e.g.
masks that happen to be all-ones at small widths.
"""

import pytest

from repro.core import Config, verify
from repro.suite import load_all_flat

CFG8 = Config(max_width=8, prefer_widths=(8, 4), max_type_assignments=3)

SAMPLE = [
    "AddSub:1043-xor-add",
    "AddSub:add-signbit-is-xor",
    "AddSub:nsw-const-chain",
    "AndOrXor:fig2-masked-or",
    "AndOrXor:masked-merge",
    "AndOrXor:xor-sign-split",
    "AndOrXor:icmp-slt-of-not",
    "MulDivRem:sdiv-neg-divisor",
    "MulDivRem:urem-pow2-to-and",
    "MulDivRem:mul-signbit-to-shl",
    "Select:sign-to-ashr",
    "Select:select-zero-is-sext-mask",
    "Shifts:shl-nsw-ashr-narrower",
    "Shifts:signbit-lshr-to-zext-icmp",
]


@pytest.fixture(scope="module")
def corpus():
    return {t.name: t for t in load_all_flat()}


@pytest.mark.parametrize("name", SAMPLE)
def test_valid_at_width8(corpus, name):
    result = verify(corpus[name], CFG8)
    assert result.status == "valid", (name, result.detail)


def test_bug_refuted_at_width8():
    from repro.suite import load_bugs

    pr21242 = next(t for t in load_bugs() if t.name == "PR21242")
    result = verify(pr21242, CFG8)
    assert result.status == "invalid"
    # the refutation is still reported at a readable width (8 preferred)
    assert result.counterexample.width in (4, 8)
