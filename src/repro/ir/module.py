"""A concrete, mutable LLVM-like IR for the peephole pass engine.

The verifier works on polymorphic Alive *templates*; the optimizer
(:mod:`repro.opt`) rewrites *concrete* programs.  This module provides
that concrete IR: single-basic-block SSA functions over fixed-width
integers, mirroring the instruction set of Figure 1 (InstCombine does
not modify control flow, so one block suffices — the paper's §2.1).

The IR is deliberately simple: values are :class:`MConst`,
:class:`MArg`, or :class:`MInstr`; a :class:`MFunction` owns an ordered
instruction list and a distinguished return value.  Use counts are
maintained for ``hasOneUse``-style predicates and for DCE.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .ast import BINOPS, FBINOPS, FCMP_CONDS, FLAG_OK, FP_FLAGS, ICMP_CONDS

#: widths that denote an IEEE-754 format in the concrete IR (the IR
#: carries widths only; FP-ness is implied by the opcode)
FP_WIDTHS = (16, 32, 64)


class MValue:
    """Base class for concrete IR values; ``width`` is the bit width."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width


class MConst(MValue):
    """A constant integer (stored unsigned, truncated to width)."""

    __slots__ = ("value",)

    def __init__(self, value: int, width: int):
        super().__init__(width)
        self.value = value & ((1 << width) - 1)

    def __repr__(self) -> str:
        return "i%d %d" % (self.width, self.value)


class MArg(MValue):
    """A function argument (an opaque input)."""

    __slots__ = ("name",)

    def __init__(self, name: str, width: int):
        super().__init__(width)
        self.name = name

    def __repr__(self) -> str:
        return "%s:i%d" % (self.name, self.width)


class MInstr(MValue):
    """A concrete instruction.

    ``opcode`` is one of the binops, ``icmp``, ``select``, ``zext``,
    ``sext``, or ``trunc``.  For ``icmp`` the predicate is in ``cond``.
    """

    __slots__ = ("name", "opcode", "operands", "flags", "cond")

    def __init__(self, name: str, opcode: str, operands: Sequence[MValue],
                 width: int, flags: Sequence[str] = (), cond: Optional[str] = None):
        super().__init__(width)
        self.name = name
        self.opcode = opcode
        self.operands = list(operands)
        self.flags = set(flags)
        self.cond = cond
        self._check()

    def _check(self) -> None:
        if self.opcode in BINOPS:
            assert len(self.operands) == 2
            for f in self.flags:
                if f not in FLAG_OK.get(self.opcode, ()):
                    raise ValueError(
                        "flag %r not allowed on %r" % (f, self.opcode)
                    )
            for op in self.operands:
                if op.width != self.width:
                    raise ValueError("width mismatch in %s" % self.name)
        elif self.opcode == "icmp":
            assert self.cond in ICMP_CONDS
            assert len(self.operands) == 2
            if self.width != 1:
                raise ValueError("icmp result must be i1")
            if self.operands[0].width != self.operands[1].width:
                raise ValueError("icmp operand width mismatch")
        elif self.opcode == "select":
            assert len(self.operands) == 3
            if self.operands[0].width != 1:
                raise ValueError("select condition must be i1")
            if not (self.operands[1].width == self.operands[2].width == self.width):
                raise ValueError("select arm width mismatch")
        elif self.opcode in ("zext", "sext"):
            assert len(self.operands) == 1
            if self.operands[0].width >= self.width:
                raise ValueError("%s must widen" % self.opcode)
        elif self.opcode == "trunc":
            assert len(self.operands) == 1
            if self.operands[0].width <= self.width:
                raise ValueError("trunc must narrow")
        elif self.opcode in FBINOPS:
            assert len(self.operands) == 2
            for f in self.flags:
                if f not in FP_FLAGS:
                    raise ValueError(
                        "flag %r not allowed on %r" % (f, self.opcode)
                    )
            if self.width not in FP_WIDTHS:
                raise ValueError(
                    "no floating-point format of width %d" % self.width
                )
            for op in self.operands:
                if op.width != self.width:
                    raise ValueError("width mismatch in %s" % self.name)
        elif self.opcode == "fcmp":
            assert self.cond in FCMP_CONDS
            assert len(self.operands) == 2
            if self.width != 1:
                raise ValueError("fcmp result must be i1")
            if self.operands[0].width != self.operands[1].width:
                raise ValueError("fcmp operand width mismatch")
            if self.operands[0].width not in FP_WIDTHS:
                raise ValueError("fcmp operands must have an FP width")
        elif self.opcode in ("fpext", "fptrunc"):
            assert len(self.operands) == 1
            if (self.width not in FP_WIDTHS
                    or self.operands[0].width not in FP_WIDTHS):
                raise ValueError("%s requires FP widths" % self.opcode)
            if self.opcode == "fpext" and self.operands[0].width >= self.width:
                raise ValueError("fpext must widen")
            if self.opcode == "fptrunc" and self.operands[0].width <= self.width:
                raise ValueError("fptrunc must narrow")
        elif self.opcode in ("fptosi", "fptoui"):
            assert len(self.operands) == 1
            if self.operands[0].width not in FP_WIDTHS:
                raise ValueError("%s operand must have an FP width" % self.opcode)
        elif self.opcode in ("sitofp", "uitofp"):
            assert len(self.operands) == 1
            if self.width not in FP_WIDTHS:
                raise ValueError("%s result must have an FP width" % self.opcode)
        else:
            raise ValueError("unknown opcode %r" % self.opcode)

    def __repr__(self) -> str:
        ops = ", ".join(
            o.name if isinstance(o, (MArg, MInstr)) else repr(o)
            for o in self.operands
        )
        flags = "".join(" " + f for f in sorted(self.flags))
        cond = " %s" % self.cond if self.cond else ""
        return "%s = %s%s%s i%d %s" % (
            self.name, self.opcode, cond, flags, self.width, ops
        )


class MFunction:
    """A single-block SSA function.

    Attributes:
        name: function name.
        args: list of :class:`MArg`.
        instrs: instruction list in definition order.
        ret: the returned value.
    """

    def __init__(self, name: str, args: Sequence[MArg]):
        self.name = name
        self.args = list(args)
        self.instrs: List[MInstr] = []
        self.ret: Optional[MValue] = None
        self._counter = 0

    # ------------------------------------------------------------------

    def fresh_name(self, hint: str = "t") -> str:
        self._counter += 1
        return "%%%s%d" % (hint, self._counter)

    def add(self, opcode: str, operands: Sequence[MValue], width: int,
            flags: Sequence[str] = (), cond: Optional[str] = None,
            name: Optional[str] = None, before: Optional[MInstr] = None) -> MInstr:
        """Create and insert an instruction (at the end, or before
        *before* to keep defs above uses)."""
        inst = MInstr(name or self.fresh_name(), opcode, operands, width,
                      flags, cond)
        if before is None:
            self.instrs.append(inst)
        else:
            self.instrs.insert(self.instrs.index(before), inst)
        return inst

    def use_counts(self) -> Dict[int, int]:
        """Map from value id to number of uses (including by ret)."""
        counts: Dict[int, int] = {}
        for inst in self.instrs:
            for op in inst.operands:
                counts[id(op)] = counts.get(id(op), 0) + 1
        if self.ret is not None:
            counts[id(self.ret)] = counts.get(id(self.ret), 0) + 1
        return counts

    def replace_all_uses(self, old: MValue, new: MValue) -> int:
        """RAUW: rewrite every use of *old* to *new*; returns #rewrites."""
        n = 0
        for inst in self.instrs:
            for i, op in enumerate(inst.operands):
                if op is old:
                    inst.operands[i] = new
                    n += 1
        if self.ret is old:
            self.ret = new
            n += 1
        return n

    def verify(self) -> None:
        """Check SSA well-formedness: defs precede uses, no duplicates."""
        defined = {id(a) for a in self.args}
        names = set()
        for inst in self.instrs:
            if inst.name in names:
                raise ValueError("duplicate instruction name %s" % inst.name)
            names.add(inst.name)
            for op in inst.operands:
                if isinstance(op, MInstr) and id(op) not in defined:
                    raise ValueError(
                        "%s uses %s before its definition" % (inst.name, op.name)
                    )
                if isinstance(op, MArg) and id(op) not in defined:
                    raise ValueError("%s uses unknown argument" % inst.name)
            defined.add(id(inst))
        if isinstance(self.ret, MInstr) and id(self.ret) not in defined:
            raise ValueError("return value is not defined")

    def __repr__(self) -> str:
        lines = ["define %s(%s) {" % (
            self.name, ", ".join(repr(a) for a in self.args)
        )]
        for inst in self.instrs:
            lines.append("  " + repr(inst))
        if self.ret is not None:
            ret = self.ret.name if isinstance(self.ret, (MArg, MInstr)) else repr(self.ret)
            lines.append("  ret %s" % ret)
        lines.append("}")
        return "\n".join(lines)


class Module:
    """A collection of functions (a compilation unit for the benches)."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.functions: List[MFunction] = []

    def add_function(self, fn: MFunction) -> MFunction:
        self.functions.append(fn)
        return fn

    def instruction_count(self) -> int:
        return sum(len(f.instrs) for f in self.functions)
