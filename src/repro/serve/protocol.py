"""Wire protocol for the verification service.

The server speaks newline-delimited JSON (NDJSON) over TCP: one JSON
object per line in each direction, so a blocking client is a
``writeline``/``readline`` pair and the asyncio server never needs a
framing state machine.  The same request/response objects ride the
minimal HTTP shim (``POST /v1/verify``) unchanged.

Request::

    {"id": "r42", "rules": "Name: t\\n%r = add %x, 0\\n=>\\n%r = %x\\n",
     "knobs": {"max_width": 4}}

``rules`` may contain any number of transformations (the same surface
syntax ``verify`` reads from a file); ``knobs`` optionally overrides
the server's default :class:`~repro.core.config.Config` — every knob
participates in the engine's content-addressed job keys, so two
clients asking with different knobs can never share a cached verdict
they should not.

Success response::

    {"id": "r42", "ok": true, "exit_code": 0,
     "results": [{"name": ..., "status": ..., "summary": ...,
                  "detail": ..., "counterexample": ...|null,
                  "assignments_checked": n, "queries": n}],
     "stats": {"jobs": n, "cache_hits": n, "coalesced": n}}

Error response (fast-reject; the request was **not** queued)::

    {"id": "r42", "error": "overloaded", "detail": ..., "retry_after": 0.2}

Error codes: ``bad_request`` (malformed JSON, unparseable rules,
unknown knobs), ``overloaded`` (admission control: queue depth
exceeded, or the server is draining), ``rate_limited`` (per-connection
token bucket empty).  ``overloaded`` and ``rate_limited`` carry a
``retry_after`` hint in seconds; well-behaved clients back off
(:class:`repro.serve.client.VerifyClient` does, with jitter).

Exit codes are defined here — not in the CLI — so that ``repro
verify``, ``repro verify-batch`` and ``repro submit`` mirror each
other exactly: 0 everything proven valid, 1 at least one
transformation refuted (or unsupported/untypeable), 2 undecided only
(some solver budget was exhausted but nothing was refuted).
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional

#: all transformations proven valid
EXIT_OK = 0
#: at least one refuted / unsupported / untypeable
EXIT_REFUTED = 1
#: undecided only — a solver budget expired, nothing refuted
EXIT_BUDGET = 2
#: the run was interrupted (SIGINT / Ctrl-C); the conventional 128+2.
#: Partial progress is already checkpointed in the result cache, so
#: re-running resumes instead of restarting.
EXIT_INTERRUPTED = 130

ERR_BAD_REQUEST = "bad_request"
ERR_OVERLOADED = "overloaded"
ERR_RATE_LIMITED = "rate_limited"

#: error codes a client should retry (after the retry_after hint)
RETRYABLE_ERRORS = (ERR_OVERLOADED, ERR_RATE_LIMITED)

#: one request line may not exceed this (defends the server's memory)
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame (either direction)."""


def exit_code_for_statuses(statuses: Iterable[str]) -> int:
    """The verification exit code for a set of result statuses.

    "unknown" alone must not masquerade as a refutation: a CI gate can
    retry with a bigger budget on 2 but fail hard on 1.
    """
    statuses = set(statuses)
    if statuses & {"invalid", "unsupported", "untypeable"}:
        return EXIT_REFUTED
    if "unknown" in statuses:
        return EXIT_BUDGET
    return EXIT_OK


def encode(obj: dict) -> bytes:
    """One protocol frame: compact JSON plus the line terminator."""
    return json.dumps(obj, sort_keys=True,
                      separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("frame exceeds %d bytes" % MAX_LINE_BYTES)
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as e:
        raise ProtocolError("undecodable frame: %s" % e)
    if not isinstance(obj, dict):
        raise ProtocolError("frame is not a JSON object")
    return obj


def result_to_wire(result) -> dict:
    """Flatten one :class:`~repro.core.verifier.VerificationResult`.

    The counterexample travels as its formatted Figure 5 text — the
    exact bytes ``verify`` would print — so ``repro submit`` output
    matches local verification byte for byte.
    """
    return {
        "name": result.name,
        "status": result.status,
        "summary": result.summary(),
        "detail": result.detail,
        "assignments_checked": result.assignments_checked,
        "queries": result.queries,
        "counterexample": None if result.counterexample is None
        else result.counterexample.format(),
    }


def ok_response(req_id, results: List[dict],
                stats: Optional[dict] = None) -> dict:
    response = {
        "id": req_id,
        "ok": True,
        "results": results,
        "exit_code": exit_code_for_statuses(r["status"] for r in results),
    }
    if stats is not None:
        response["stats"] = stats
    return response


def error_response(req_id, code: str, detail: str = "",
                   retry_after: Optional[float] = None) -> dict:
    response = {"id": req_id, "ok": False, "error": code}
    if detail:
        response["detail"] = detail
    if retry_after is not None:
        response["retry_after"] = round(retry_after, 4)
    return response
