"""Precondition predicates (paper §2.3).

A precondition is a Boolean combination of comparisons over constant
expressions and *built-in predicates* that expose LLVM dataflow-analysis
results (``isPowerOf2``, ``MaskedValueIsZero``, ...).

Each built-in carries:

* its arity,
* its *analysis kind*, which drives the SMT encoding (paper §3.1.1):

  - ``PRECISE`` — the predicate is an exact function of its arguments
    and is encoded directly;
  - ``MUST`` — a must-analysis: a fresh Boolean ``p`` is introduced with
    the side constraint ``p ⇒ s`` (when ``p`` holds, the semantic
    condition ``s`` definitely holds, but ``¬p`` tells us nothing).
    When every argument is a compile-time constant the analysis is
    precise in LLVM, so the encoder switches to the exact condition;
  - ``SYNTACTIC`` — structural properties like ``hasOneUse`` that do not
    constrain runtime values at all (encoded as true for verification,
    honored by the pattern matcher).

The semantic conditions themselves are built in
:mod:`repro.core.semantics` (they need the SMT context).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .ast import AliveError, Value

PRECISE = "precise"
MUST = "must"
SYNTACTIC = "syntactic"

# name -> (arity, kind)
BUILTIN_PREDICATES = {
    "isPowerOf2": (1, MUST),
    "isPowerOf2OrZero": (1, MUST),
    "isSignBit": (1, PRECISE),
    "isShiftedMask": (1, PRECISE),
    "MaskedValueIsZero": (2, MUST),
    "WillNotOverflowSignedAdd": (2, MUST),
    "WillNotOverflowUnsignedAdd": (2, MUST),
    "WillNotOverflowSignedSub": (2, MUST),
    "WillNotOverflowUnsignedSub": (2, MUST),
    "WillNotOverflowSignedMul": (2, MUST),
    "WillNotOverflowUnsignedMul": (2, MUST),
    "WillNotOverflowSignedShl": (2, MUST),
    "WillNotOverflowUnsignedShl": (2, MUST),
    "hasOneUse": (1, SYNTACTIC),
    "isConstant": (1, SYNTACTIC),
}

CMP_OPS = ("==", "!=", "<", "<=", ">", ">=", "u<", "u<=", "u>", "u>=")


class Predicate:
    """Base class for precondition AST nodes.

    ``line``/``col`` are 1-based source coordinates stamped by the
    parser on each node (class-level ``None`` when built in memory), so
    lint findings can point at the exact precondition atom.
    """

    line = None
    col = None

    def children(self) -> Sequence["Predicate"]:
        return ()

    def calls(self) -> List["PredCall"]:
        """All built-in predicate calls in this precondition."""
        out: List[PredCall] = []
        stack: List[Predicate] = [self]
        while stack:
            p = stack.pop()
            if isinstance(p, PredCall):
                out.append(p)
            stack.extend(p.children())
        return out


class PredTrue(Predicate):
    """The trivial precondition (no ``Pre:`` line)."""

    def __str__(self) -> str:
        return "true"


class PredNot(Predicate):
    def __init__(self, p: Predicate):
        self.p = p

    def children(self):
        return (self.p,)

    def __str__(self) -> str:
        return "!%s" % _paren(self.p)


class PredAnd(Predicate):
    def __init__(self, *ps: Predicate):
        self.ps = tuple(ps)

    def children(self):
        return self.ps

    def __str__(self) -> str:
        return " && ".join(_paren(p) for p in self.ps)


class PredOr(Predicate):
    def __init__(self, *ps: Predicate):
        self.ps = tuple(ps)

    def children(self):
        return self.ps

    def __str__(self) -> str:
        return " || ".join(_paren(p) for p in self.ps)


class PredCmp(Predicate):
    """A comparison over constant expressions, e.g. ``C1 u>= C2``."""

    def __init__(self, op: str, a: Value, b: Value):
        if op not in CMP_OPS:
            raise AliveError("unknown comparison operator %r" % op)
        self.op = op
        self.a = a
        self.b = b

    def __str__(self) -> str:
        from .printer import constexpr_str

        return "%s %s %s" % (
            constexpr_str(self.a, True), self.op, constexpr_str(self.b, True)
        )


class PredCall(Predicate):
    """A built-in predicate applied to values, e.g. ``isPowerOf2(C1)``."""

    def __init__(self, fn: str, args: Sequence[Value]):
        info = BUILTIN_PREDICATES.get(fn)
        if info is None:
            raise AliveError("unknown built-in predicate %r" % fn)
        arity, kind = info
        if len(args) != arity:
            raise AliveError(
                "%s expects %d argument(s), got %d" % (fn, arity, len(args))
            )
        self.fn = fn
        self.kind = kind
        self.args = tuple(args)

    def __str__(self) -> str:
        from .printer import constexpr_str

        return "%s(%s)" % (self.fn, ", ".join(constexpr_str(a) for a in self.args))


def _paren(p: Predicate) -> str:
    s = str(p)
    if isinstance(p, (PredAnd, PredOr)) and (" && " in s or " || " in s):
        return "(%s)" % s
    return s
