"""The asyncio verification server.

One process, one event loop, three front doors on a single port:

* **NDJSON over TCP** — the native protocol (see
  :mod:`repro.serve.protocol`); connections are persistent and
  pipelined one request at a time per line.
* **HTTP/1.1 shim** — ``GET /healthz``, ``GET /metrics`` (Prometheus
  text format) and ``POST /v1/verify`` (the NDJSON request object as a
  JSON body).  The shim is deliberately minimal: one request per
  connection, enough for curl, load balancers and scrapers.
* **Signals** — SIGTERM/SIGINT trigger a graceful drain: stop
  accepting, fast-reject new requests, finish everything in flight,
  compact the cache, exit 0.

The request path is three asynchronous stages, each designed so the
event loop never blocks on verification work:

1. **plan** (worker thread): parse the rule text and decompose it into
   content-addressed refinement jobs;
2. **admit**: per-connection token bucket, then the global queue-depth
   bound — a request whose *new* jobs would not fit is rejected with
   ``overloaded`` + ``retry_after`` *before* buffering anything;
3. **resolve**: each unique job is answered by the persistent cache
   (fast path, no dispatch), an identical in-flight job's future
   (dedup), or the micro-batcher, which coalesces concurrent clients
   into shared engine dispatches running in a worker thread.

The failure model is explicit (see README "Failure model"): a
per-connection **read deadline** reaps slowloris clients, frames are
**bounded** in size and rejected in-band when oversize, malformed
requests get structured ``bad_request`` errors, and a **circuit
breaker** around engine dispatch fast-fails requests at admission
while the engine is broken — with ``/healthz`` and ``/metrics``
deliberately outside all of it, so the server stays observable while
on fire.  Every defense exports a counter via ``/metrics``.
"""

from __future__ import annotations

import asyncio
import json
import signal
from functools import partial
from typing import Dict, List, Optional, Tuple

from .. import chaos
from ..core.config import Config, DEFAULT_CONFIG
from ..engine import (EngineStats, ResultCache, Scheduler, aggregate_plan,
                      plan_transformation, submit_jobs)
from ..engine.cache import semantics_fingerprint
from ..ir import AliveError, parse_transformations
from .batcher import MicroBatcher
from .breaker import CircuitBreaker
from .metrics import Metrics
from .protocol import (ERR_BAD_REQUEST, ERR_OVERLOADED, ERR_RATE_LIMITED,
                       MAX_LINE_BYTES, ProtocolError, decode, encode,
                       error_response, ok_response, result_to_wire)
from .ratelimit import TokenBucket

_HTTP_METHODS = (b"GET ", b"POST ", b"HEAD ", b"PUT ", b"DELETE ",
                 b"OPTIONS ")

#: hard cap on HTTP header lines per request (header-flood defense)
_MAX_HTTP_HEADERS = 100


class ServeOptions:
    """Tunables of one server instance (the ``repro serve`` flags)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 7341,
                 jobs: int = 1, max_batch: int = 16,
                 max_wait_ms: float = 20.0, queue_depth: int = 256,
                 rate: float = 0.0, burst: Optional[float] = None,
                 max_retries: int = 1, read_timeout: float = 30.0,
                 max_frame_bytes: int = MAX_LINE_BYTES,
                 breaker_threshold: int = 5,
                 breaker_reset: float = 10.0,
                 node_id: Optional[str] = None,
                 join: Optional[str] = None,
                 heartbeat_interval: float = 2.0):
        self.host = host
        self.port = port
        self.jobs = max(1, jobs)
        self.max_batch = max(1, max_batch)
        self.max_wait_ms = max(0.0, max_wait_ms)
        self.queue_depth = max(1, queue_depth)
        self.rate = rate
        self.burst = burst
        self.max_retries = max(0, max_retries)
        #: seconds a connection may sit mid-frame before being reaped
        #: (slowloris defense; 0 disables)
        self.read_timeout = max(0.0, read_timeout)
        #: largest request frame the server will buffer
        self.max_frame_bytes = max(1024, int(max_frame_bytes))
        self.breaker_threshold = max(1, breaker_threshold)
        self.breaker_reset = max(0.0, breaker_reset)
        #: cluster identity (``--node-id``); labels every metric sample
        self.node_id = node_id
        #: path of a shared cluster membership file (``--join``)
        self.join = join
        self.heartbeat_interval = max(0.1, heartbeat_interval)


class VerifyServer:
    """Verification-as-a-service on top of :mod:`repro.engine`."""

    def __init__(self, config: Config = DEFAULT_CONFIG,
                 cache: Optional[ResultCache] = None,
                 options: Optional[ServeOptions] = None):
        self.config = config
        self.cache = cache
        self.options = options or ServeOptions()
        self.node_id = self.options.node_id
        self.metrics = Metrics(
            labels={"node": self.node_id} if self.node_id else None)
        #: this node's membership incarnation (from the file registry)
        self.generation = 0
        self._registry = None
        self._heartbeat_task: Optional[asyncio.Task] = None
        #: engine-side counters aggregated across every dispatch
        self.stats = EngineStats()
        self.scheduler = Scheduler(jobs=self.options.jobs,
                                   max_retries=self.options.max_retries)
        self.batcher = MicroBatcher(self._dispatch,
                                    max_batch=self.options.max_batch,
                                    max_wait_ms=self.options.max_wait_ms)
        #: fast-fails requests at admission while dispatch is broken
        self.breaker = CircuitBreaker(
            threshold=self.options.breaker_threshold,
            reset_after=self.options.breaker_reset)
        self.fingerprint = cache.fingerprint if cache is not None \
            else semantics_fingerprint()
        self.draining = False
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._active_requests = 0
        self._idle: Optional[asyncio.Event] = None
        self._stopped: Optional[asyncio.Event] = None
        self._writers: set = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; sets :attr:`port`."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_connection, self.options.host, self.options.port,
            limit=self.options.max_frame_bytes)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.options.join:
            self._join_cluster()

    # ------------------------------------------------------------------
    # Cluster membership (``repro serve --join``)
    # ------------------------------------------------------------------

    def _join_cluster(self) -> None:
        """Register in the shared membership file; start heartbeating."""
        # imported lazily: repro.cluster imports repro.serve.client
        from ..cluster.registry import FileRegistry
        if self.node_id is None:
            self.node_id = "node-%d" % self.port
            self.metrics.labels["node"] = self.node_id
        self._registry = FileRegistry(self.options.join)
        addr = "%s:%d" % (self.options.host, self.port)
        self.generation = self._registry.join(self.node_id, addr)
        self.metrics.set_gauge("serve_node_generation", self.generation)
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def _heartbeat_loop(self) -> None:
        """Refresh this node's registry stamp; rejoin if pruned.

        A node that stalls long enough to be pruned by a coordinator
        comes back as a *new incarnation* (fresh generation), so any
        reply stamped with its old generation is correctly discarded.
        """
        addr = "%s:%d" % (self.options.host, self.port)
        loop = asyncio.get_running_loop()
        while not self.draining:
            await asyncio.sleep(self.options.heartbeat_interval)
            if self.draining:
                break
            try:
                alive = await loop.run_in_executor(
                    None, self._registry.heartbeat, self.node_id)
                if not alive:
                    self.generation = await loop.run_in_executor(
                        None, self._registry.join, self.node_id, addr)
                    self.metrics.set_gauge("serve_node_generation",
                                           self.generation)
            except OSError:  # pragma: no cover - registry unwritable
                pass

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.drain()))
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def run(self) -> None:
        """Start (if needed), serve until :meth:`drain` completes."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: finish in-flight work, then stop.

        Idempotent.  Order matters: stop accepting connections first,
        mark draining (new requests on existing connections fast-reject
        with ``overloaded``), wait for active requests to resolve —
        the batcher keeps flushing throughout — then stop the batcher
        and compact the cache so the next server starts from a tidy
        file.
        """
        if self.draining:
            return
        self.draining = True
        self.metrics.set_gauge("serve_draining", 1)
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._registry is not None:
            try:
                self._registry.leave(self.node_id)
            except OSError:  # pragma: no cover - registry unwritable
                pass
        if self._server is not None:
            self._server.close()
        await self._idle.wait()
        await self.batcher.drain()
        if self.cache is not None:
            self.cache.compact()
        for writer in list(self._writers):
            writer.close()
        self._stopped.set()

    def _enter_request(self) -> None:
        self._active_requests += 1
        self._idle.clear()
        self.metrics.set_gauge("serve_inflight_requests",
                               self._active_requests)

    def _leave_request(self) -> None:
        self._active_requests -= 1
        self.metrics.set_gauge("serve_inflight_requests",
                               self._active_requests)
        if self._active_requests == 0:
            self._idle.set()

    # ------------------------------------------------------------------
    # Engine bridge
    # ------------------------------------------------------------------

    async def _dispatch(self, payloads: List[dict]) -> Dict[str, dict]:
        """One micro-batch → one engine dispatch, off the event loop.

        Every outcome — success or failure — is reported to the
        circuit breaker; a raise here resolves the batch's waiters to
        transient ``unknown`` outcomes (the batcher's contract) and,
        repeated, opens the breaker so later requests fail fast at
        admission instead.
        """
        self.metrics.inc("serve_batches_total")
        self.metrics.observe_batch(len(payloads))
        loop = asyncio.get_running_loop()
        stats = EngineStats()
        opens_before = self.breaker.opens
        try:
            spec = chaos.fire("serve.dispatch", jobs=len(payloads))
            if spec is not None and spec.kind == chaos.KIND_ERROR:
                raise RuntimeError("chaos: injected dispatch failure")
            outcomes = await loop.run_in_executor(None, partial(
                submit_jobs, payloads,
                cache=self.cache, stats=stats,
                max_retries=self.options.max_retries,
                scheduler=self.scheduler,
            ))
        except Exception:
            self.metrics.inc("serve_dispatch_failures_total")
            self.breaker.record_failure()
            self.metrics.inc("serve_breaker_open_total",
                             self.breaker.opens - opens_before)
            self.metrics.set_gauge("serve_breaker_state",
                                   self.breaker.gauge)
            raise
        self.breaker.record_success()
        self.metrics.set_gauge("serve_breaker_state", self.breaker.gauge)
        self.stats.merge(stats)
        self.metrics.inc("serve_jobs_executed_total", stats.jobs_executed)
        return outcomes

    def _plan(self, rules: str, config: Config):
        """Parse + decompose (runs in a worker thread)."""
        transformations = parse_transformations(rules)
        return [plan_transformation(t, config, self.fingerprint)
                for t in transformations]

    def _config_for(self, knobs: dict) -> Config:
        if not knobs:
            return self.config
        merged = self.config.to_dict()
        unknown = set(knobs) - set(merged)
        if unknown:
            raise ValueError("unknown knobs: %s" % ", ".join(sorted(unknown)))
        merged.update(knobs)
        return Config.from_dict(merged)

    def _retry_after(self) -> float:
        """Backpressure hint: roughly one queue-clearing time."""
        backlog_batches = (self.batcher.pending
                          // max(1, self.options.max_batch) + 1)
        per_batch = max(self.stats.p50, 0.05)
        return min(5.0, backlog_batches * per_batch)

    # ------------------------------------------------------------------
    # Request handling (shared by NDJSON and HTTP POST)
    # ------------------------------------------------------------------

    async def handle_request(self, obj: dict,
                             bucket: Optional[TokenBucket] = None) -> dict:
        req_id = obj.get("id")
        if self.draining:
            return error_response(req_id, ERR_OVERLOADED,
                                  detail="server is draining",
                                  retry_after=1.0)
        if not self.breaker.allow():
            self.metrics.inc("serve_breaker_rejections_total")
            return error_response(
                req_id, ERR_OVERLOADED,
                detail="engine dispatch circuit breaker open",
                retry_after=max(0.05, self.breaker.retry_after()))
        if bucket is not None:
            wait = bucket.try_acquire()
            if wait > 0:
                self.metrics.inc("serve_rate_limited_total")
                return error_response(req_id, ERR_RATE_LIMITED,
                                      detail="per-connection rate limit",
                                      retry_after=wait)
        if "cache_put" in obj:
            return self._handle_cache_put(obj, req_id)
        if "jobs" in obj:
            return await self._handle_jobs(obj, req_id)
        rules = obj.get("rules")
        if not isinstance(rules, str) or not rules.strip():
            self.metrics.inc("serve_bad_requests_total")
            return error_response(req_id, ERR_BAD_REQUEST,
                                  detail="missing 'rules' text")
        knobs = obj.get("knobs") or {}
        if not isinstance(knobs, dict):
            self.metrics.inc("serve_bad_requests_total")
            return error_response(req_id, ERR_BAD_REQUEST,
                                  detail="'knobs' must be an object")
        try:
            config = self._config_for(knobs)
        except (ValueError, TypeError) as e:
            self.metrics.inc("serve_bad_requests_total")
            return error_response(req_id, ERR_BAD_REQUEST, detail=str(e))

        loop = asyncio.get_running_loop()
        start = loop.time()
        self._enter_request()
        try:
            try:
                plans = await loop.run_in_executor(
                    None, self._plan, rules, config)
            except AliveError as e:
                self.metrics.inc("serve_bad_requests_total")
                return error_response(req_id, ERR_BAD_REQUEST,
                                      detail=str(e))

            unique: Dict[str, dict] = {}
            for plan in plans:
                for job in plan.jobs:
                    unique.setdefault(job.key, job.payload())

            # admission control: count only the jobs that would *add*
            # buffered work — cache hits and coalescible keys are free
            new_jobs = [
                key for key in unique
                if not self.batcher.is_inflight(key)
                and (self.cache is None or self.cache.get(key) is None)
            ]
            if self.batcher.pending + len(new_jobs) > \
                    self.options.queue_depth:
                self.metrics.inc("serve_overloaded_total")
                return error_response(req_id, ERR_OVERLOADED,
                                      detail="queue depth exceeded",
                                      retry_after=self._retry_after())

            outcomes: Dict[str, dict] = {}
            waiters: List[Tuple[str, asyncio.Future]] = []
            req_stats = {"jobs": len(unique), "cache_hits": 0,
                         "coalesced": 0}
            for key, payload in unique.items():
                entry = self.cache.get(key) if self.cache is not None \
                    else None
                if entry is not None:
                    self.metrics.inc("serve_cache_hits_total")
                    self.stats.cache_hits += 1
                    req_stats["cache_hits"] += 1
                    outcomes[key] = entry["outcome"]
                    continue
                future, fresh = self.batcher.submit(payload)
                if not fresh:
                    self.metrics.inc("serve_dedup_total")
                    req_stats["coalesced"] += 1
                waiters.append((key, future))
            self.metrics.inc("serve_jobs_total", len(unique))
            self._update_queue_gauges()

            if waiters:
                resolved = await asyncio.gather(
                    *(future for _, future in waiters))
                outcomes.update(
                    (key, outcome)
                    for (key, _), outcome in zip(waiters, resolved))
                self._update_queue_gauges()

            results = [result_to_wire(aggregate_plan(plan, outcomes))
                       for plan in plans]
            self.metrics.inc("serve_requests_total")
            self.metrics.inc("serve_rules_total", len(plans))
            self.metrics.observe_latency(loop.time() - start)
            return ok_response(req_id, results, req_stats)
        finally:
            self._leave_request()

    # ------------------------------------------------------------------
    # Cluster operations (coordinator → node)
    # ------------------------------------------------------------------

    async def _handle_jobs(self, obj: dict, req_id) -> dict:
        """Resolve pre-planned job payloads (a coordinator's chunk).

        The sharded counterpart of the ``rules`` path: the coordinator
        already planned the corpus, so this node receives raw payloads
        and returns a ``key → outcome`` map.  Cache fast path,
        in-flight dedup and the micro-batcher are all shared with
        interactive requests — a forwarded chunk and a curl of the same
        rule coalesce onto one dispatch.
        """
        payloads = obj.get("jobs")
        if not isinstance(payloads, list) or not payloads or not all(
                isinstance(p, dict) and isinstance(p.get("key"), str)
                and isinstance(p.get("text"), str)
                and isinstance(p.get("knobs"), dict)
                for p in payloads):
            self.metrics.inc("serve_bad_requests_total")
            return error_response(req_id, ERR_BAD_REQUEST,
                                  detail="'jobs' must be a non-empty list "
                                         "of job payloads")
        shard = obj.get("shard") or self.node_id or "unknown"
        self.metrics.inc_labeled("cluster_forwarded_total",
                                 {"shard": shard})
        if obj.get("hedged"):
            self.metrics.inc_labeled("cluster_hedged_total",
                                     {"shard": shard})

        unique: Dict[str, dict] = {}
        for payload in payloads:
            unique.setdefault(payload["key"], payload)
        new_jobs = [
            key for key in unique
            if not self.batcher.is_inflight(key)
            and (self.cache is None or self.cache.get(key) is None)
        ]
        if self.batcher.pending + len(new_jobs) > self.options.queue_depth:
            self.metrics.inc("serve_overloaded_total")
            return error_response(req_id, ERR_OVERLOADED,
                                  detail="queue depth exceeded",
                                  retry_after=self._retry_after())

        loop = asyncio.get_running_loop()
        start = loop.time()
        self._enter_request()
        try:
            outcomes: Dict[str, dict] = {}
            waiters: List[Tuple[str, asyncio.Future]] = []
            req_stats = {"jobs": len(unique), "cache_hits": 0,
                         "coalesced": 0}
            for key, payload in unique.items():
                entry = self.cache.get(key) if self.cache is not None \
                    else None
                if entry is not None:
                    self.metrics.inc("serve_cache_hits_total")
                    self.stats.cache_hits += 1
                    req_stats["cache_hits"] += 1
                    outcomes[key] = entry["outcome"]
                    continue
                future, fresh = self.batcher.submit(payload)
                if not fresh:
                    self.metrics.inc("serve_dedup_total")
                    req_stats["coalesced"] += 1
                waiters.append((key, future))
            self.metrics.inc("serve_jobs_total", len(unique))
            self._update_queue_gauges()
            if waiters:
                resolved = await asyncio.gather(
                    *(future for _, future in waiters))
                outcomes.update(
                    (key, outcome)
                    for (key, _), outcome in zip(waiters, resolved))
                self._update_queue_gauges()
            self.metrics.inc("serve_requests_total")
            self.metrics.observe_latency(loop.time() - start)
            return {"id": req_id, "ok": True, "outcomes": outcomes,
                    "stats": req_stats}
        finally:
            self._leave_request()

    def _handle_cache_put(self, obj: dict, req_id) -> dict:
        """Install replicated verdict entries (write-through tier).

        Every entry is re-validated (CRC, fingerprint, shape) by
        :meth:`~repro.engine.cache.ResultCache.install` — a corrupted
        replica is rejected and counted, never adopted.
        """
        entries = obj.get("cache_put")
        if not isinstance(entries, list):
            self.metrics.inc("serve_bad_requests_total")
            return error_response(req_id, ERR_BAD_REQUEST,
                                  detail="'cache_put' must be a list")
        installed = 0
        rejected = 0
        for entry in entries:
            if self.cache is not None and self.cache.install(entry):
                installed += 1
            else:
                rejected += 1
        self.metrics.inc("cluster_replicated_total", installed)
        self.metrics.inc("cluster_replica_rejected_total", rejected)
        return {"id": req_id, "ok": True, "installed": installed,
                "rejected": rejected}

    def _update_queue_gauges(self) -> None:
        self.metrics.set_gauge("serve_queue_depth",
                               self.batcher.queue_depth)
        self.metrics.set_gauge("serve_inflight_jobs", self.batcher.pending)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _read_line(self, reader: asyncio.StreamReader) -> bytes:
        """One frame line, bounded in both time and size.

        Raises ``asyncio.TimeoutError`` when the client stalls past the
        read deadline (slowloris) and ``ValueError`` when the line
        exceeds the stream limit (oversize frame) — the connection
        handler converts both into counted, structured rejections.
        """
        timeout = self.options.read_timeout or None
        return await asyncio.wait_for(reader.readline(), timeout)

    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.metrics.inc("serve_connections_total")
        self._writers.add(writer)
        bucket = TokenBucket(self.options.rate, self.options.burst) \
            if self.options.rate and self.options.rate > 0 else None
        try:
            line = await self._read_line(reader)
            if not line:
                return
            if line.startswith(_HTTP_METHODS):
                await self._handle_http(line, reader, writer)
                return
            while line:
                await self._handle_line(line, writer, bucket)
                line = await self._read_line(reader)
        except asyncio.TimeoutError:
            # slowloris defense: a stalled client is reaped, never
            # allowed to pin a connection handler open indefinitely
            self.metrics.inc("serve_read_timeouts_total")
        except ValueError:
            # StreamReader signals a line beyond the frame bound with
            # ValueError; reject in-band, then close
            self.metrics.inc("serve_oversize_frames_total")
            self.metrics.inc("serve_bad_requests_total")
            try:
                writer.write(encode(error_response(
                    None, ERR_BAD_REQUEST,
                    detail="frame exceeds %d bytes"
                    % self.options.max_frame_bytes)))
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_line(self, line: bytes, writer: asyncio.StreamWriter,
                           bucket: Optional[TokenBucket]) -> None:
        if not line.strip():
            return
        spec = chaos.fire("serve.read_frame")
        if spec is not None and spec.kind == chaos.KIND_DELAY:
            await asyncio.sleep(float(spec.args.get("seconds", 0.05)))
        try:
            obj = decode(line)
        except ProtocolError as e:
            self.metrics.inc("serve_bad_requests_total")
            response = error_response(None, ERR_BAD_REQUEST, detail=str(e))
        else:
            response = await self.handle_request(obj, bucket)
        writer.write(encode(response))
        await writer.drain()

    # ------------------------------------------------------------------
    # HTTP shim
    # ------------------------------------------------------------------

    async def _handle_http(self, request_line: bytes,
                           reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        try:
            method, target, _version = \
                request_line.decode("latin1").split(None, 2)
        except ValueError:
            await self._http_reply(writer, 400, "text/plain",
                                   "bad request line\n")
            return
        headers = {}
        while True:
            if len(headers) >= _MAX_HTTP_HEADERS:
                await self._http_reply(writer, 400, "text/plain",
                                       "too many headers\n")
                return
            line = await self._read_line(reader)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            self.metrics.inc("serve_bad_requests_total")
            await self._http_reply(writer, 400, "text/plain",
                                   "bad Content-Length\n")
            return
        if length < 0 or length > self.options.max_frame_bytes:
            self.metrics.inc("serve_oversize_frames_total")
            self.metrics.inc("serve_bad_requests_total")
            await self._http_reply(writer, 413, "text/plain",
                                   "body exceeds %d bytes\n"
                                   % self.options.max_frame_bytes)
            return
        body = b""
        if length:
            timeout = self.options.read_timeout or None
            body = await asyncio.wait_for(reader.readexactly(length),
                                          timeout)

        if method == "GET" and target == "/healthz":
            pool_stats = self.scheduler.total_stats
            payload = {
                "status": "draining" if self.draining else "ok",
                "inflight_requests": self._active_requests,
                "queue_depth": self.batcher.queue_depth,
                "pending_jobs": self.batcher.pending,
                "breaker": self.breaker.state,
                "node_id": self.node_id,
                "generation": self.generation,
                "pool": {
                    "workers": self.options.jobs,
                    "dispatches": pool_stats.dispatches,
                    "crashes": pool_stats.crashes,
                    "timeouts": pool_stats.timeouts,
                },
            }
            await self._http_reply(writer, 200, "application/json",
                                   json.dumps(payload, sort_keys=True) + "\n")
        elif method == "GET" and target == "/metrics":
            self._update_queue_gauges()
            text = self.metrics.render(extra_gauges=self._engine_gauges())
            await self._http_reply(
                writer, 200, "text/plain; version=0.0.4", text)
        elif method == "POST" and target == "/v1/verify":
            try:
                obj = decode(body)
            except ProtocolError as e:
                self.metrics.inc("serve_bad_requests_total")
                response = error_response(None, ERR_BAD_REQUEST,
                                          detail=str(e))
            else:
                response = await self.handle_request(obj)
            status = 200
            extra = []
            if response.get("error") == ERR_OVERLOADED:
                status = 503
                extra = [("Retry-After",
                          "%g" % response.get("retry_after", 1.0))]
            elif response.get("error") == ERR_RATE_LIMITED:
                status = 429
                extra = [("Retry-After",
                          "%g" % response.get("retry_after", 1.0))]
            elif response.get("error") == ERR_BAD_REQUEST:
                status = 400
            await self._http_reply(
                writer, status, "application/json",
                json.dumps(response, sort_keys=True) + "\n", extra)
        else:
            await self._http_reply(writer, 404, "text/plain",
                                   "not found\n")

    def _engine_gauges(self) -> Dict[str, float]:
        """Engine + scheduler snapshots re-exported for /metrics."""
        gauges = {}
        for name, value in self.stats.to_dict().items():
            if isinstance(value, (int, float)):
                gauges["engine_%s" % name] = value
        for name, value in self.scheduler.total_stats.to_dict().items():
            gauges["engine_scheduler_%s" % name] = value
        if self.cache is not None:
            gauges["engine_cache_entries"] = len(self.cache)
        return gauges

    async def _http_reply(self, writer: asyncio.StreamWriter, status: int,
                          content_type: str, body: str,
                          extra_headers=()) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   413: "Payload Too Large", 429: "Too Many Requests",
                   503: "Service Unavailable"}
        payload = body.encode("utf-8")
        head = ["HTTP/1.1 %d %s" % (status, reasons.get(status, "Error")),
                "Content-Type: %s" % content_type,
                "Content-Length: %d" % len(payload),
                "Connection: close"]
        head.extend("%s: %s" % pair for pair in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin1")
                     + payload)
        await writer.drain()


async def serve_until_signalled(server: VerifyServer,
                                announce=None) -> None:
    """CLI entry: start, announce the bound address, run until drained."""
    await server.start()
    server.install_signal_handlers()
    if announce is not None:
        announce(server)
    await server.run()
