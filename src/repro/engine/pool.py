"""A crash-safe worker pool for the batch-verification scheduler.

``multiprocessing.Pool`` cannot express the failure model the ISSUE
demands: when a pool worker dies (segfault, ``os._exit``, the OOM
killer), the ``AsyncResult`` for the job it was running never
resolves, and there is no way to learn *which* job took the worker
down.  This module manages workers directly — one ``Process`` and one
duplex ``Pipe`` per worker — so the parent can:

* **attribute failure** — a dead pipe/sentinel while a job is assigned
  pins the crash to that exact job (classified *crash*, distinct from
  *timeout* and from a worker-raised *error*);
* **recycle the pool** — a dead or hung worker is killed, joined and
  respawned without disturbing its siblings;
* **bound retries** — a crashed job is re-dispatched up to the retry
  budget, then degraded to an ``unknown`` outcome instead of aborting
  the batch;
* **enforce hard deadlines** — a worker stuck past the job's hard
  timeout (a hang outside the solver's cooperative deadline checks) is
  SIGKILLed and the job is reported ``timed_out``;
* **checkpoint incrementally** — every resolved outcome is handed to
  ``on_outcome`` the moment it exists, so the cache reflects partial
  progress and a killed batch resumes where it died.

Fault injection rides the same path: the parent consults the chaos
plan (site ``engine.worker.run``) before each dispatch and attaches a
fault marker to the payload; the worker wrapper acts it out.  Keeping
the decision in the parent makes firings deterministic regardless of
worker interleaving, fork vs. spawn, or pool size.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import deque
from multiprocessing import connection
from typing import Callable, Dict, List, Optional, Sequence

from .. import chaos

#: worker-process site consulted before every dispatch attempt
WORKER_SITE = "engine.worker.run"


def _worker_main(conn, worker) -> None:
    """Worker-process loop: recv payload, run, send outcome; forever.

    A worker function may return a *generator* (fused dispatch): each
    yielded outcome is streamed back as a ``("sub", outcome)`` message
    the moment it exists, followed by ``("done", None)`` — so the
    parent always knows exactly which sub-jobs finished, even if the
    process dies mid-batch.
    """
    while True:
        try:
            payload = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        fault = payload.pop("_chaos", None)
        try:
            if fault is not None:
                chaos.execute_worker_fault(fault, inline=False)
            result = worker(payload)
            if hasattr(result, "__next__"):
                for item in result:
                    conn.send(("sub", item))
                reply = ("done", None)
            else:
                reply = ("ok", result)
        except KeyboardInterrupt:  # pragma: no cover - parent shutdown
            return
        except BaseException as e:
            message = "%s: %s" % (type(e).__name__, e)
            try:
                conn.send(("error", message))
            except (OSError, BrokenPipeError):  # pragma: no cover
                return
        else:
            try:
                conn.send(reply)
            except (OSError, BrokenPipeError):  # pragma: no cover
                return


class _Worker:
    """One managed worker process and its parent-side pipe end."""

    __slots__ = ("process", "conn", "job", "completed")

    def __init__(self, ctx, worker_fn):
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main,
                                   args=(child_conn, worker_fn),
                                   daemon=True)
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        #: (payload, attempts, deadline | None, done-keys | None)
        #: while busy, else None; ``done`` is a set for fused batches
        self.job = None
        #: sub-jobs finished over this process's lifetime (recycle-after-N)
        self.completed = 0

    def kill(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass
        if self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5)


def _pool_context():
    """fork shares the imported interpreter state and is the fast path
    on Linux; spawn is the portable fallback."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def run_pool(
    worker: Callable[[dict], dict],
    payloads: Sequence[dict],
    processes: int,
    stats,
    record: Callable[[dict], None],
    error_outcome: Callable[..., dict],
    max_retries: int,
    hard_timeout: Callable[[dict], Optional[float]],
    on_outcome: Optional[Callable[[str, dict], None]] = None,
    recycle_after: int = 512,
) -> Dict[str, dict]:
    """Run *payloads* across a self-healing pool; key → outcome map.

    *stats* is an :class:`~repro.engine.stats.EngineStats`; *record*
    books a successful outcome into it; *error_outcome* builds the
    ``unknown`` outcome for an abandoned job (the scheduler owns both
    so inline and pooled execution stay byte-identical).

    Payloads may be *fused batches* (``{"fused": True, "jobs": [...]}``)
    whose sub-job outcomes the worker streams back one message each.
    For a fused batch the parent fires the chaos site once per sub-job
    at dispatch (invocation counts match unfused dispatch exactly), the
    hard deadline restarts on every finished sub-job, and on a crash,
    error or hard timeout only the *unfinished* sub-jobs are acted on:
    the one that was running is retried/abandoned/timed out like a
    plain job, the untouched tail is requeued at unchanged attempt
    counts.  A finished-and-reported sub-job is never requeued, so no
    verdict is lost or double-reported.

    *recycle_after* bounds resident-state growth in warm workers: a
    worker that has completed that many sub-jobs is replaced with a
    fresh process at its next idle moment.
    """
    ctx = _pool_context()
    queue = deque((payload, 0) for payload in payloads)
    outcomes: Dict[str, dict] = {}
    workers: List[_Worker] = [
        _Worker(ctx, worker)
        for _ in range(min(processes, max(1, len(queue))))
    ]

    def resolve(key: str, outcome: dict) -> None:
        if key in outcomes:  # pragma: no cover - double-report guard
            return
        outcomes[key] = outcome
        if on_outcome is not None:
            on_outcome(key, outcome)

    def give_up_or_requeue(payload: dict, attempts: int,
                           why: str) -> None:
        if attempts < max_retries:
            stats.retries += 1
            queue.append((payload, attempts + 1))
        else:
            stats.errors += 1
            resolve(payload["key"], error_outcome(payload["key"], why))

    def undone_jobs(payload: dict, done) -> List[dict]:
        """Sub-jobs of a fused batch that never reported an outcome."""
        return [sub for sub in payload["jobs"]
                if sub["key"] not in done and sub["key"] not in outcomes]

    def abandon(payload: dict, attempts: int, done, why: str) -> None:
        """Crash/error fallout: retry the sub-job that was running,
        requeue the untouched tail, leave finished ones alone."""
        if not payload.get("fused"):
            give_up_or_requeue(payload, attempts, why)
            return
        undone = undone_jobs(payload, done)
        if not undone:
            return  # every sub-job already reported
        give_up_or_requeue(undone[0], attempts, why)
        for sub in undone[1:]:
            queue.append((sub, attempts))

    def handle_crash(w: _Worker) -> None:
        payload, attempts, _deadline, done = w.job
        w.job = None
        stats.crashes += 1
        w.kill()  # joins, so the exit code is observable afterwards
        exit_code = w.process.exitcode
        workers.remove(w)
        abandon(payload, attempts, done,
                "worker crashed (exit code %s)" % exit_code)

    def recycle(w: _Worker) -> None:
        w.kill()
        workers.remove(w)

    try:
        while queue or any(w.job is not None for w in workers):
            # keep the pool at strength while there is queued work
            while queue and len(workers) < processes:
                workers.append(_Worker(ctx, worker))
            # hand queued payloads to idle workers
            for w in list(workers):
                if w.job is not None or not queue:
                    continue
                if w.completed >= recycle_after:
                    # resident-state hygiene: retire the warm process
                    recycle(w)
                    w = _Worker(ctx, worker)
                    workers.append(w)
                payload, attempts = queue.popleft()
                fused = payload.get("fused")
                sent = dict(payload)
                if fused:
                    chaos_map = {}
                    for sub in payload["jobs"]:
                        spec = chaos.fire(WORKER_SITE, key=sub["key"],
                                          attempt=attempts)
                        if spec is not None:
                            chaos_map[sub["key"]] = chaos.payload_fault(spec)
                    if chaos_map:
                        sent["_chaos_map"] = chaos_map
                else:
                    spec = chaos.fire(WORKER_SITE, key=payload["key"],
                                      attempt=attempts)
                    if spec is not None:
                        sent["_chaos"] = chaos.payload_fault(spec)
                hard = hard_timeout(payload)
                deadline = None if hard is None \
                    else time.monotonic() + hard
                done = set() if fused else None
                try:
                    w.conn.send(sent)
                except (OSError, BrokenPipeError):
                    # died before it could even accept the job
                    w.job = (payload, attempts, deadline, done)
                    handle_crash(w)
                    continue
                w.job = (payload, attempts, deadline, done)

            busy = [w for w in workers if w.job is not None]
            if not busy:
                if queue:
                    continue  # crash handling freed capacity; redispatch
                break
            now = time.monotonic()
            deadlines = [w.job[2] for w in busy if w.job[2] is not None]
            timeout = None if not deadlines \
                else max(0.0, min(deadlines) - now)
            handles = [w.conn for w in busy]
            handles.extend(w.process.sentinel for w in busy)
            ready = connection.wait(handles, timeout)
            now = time.monotonic()

            for w in list(busy):
                payload, attempts, deadline, done = w.job
                key = payload["key"]
                if w.conn in ready:
                    try:
                        kind, value = w.conn.recv()
                    except (EOFError, OSError):
                        handle_crash(w)
                        continue
                    if kind == "sub":
                        # one fused sub-job finished; batch continues.
                        # the hard deadline is per sub-job: restart it.
                        w.completed += 1
                        record(value)
                        resolve(value["key"], value)
                        done.add(value["key"])
                        hard = hard_timeout(payload)
                        w.job = (payload, attempts,
                                 None if hard is None else now + hard,
                                 done)
                        continue
                    w.job = None
                    if kind == "ok":
                        w.completed += 1
                        record(value)
                        resolve(key, value)
                    elif kind == "done":
                        pass  # fused batch complete; subs already booked
                    else:
                        abandon(payload, attempts, done,
                                "job failed: %s" % value)
                        if "StaleResidentState" in str(value):
                            # the worker's resident solver state was
                            # poisoned; its own guard already dropped
                            # it, but recycle the process anyway
                            recycle(w)
                elif w.process.sentinel in ready \
                        or not w.process.is_alive():
                    handle_crash(w)
                elif deadline is not None and now >= deadline:
                    # hung outside the solver's cooperative deadline
                    # checks: kill the worker, don't resubmit the job
                    # that was running — but a fused batch's untouched
                    # tail is requeued (those sub-jobs never started)
                    stats.timeouts += 1
                    stats.errors += 1
                    w.job = None
                    w.kill()
                    workers.remove(w)
                    why = "hard timeout after %.0fs" \
                        % (hard_timeout(payload) or 0.0)
                    if payload.get("fused"):
                        undone = undone_jobs(payload, done)
                        if undone:
                            resolve(undone[0]["key"], error_outcome(
                                undone[0]["key"], why, timed_out=True))
                            for sub in undone[1:]:
                                queue.append((sub, attempts))
                    else:
                        resolve(key, error_outcome(key, why,
                                                   timed_out=True))
    finally:
        for w in workers:
            w.kill()
    return outcomes
