"""Sorts for the built-in SMT term language.

The Alive verification conditions only need the Boolean sort and
fixed-width bitvector sorts, mirroring the QF_BV / BV fragment of
SMT-LIB that the original Alive implementation sends to Z3.
"""

from __future__ import annotations


class Sort:
    """Base class for term sorts.

    Sorts are interned: ``BoolSort()`` always returns the same object and
    ``BitVecSort(w)`` returns one object per width, so identity comparison
    is safe and cheap.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return str(self)


class BoolSort(Sort):
    """The Boolean sort."""

    __slots__ = ()
    _instance: "BoolSort" = None

    def __new__(cls) -> "BoolSort":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __str__(self) -> str:
        return "Bool"


class BitVecSort(Sort):
    """A fixed-width bitvector sort ``(_ BitVec width)``."""

    __slots__ = ("width",)
    _cache: dict = {}

    def __new__(cls, width: int) -> "BitVecSort":
        inst = cls._cache.get(width)
        if inst is None:
            if width <= 0:
                raise ValueError("bitvector width must be positive, got %r" % (width,))
            inst = super().__new__(cls)
            inst.width = width
            cls._cache[width] = inst
        return inst

    def __str__(self) -> str:
        return "(_ BitVec %d)" % self.width


BOOL = BoolSort()


def is_bv(sort: Sort) -> bool:
    """Return True if *sort* is a bitvector sort."""
    return isinstance(sort, BitVecSort)


def is_bool(sort: Sort) -> bool:
    """Return True if *sort* is the Boolean sort."""
    return isinstance(sort, BoolSort)
