"""Tests for the concrete IR (module.py) and its interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import intops
from repro.ir.interp import POISON, refines, run_function
from repro.ir.module import MArg, MConst, MFunction, MInstr, Module


def make_fn(width=8, nargs=2):
    return MFunction("f", [MArg("%%a%d" % i, width) for i in range(nargs)])


class TestModuleConstruction:
    def test_const_truncates(self):
        assert MConst(256 + 5, 8).value == 5

    def test_width_mismatch_rejected(self):
        fn = make_fn()
        with pytest.raises(ValueError):
            fn.add("add", [fn.args[0], MConst(1, 4)], 8)

    def test_icmp_must_be_i1(self):
        fn = make_fn()
        with pytest.raises(ValueError):
            fn.add("icmp", [fn.args[0], fn.args[1]], 8, cond="eq")

    def test_select_condition_width(self):
        fn = make_fn()
        with pytest.raises(ValueError):
            fn.add("select", [fn.args[0], fn.args[0], fn.args[1]], 8)

    def test_conversions_must_change_width(self):
        fn = make_fn()
        with pytest.raises(ValueError):
            fn.add("zext", [fn.args[0]], 8)
        with pytest.raises(ValueError):
            fn.add("trunc", [fn.args[0]], 8)

    def test_bad_flag(self):
        fn = make_fn()
        with pytest.raises(ValueError):
            fn.add("xor", [fn.args[0], fn.args[1]], 8, flags=["nsw"])

    def test_insert_before(self):
        fn = make_fn()
        last = fn.add("add", [fn.args[0], fn.args[1]], 8)
        first = fn.add("sub", [fn.args[0], fn.args[1]], 8, before=last)
        assert fn.instrs == [first, last]

    def test_replace_all_uses(self):
        fn = make_fn()
        a = fn.add("add", [fn.args[0], fn.args[1]], 8)
        b = fn.add("mul", [a, a], 8)
        fn.ret = a
        n = fn.replace_all_uses(a, fn.args[0])
        assert n == 3
        assert b.operands == [fn.args[0], fn.args[0]]
        assert fn.ret is fn.args[0]

    def test_use_counts(self):
        fn = make_fn()
        a = fn.add("add", [fn.args[0], fn.args[0]], 8)
        fn.ret = a
        counts = fn.use_counts()
        assert counts[id(fn.args[0])] == 2
        assert counts[id(a)] == 1

    def test_verify_catches_use_before_def(self):
        fn = make_fn()
        a = fn.add("add", [fn.args[0], fn.args[1]], 8)
        b = fn.add("mul", [a, a], 8)
        fn.instrs.reverse()
        fn.ret = b
        with pytest.raises(ValueError):
            fn.verify()

    def test_module_counts(self):
        m = Module()
        fn = make_fn()
        fn.add("add", [fn.args[0], fn.args[1]], 8)
        m.add_function(fn)
        assert m.instruction_count() == 1


class TestInterpreter:
    def test_basic_arith(self):
        fn = make_fn()
        s = fn.add("add", [fn.args[0], fn.args[1]], 8)
        fn.ret = s
        assert run_function(fn, {"%a0": 200, "%a1": 100}) == 44

    def test_ub_propagates(self):
        fn = make_fn()
        fn.ret = fn.add("udiv", [fn.args[0], fn.args[1]], 8)
        with pytest.raises(intops.UndefinedBehavior):
            run_function(fn, {"%a0": 1, "%a1": 0})

    def test_poison_from_nsw(self):
        fn = make_fn()
        fn.ret = fn.add("add", [fn.args[0], fn.args[1]], 8, flags=["nsw"])
        assert run_function(fn, {"%a0": 127, "%a1": 1}) is POISON
        assert run_function(fn, {"%a0": 1, "%a1": 1}) == 2

    def test_poison_taints_dependents(self):
        fn = make_fn()
        p = fn.add("add", [fn.args[0], fn.args[1]], 8, flags=["nuw"])
        fn.ret = fn.add("and", [p, MConst(0, 8)], 8)  # even and 0 stays poison
        assert run_function(fn, {"%a0": 255, "%a1": 1}) is POISON

    def test_select_is_lazy_in_poison(self):
        fn = MFunction("f", [MArg("%c", 1), MArg("%x", 8), MArg("%y", 8)])
        c, x, y = fn.args
        poison = fn.add("add", [x, MConst(1, 8)], 8, flags=["nuw"])
        sel = fn.add("select", [c, y, poison], 8)
        fn.ret = sel
        # x = 255 makes `poison` poison; choosing the other arm is fine
        assert run_function(fn, {"%c": 1, "%x": 255, "%y": 7}) == 7
        assert run_function(fn, {"%c": 0, "%x": 255, "%y": 7}) is POISON

    def test_icmp_and_conversions(self):
        fn = MFunction("f", [MArg("%x", 4)])
        x = fn.args[0]
        wide = fn.add("sext", [x], 8)
        cmp = fn.add("icmp", [wide, MConst(0xF8, 8)], 1, cond="eq")
        fn.ret = cmp
        assert run_function(fn, {"%x": 0x8}) == 1  # sext(-8@i4) = -8@i8
        assert run_function(fn, {"%x": 0x7}) == 0

    def test_missing_argument(self):
        fn = make_fn()
        fn.ret = fn.args[0]
        with pytest.raises(KeyError):
            run_function(fn, {})

    def test_refines(self):
        assert refines(POISON, 3)
        assert refines(7, 7)
        assert not refines(7, 8)


@settings(max_examples=200, deadline=None)
@given(
    op=st.sampled_from(["add", "sub", "mul", "and", "or", "xor",
                        "udiv", "sdiv", "urem", "srem",
                        "shl", "lshr", "ashr"]),
    a=st.integers(0, 15),
    b=st.integers(0, 15),
)
def test_intops_agree_with_smt_terms(op, a, b):
    """The interpreter's semantics and the verifier's SMT semantics must
    coincide wherever the operation is defined (Table 1)."""
    from repro.smt import terms as T
    from repro.smt.eval import evaluate

    term_op = getattr(T, "bv" + op if not op.startswith("bv") else op)
    term = term_op(T.bv_const(a, 4), T.bv_const(b, 4))
    try:
        got = intops.binop(op, a, b, 4)
    except intops.UndefinedBehavior:
        # Table 1 definedness must say the same thing
        from repro.core.semantics import definedness_condition

        cond = definedness_condition(op, T.bv_const(a, 4), T.bv_const(b, 4))
        assert cond is T.FALSE
        return
    assert got == evaluate(term, {})
