"""Abstract domains for the solver-verified analysis tier.

Three forward domains over fixed-width bitvectors, combined as a
reduced product in :class:`AbsValue`:

* :class:`KnownBits` — the LLVM ``computeKnownBits`` lattice: a pair of
  masks ``(known_zero, known_one)`` with ``known_zero & known_one = 0``.
  γ(kz, ko) = { x | x & kz = 0 and x & ko = ko }.
* :class:`URange` — a non-wrapping unsigned interval ``[lo, hi]``.
* :class:`SRange` — a non-wrapping signed interval ``[lo, hi]`` (stored
  as Python ints in two's-complement value space).

And one backward domain:

* demanded bits — a plain mask; see
  :func:`repro.absint.transfer.demanded_operands`.

Every element concretizes to a *set of defined, poison-free values*:
poison and undef are handled at the :mod:`repro.absint.prove` layer
(an undef occurrence is ⊤; an operation that may be poison is still
described by the abstraction of its ι value — matching the encoder,
whose ι is total and whose δ/ρ are separate conditions).

The product is *reduced* lazily by :meth:`AbsValue.reduce`: the
unsigned range is tightened from the known bits and vice versa, and
the signed range is synchronized with the unsigned one when the sign
bit is determined.  Reduction steps must be sound individually — each
one is exercised by the exhaustive width ≤ 4 self-check
(:mod:`repro.absint.selfcheck`) and the ≥ 10k-program interpreter
cross-check in the test suite.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple


def mask(width: int) -> int:
    return (1 << width) - 1


def to_signed(value: int, width: int) -> int:
    value &= mask(width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    return value & mask(width)


class KnownBits:
    """``(known_zero, known_one)`` masks; invariant ``kz & ko == 0``."""

    __slots__ = ("width", "kz", "ko")

    def __init__(self, width: int, kz: int, ko: int):
        if kz & ko:
            raise ValueError("contradictory known bits (kz & ko != 0)")
        self.width = width
        self.kz = kz & mask(width)
        self.ko = ko & mask(width)

    @classmethod
    def top(cls, width: int) -> "KnownBits":
        return cls(width, 0, 0)

    @classmethod
    def const(cls, value: int, width: int) -> "KnownBits":
        value &= mask(width)
        return cls(width, ~value & mask(width), value)

    def is_singleton(self) -> bool:
        return (self.kz | self.ko) == mask(self.width)

    def value(self) -> int:
        """The unique concrete value (only when :meth:`is_singleton`)."""
        return self.ko

    def contains(self, x: int) -> bool:
        x &= mask(self.width)
        return (x & self.kz) == 0 and (x & self.ko) == self.ko

    def join(self, other: "KnownBits") -> "KnownBits":
        """Least upper bound: keep only bits known on both sides."""
        return KnownBits(self.width, self.kz & other.kz, self.ko & other.ko)

    def meet(self, other: "KnownBits") -> Optional["KnownBits"]:
        """Greatest lower bound; None when the intersection is empty."""
        kz = self.kz | other.kz
        ko = self.ko | other.ko
        if kz & ko:
            return None
        return KnownBits(self.width, kz, ko)

    def umin(self) -> int:
        """Smallest unsigned member: unknown bits at 0."""
        return self.ko

    def umax(self) -> int:
        """Largest unsigned member: unknown bits at 1."""
        return self.ko | (mask(self.width) & ~self.kz)

    def trailing_known(self) -> int:
        """Number of contiguous known bits from bit 0 upward."""
        known = self.kz | self.ko
        n = 0
        while n < self.width and (known >> n) & 1:
            n += 1
        return n

    def trailing_zeros(self) -> int:
        """Number of contiguous known-*zero* bits from bit 0 upward."""
        n = 0
        while n < self.width and (self.kz >> n) & 1:
            n += 1
        return n

    def enumerate(self) -> Iterator[int]:
        """All concrete members (used by exhaustive self-checks only)."""
        unknown = mask(self.width) & ~(self.kz | self.ko)
        positions = [i for i in range(self.width) if (unknown >> i) & 1]
        for combo in range(1 << len(positions)):
            x = self.ko
            for j, pos in enumerate(positions):
                if (combo >> j) & 1:
                    x |= 1 << pos
            yield x

    def __eq__(self, other) -> bool:
        return (isinstance(other, KnownBits) and self.width == other.width
                and self.kz == other.kz and self.ko == other.ko)

    def __hash__(self) -> int:
        return hash(("kb", self.width, self.kz, self.ko))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = "".join(
            "0" if (self.kz >> i) & 1 else "1" if (self.ko >> i) & 1 else "?"
            for i in reversed(range(self.width))
        )
        return "KnownBits(%s)" % bits


class URange:
    """Unsigned interval ``[lo, hi]``, non-wrapping (``lo <= hi``)."""

    __slots__ = ("width", "lo", "hi")

    def __init__(self, width: int, lo: int, hi: int):
        if not (0 <= lo <= hi <= mask(width)):
            raise ValueError("bad unsigned range [%d, %d] @ %d" % (lo, hi, width))
        self.width = width
        self.lo = lo
        self.hi = hi

    @classmethod
    def top(cls, width: int) -> "URange":
        return cls(width, 0, mask(width))

    @classmethod
    def const(cls, value: int, width: int) -> "URange":
        value &= mask(width)
        return cls(width, value, value)

    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def contains(self, x: int) -> bool:
        x &= mask(self.width)
        return self.lo <= x <= self.hi

    def join(self, other: "URange") -> "URange":
        return URange(self.width, min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "URange") -> Optional["URange"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return URange(self.width, lo, hi)

    def __eq__(self, other) -> bool:
        return (isinstance(other, URange) and self.width == other.width
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self) -> int:
        return hash(("ur", self.width, self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "URange[%d, %d]" % (self.lo, self.hi)


class SRange:
    """Signed interval ``[lo, hi]``, non-wrapping in signed order."""

    __slots__ = ("width", "lo", "hi")

    def __init__(self, width: int, lo: int, hi: int):
        if not (-(1 << (width - 1)) <= lo <= hi <= (1 << (width - 1)) - 1):
            raise ValueError("bad signed range [%d, %d] @ %d" % (lo, hi, width))
        self.width = width
        self.lo = lo
        self.hi = hi

    @classmethod
    def top(cls, width: int) -> "SRange":
        return cls(width, -(1 << (width - 1)), (1 << (width - 1)) - 1)

    @classmethod
    def const(cls, value: int, width: int) -> "SRange":
        s = to_signed(value, width)
        return cls(width, s, s)

    def is_singleton(self) -> bool:
        return self.lo == self.hi

    def contains(self, x: int) -> bool:
        return self.lo <= to_signed(x, self.width) <= self.hi

    def join(self, other: "SRange") -> "SRange":
        return SRange(self.width, min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "SRange") -> Optional["SRange"]:
        lo = max(self.lo, other.lo)
        hi = min(self.hi, other.hi)
        if lo > hi:
            return None
        return SRange(self.width, lo, hi)

    def __eq__(self, other) -> bool:
        return (isinstance(other, SRange) and self.width == other.width
                and self.lo == other.lo and self.hi == other.hi)

    def __hash__(self) -> int:
        return hash(("sr", self.width, self.lo, self.hi))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SRange[%d, %d]" % (self.lo, self.hi)


class AbsValue:
    """Reduced product of the three forward domains.

    γ(A) = γ(A.bits) ∩ γ(A.ur) ∩ γ(A.sr).  Constructors call
    :meth:`reduce` so facts flow between the components; a contradictory
    product (empty concretization discovered by reduction) is
    represented by ``self.empty == True`` — the caller decides what an
    empty abstraction means (e.g. an unreachable precondition).
    """

    __slots__ = ("width", "bits", "ur", "sr", "empty")

    def __init__(self, bits: KnownBits, ur: URange, sr: SRange,
                 _reduce: bool = True):
        assert bits.width == ur.width == sr.width
        self.width = bits.width
        self.bits = bits
        self.ur = ur
        self.sr = sr
        self.empty = False
        if _reduce:
            self.reduce()

    @classmethod
    def top(cls, width: int) -> "AbsValue":
        return cls(KnownBits.top(width), URange.top(width),
                   SRange.top(width), _reduce=False)

    @classmethod
    def const(cls, value: int, width: int) -> "AbsValue":
        return cls(KnownBits.const(value, width), URange.const(value, width),
                   SRange.const(value, width), _reduce=False)

    @classmethod
    def from_bits(cls, bits: KnownBits) -> "AbsValue":
        return cls(bits, URange.top(bits.width), SRange.top(bits.width))

    @classmethod
    def from_urange(cls, ur: URange) -> "AbsValue":
        return cls(KnownBits.top(ur.width), ur, SRange.top(ur.width))

    @classmethod
    def from_srange(cls, sr: SRange) -> "AbsValue":
        return cls(KnownBits.top(sr.width), URange.top(sr.width), sr)

    @classmethod
    def bottom(cls, width: int) -> "AbsValue":
        v = cls.top(width)
        v.empty = True
        return v

    def is_top(self) -> bool:
        return (not self.empty
                and self.bits == KnownBits.top(self.width)
                and self.ur == URange.top(self.width)
                and self.sr == SRange.top(self.width))

    def is_singleton(self) -> bool:
        if self.empty:
            return False
        return self.bits.is_singleton() or self.ur.is_singleton() or (
            self.sr.is_singleton()
        )

    def value(self) -> int:
        if self.bits.is_singleton():
            return self.bits.value()
        if self.ur.is_singleton():
            return self.ur.lo
        return to_unsigned(self.sr.lo, self.width)

    def contains(self, x: int) -> bool:
        if self.empty:
            return False
        return (self.bits.contains(x) and self.ur.contains(x)
                and self.sr.contains(x))

    # ------------------------------------------------------------------

    def reduce(self) -> "AbsValue":
        """Exchange information between the component domains (sound
        tightening only; iterated to a local fixpoint, which converges
        because every step shrinks at least one component)."""
        if self.empty:
            return self
        w = self.width
        full = mask(w)
        for _ in range(2 * w + 4):
            changed = False
            # known bits -> unsigned range
            ur = self.ur.meet(URange(w, self.bits.umin(), self.bits.umax()))
            if ur is None:
                return self._make_empty()
            if ur != self.ur:
                self.ur = ur
                changed = True
            # unsigned range -> known bits: bits above the highest
            # differing bit of lo and hi are common to every member
            diff = self.ur.lo ^ self.ur.hi
            if diff == 0:
                common = full
            else:
                common = full & ~((1 << diff.bit_length()) - 1)
            kz = common & ~self.ur.lo & full
            ko = common & self.ur.lo
            merged = self.bits.meet(KnownBits(w, kz, ko))
            if merged is None:
                return self._make_empty()
            if merged != self.bits:
                self.bits = merged
                changed = True
            # signed <-> unsigned: when neither range crosses its wrap
            # point the two orders agree on the halves
            half = 1 << (w - 1)
            if self.ur.hi < half or self.ur.lo >= half:
                # all members share a sign: the unsigned interval maps
                # to a signed interval exactly
                sr = self.sr.meet(SRange(w, to_signed(self.ur.lo, w),
                                         to_signed(self.ur.hi, w)))
                if sr is None:
                    return self._make_empty()
                if sr != self.sr:
                    self.sr = sr
                    changed = True
            if self.sr.lo >= 0 or self.sr.hi < 0:
                ur = self.ur.meet(URange(w, to_unsigned(self.sr.lo, w),
                                         to_unsigned(self.sr.hi, w)))
                if ur is None:
                    return self._make_empty()
                if ur != self.ur:
                    self.ur = ur
                    changed = True
            # sign bit known -> signed range half
            if w > 0:
                sign_bit = 1 << (w - 1)
                if self.bits.kz & sign_bit:
                    sr = self.sr.meet(SRange(w, 0, (1 << (w - 1)) - 1))
                    if sr is None:
                        return self._make_empty()
                    if sr != self.sr:
                        self.sr = sr
                        changed = True
                elif self.bits.ko & sign_bit:
                    sr = self.sr.meet(SRange(w, -(1 << (w - 1)), -1))
                    if sr is None:
                        return self._make_empty()
                    if sr != self.sr:
                        self.sr = sr
                        changed = True
                # signed range determines the sign bit
                if self.sr.lo >= 0:
                    merged = self.bits.meet(KnownBits(w, sign_bit, 0))
                elif self.sr.hi < 0:
                    merged = self.bits.meet(KnownBits(w, 0, sign_bit))
                else:
                    merged = self.bits
                if merged is None:
                    return self._make_empty()
                if merged != self.bits:
                    self.bits = merged
                    changed = True
            if not changed:
                break
        return self

    def _make_empty(self) -> "AbsValue":
        self.empty = True
        return self

    # ------------------------------------------------------------------

    def join(self, other: "AbsValue") -> "AbsValue":
        if self.empty:
            return other
        if other.empty:
            return self
        return AbsValue(self.bits.join(other.bits), self.ur.join(other.ur),
                        self.sr.join(other.sr), _reduce=False)

    def meet(self, other: "AbsValue") -> "AbsValue":
        if self.empty or other.empty:
            return AbsValue.bottom(self.width)
        bits = self.bits.meet(other.bits)
        ur = self.ur.meet(other.ur)
        sr = self.sr.meet(other.sr)
        if bits is None or ur is None or sr is None:
            return AbsValue.bottom(self.width)
        return AbsValue(bits, ur, sr)

    def __eq__(self, other) -> bool:
        return (isinstance(other, AbsValue) and self.width == other.width
                and self.empty == other.empty and self.bits == other.bits
                and self.ur == other.ur and self.sr == other.sr)

    def __hash__(self) -> int:
        return hash(("av", self.width, self.empty, self.bits, self.ur, self.sr))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.empty:
            return "AbsValue(empty, w=%d)" % self.width
        return "AbsValue(%r, %r, %r)" % (self.bits, self.ur, self.sr)
