"""Blocking client for the verification service.

The client side of the NDJSON protocol: a persistent TCP connection,
one request per call, transparent reconnection, and well-behaved
backpressure handling — fast-reject responses (``overloaded``,
``rate_limited``) are retried with capped exponential backoff, a
random jitter factor (so a fleet of clients rejected together does not
retry together), and the server's ``retry_after`` hint as the floor.

Used by ``repro submit`` and by anything that wants to drive a warm
server from Python::

    with VerifyClient("127.0.0.1:7341") as client:
        response = client.submit("%r = add %x, 0\\n=>\\n%r = %x\\n")
        assert response["results"][0]["status"] == "valid"
"""

from __future__ import annotations

import json
import random
import socket
import time
from typing import List, Optional, Tuple

from .protocol import (ProtocolError, RETRYABLE_ERRORS, decode, encode,
                       exit_code_for_statuses)


class ClientError(Exception):
    """Connection-level or protocol-level failure after retries."""


class Overloaded(ClientError):
    """The server kept fast-rejecting beyond the retry budget."""

    def __init__(self, response: dict):
        super().__init__("server overloaded: %s"
                         % response.get("detail", response.get("error")))
        self.response = response


def parse_addr(addr: str) -> Tuple[str, int]:
    """Split ``host:port`` (the ``--addr`` flag)."""
    host, _, port = addr.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError("address must be host:port, got %r" % addr)
    return host, int(port)


class VerifyClient:
    """Blocking NDJSON client with retry/backoff.

    Args:
        addr: ``host:port`` of a running ``repro serve``.
        timeout: socket timeout in seconds for connect and reads.
        max_retries: attempts beyond the first for retryable failures
            (fast-rejects and dropped connections).
        backoff_base: first backoff delay; doubles per attempt.
        backoff_cap: upper bound on any single delay.
        retry_budget: total wall-clock seconds the retry loop may
            consume (sleeps included) before giving up, regardless of
            how many retries remain — so a caller's deadline cannot be
            blown by the retry schedule.  ``None`` disables the budget.
        rng: source of jitter (injectable for deterministic tests).
        sleep: injectable ``time.sleep`` (tests never really wait).
        clock: injectable monotonic clock (for the budget; tests pair
            it with *sleep* to run the schedule instantly).

    Every successful response dict is annotated with ``attempts`` (how
    many round trips this call made) and ``backoff_total`` (seconds
    the retry loop slept), so callers can see the retry cost they paid.
    """

    def __init__(self, addr: str = "127.0.0.1:7341", timeout: float = 120.0,
                 max_retries: int = 6, backoff_base: float = 0.05,
                 backoff_cap: float = 2.0,
                 retry_budget: Optional[float] = None,
                 rng: Optional[random.Random] = None, sleep=time.sleep,
                 clock=time.monotonic):
        self.host, self.port = parse_addr(addr)
        self.timeout = timeout
        self.max_retries = max(0, max_retries)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.retry_budget = retry_budget
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._clock = clock
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> "VerifyClient":
        self.close()
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "VerifyClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _roundtrip(self, obj: dict) -> dict:
        if self._file is None:
            self.connect()
        self._file.write(encode(obj))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode(line)

    def _backoff(self, attempt: int, hint: Optional[float]) -> float:
        """Jittered exponential backoff, floored by the server's hint."""
        delay = min(self.backoff_cap, self.backoff_base * (2 ** attempt))
        delay *= 0.5 + self._rng.random()  # jitter in [0.5, 1.5)
        if hint:
            delay = max(delay, float(hint))
        return delay

    def _request_object(self, payload: dict) -> dict:
        """The retry loop shared by every request kind.

        Retries retryable conditions (fast-rejects, dropped
        connections) up to ``max_retries`` times — but never past the
        wall-clock ``retry_budget``: a retry whose backoff would land
        beyond the budget is not attempted, the failure surfaces
        immediately.  Raises :class:`Overloaded` / :class:`ClientError`
        when the schedule is exhausted; non-retryable errors
        (``bad_request``) are returned as-is for the caller to inspect.
        """
        attempt = 0
        backoff_total = 0.0
        started = self._clock()

        def out_of_budget(delay: float) -> bool:
            if self.retry_budget is None:
                return False
            return self._clock() - started + delay > self.retry_budget

        while True:
            try:
                response = self._roundtrip(payload)
            except (ConnectionError, socket.timeout, OSError,
                    ProtocolError) as e:
                self.close()
                delay = self._backoff(attempt, None)
                if attempt >= self.max_retries or out_of_budget(delay):
                    raise ClientError("request failed after %d attempts: %s"
                                      % (attempt + 1, e))
                self._sleep(delay)
                backoff_total += delay
                attempt += 1
                continue
            error = response.get("error")
            if error in RETRYABLE_ERRORS:
                delay = self._backoff(attempt,
                                      response.get("retry_after"))
                if attempt >= self.max_retries or out_of_budget(delay):
                    raise Overloaded(response)
                self._sleep(delay)
                backoff_total += delay
                attempt += 1
                continue
            response["attempts"] = attempt + 1
            response["backoff_total"] = round(backoff_total, 6)
            return response

    def request(self, rules: str, knobs: Optional[dict] = None) -> dict:
        """Submit rule text; returns the server's response object."""
        self._next_id += 1
        payload = {"id": "c%d" % self._next_id, "rules": rules}
        if knobs:
            payload["knobs"] = knobs
        return self._request_object(payload)

    def request_jobs(self, payloads: List[dict],
                     shard: Optional[str] = None,
                     hedged: bool = False) -> dict:
        """Forward pre-planned job payloads (the cluster transport).

        Returns the node's ``{"outcomes": {key: outcome}}`` response.
        Used by :class:`repro.cluster.ClusterCoordinator`; *shard*
        labels the target in the node's metrics, *hedged* marks a
        speculative duplicate dispatch.
        """
        self._next_id += 1
        payload: dict = {"id": "c%d" % self._next_id, "jobs": payloads}
        if shard is not None:
            payload["shard"] = shard
        if hedged:
            payload["hedged"] = True
        return self._request_object(payload)

    def cache_put(self, entries: List[dict]) -> dict:
        """Replicate verdict cache entries to this node (write-through)."""
        self._next_id += 1
        return self._request_object({"id": "c%d" % self._next_id,
                                     "cache_put": entries})

    def submit(self, rules: str, knobs: Optional[dict] = None) -> dict:
        """Alias of :meth:`request` (the README's verb)."""
        return self.request(rules, knobs)

    def submit_batch(self, texts: List[str],
                     knobs: Optional[dict] = None) -> dict:
        """Submit many rule texts as one request (one shared batch)."""
        return self.request("\n\n".join(text.strip() for text in texts)
                            + "\n", knobs)

    @staticmethod
    def exit_code(response: dict) -> int:
        """The ``repro verify``-compatible exit code for a response."""
        if "exit_code" in response:
            return int(response["exit_code"])
        return exit_code_for_statuses(
            r["status"] for r in response.get("results", ()))

    # ------------------------------------------------------------------
    # HTTP shim helpers (health checks, metrics scrapes)
    # ------------------------------------------------------------------

    def http_get(self, path: str) -> Tuple[int, str]:
        """One-shot ``GET`` against the server's HTTP shim."""
        with socket.create_connection((self.host, self.port),
                                      timeout=self.timeout) as sock:
            sock.sendall(("GET %s HTTP/1.1\r\nHost: %s\r\n"
                          "Connection: close\r\n\r\n"
                          % (path, self.host)).encode("latin1"))
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        raw = b"".join(chunks)
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin1")
        status = int(status_line.split()[1])
        return status, body.decode("utf-8")

    def healthz(self) -> dict:
        """Fetch and parse ``GET /healthz``."""
        status, body = self.http_get("/healthz")
        if status != 200:
            raise ClientError("/healthz returned %d" % status)
        try:
            return json.loads(body)
        except ValueError as e:
            raise ClientError("unparseable /healthz body: %s" % e)

    def metrics(self) -> dict:
        """Scrape ``/metrics`` into a flat name → value dict.

        Labeled samples are stored under their full name (labels
        included); additionally the *first* sample of each family is
        stored under the bare metric name — on a labeled node that is
        the base-labeled total, so callers can keep asking for
        ``serve_requests_total`` without caring whether the node
        carries a ``node`` label.
        """
        status, body = self.http_get("/metrics")
        if status != 200:
            raise ClientError("/metrics returned %d" % status)
        values = {}
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.rpartition(" ")
            try:
                parsed = float(value)
            except ValueError:
                continue
            values[name] = parsed
            bare = name.partition("{")[0]
            if bare != name:
                values.setdefault(bare, parsed)
        return values
