"""AST-level tests: root discovery, scoping validation (§2.1), values."""

import pytest

from repro.ir import (
    AliveError,
    BinOp,
    Input,
    Literal,
    ScopeError,
    parse_transformation,
)
from repro.ir.ast import FLAG_OK, UndefValue, _collect_values


class TestRootDiscovery:
    def test_simple_root(self):
        t = parse_transformation("%r = add %x, 1\n=>\n%r = add 1, %x")
        assert t.root == "%r"

    def test_root_with_temporaries(self):
        t = parse_transformation("""
        %a = xor %x, -1
        %r = add %a, C
        =>
        %r = sub C-1, %x
        """)
        assert t.root == "%r"

    def test_root_when_temp_overwritten(self):
        # PR21274 shape: %Y and %r are both redefined; root is %r
        t = parse_transformation("""
        %s = shl %P, %A
        %Y = lshr %s, %B
        %r = udiv %X, %Y
        =>
        %sub = sub %A, %B
        %Y = shl %P, %sub
        %r = udiv %X, %Y
        """)
        assert t.root == "%r"

    def test_no_common_root_raises(self):
        with pytest.raises(ScopeError):
            parse_transformation("%r = add %x, 1\n=>\n%q = add %x, 2")


class TestScopingValidation:
    def test_valid_passes(self):
        t = parse_transformation("""
        %a = xor %x, -1
        %r = add %a, C
        =>
        %r = sub C-1, %x
        """)
        t.validate()

    def test_unused_source_temporary(self):
        t = parse_transformation("""
        %dead = mul %x, %x
        %r = add %x, 1
        =>
        %r = add 1, %x
        """)
        with pytest.raises(ScopeError):
            t.validate()

    def test_unused_target_instruction(self):
        t = parse_transformation("""
        %r = add %x, %y
        =>
        %dead = mul %x, %y
        %r = add %y, %x
        """)
        with pytest.raises(ScopeError):
            t.validate()

    def test_void_instructions_exempt(self):
        # deleting a store does not violate the temporary rule
        t = parse_transformation("""
        %q = getelementptr %p, 0
        store %v, %q
        =>
        store %v, %p
        """)
        t.validate()

    def test_overwritten_temp_is_fine(self):
        t = parse_transformation("""
        %a = add %x, C1
        %r = add %a, C2
        =>
        %a = add %x, C2
        %r = add %a, C1
        """)
        t.validate()


class TestValueCollections:
    def test_inputs(self):
        t = parse_transformation("""
        Pre: C1 & C2 == 0
        %t0 = or %B, %V
        %t1 = and %t0, C1
        %t2 = and %B, C2
        %R = or %t1, %t2
        =>
        %R = and %t0, (C1 | C2)
        """)
        names = sorted(v.name for v in t.inputs())
        assert names == ["%B", "%V", "C1", "C2"]

    def test_source_values_topological(self):
        t = parse_transformation("""
        %a = xor %x, -1
        %r = add %a, C
        =>
        %r = sub C-1, %x
        """)
        values = t.source_values()
        pos = {v.name: i for i, v in enumerate(values)}
        assert pos["%x"] < pos["%a"] < pos["%r"]

    def test_collect_values_deduplicates(self):
        x = Input("%x")
        a = BinOp("%a", "add", x, x)
        values = _collect_values([a])
        assert values.count(x) == 1


class TestNodeInvariants:
    def test_flag_table_consistency(self):
        for opcode, flags in FLAG_OK.items():
            for flag in flags:
                assert flag in ("nsw", "nuw", "exact")

    def test_binop_rejects_unknown_opcode(self):
        with pytest.raises(AliveError):
            BinOp("%r", "frob", Input("%x"), Input("%y"))

    def test_binop_rejects_bad_flag(self):
        with pytest.raises(AliveError):
            BinOp("%r", "xor", Input("%x"), Input("%y"), flags=("nsw",))

    def test_undef_occurrences_distinct(self):
        assert UndefValue().occurrence_id != UndefValue().occurrence_id

    def test_literal_name(self):
        assert Literal(-5).name == "-5"
