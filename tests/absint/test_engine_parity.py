"""Verdict parity: the absint fast path never changes a verdict.

The tier is a must-analysis in front of the solver: a ``True`` from
:func:`repro.absint.prove.prove_refinement` short-circuits exactly the
queries the solver would have proven UNSAT, so the per-rule verdict map
over the whole shipped corpus must be identical with the tier on and
off — only the query counts (and the ``absint_proved`` counter) may
differ.  This is the same invariant ``verify-batch --absint`` /
``--no-absint`` exposes on the command line.
"""

import pytest

from repro.core import Config
from repro.engine import EngineStats, run_batch
from repro.suite import load_all_flat

KNOBS = dict(max_width=4, prefer_widths=(4,), ptr_width=16,
             max_type_assignments=2)


def _verdicts(absint: bool):
    rules = load_all_flat()
    stats = EngineStats()
    results = run_batch(rules, Config(absint=absint, **KNOBS),
                        jobs=2, stats=stats)
    queries = sum(r.queries for r in results)
    return {t.name: r.status for t, r in zip(rules, results)}, stats, queries


@pytest.fixture(scope="module")
def runs():
    return _verdicts(True), _verdicts(False)


class TestVerdictParity:
    def test_status_maps_identical(self, runs):
        (with_absint, _, _), (without, _, _) = runs
        assert with_absint == without

    def test_fast_path_actually_fires(self, runs):
        (_, stats_on, _), (_, stats_off, _) = runs
        assert stats_on.absint_proved > 0
        assert stats_off.absint_proved == 0

    def test_fast_path_saves_queries(self, runs):
        (_, _, queries_on), (_, _, queries_off) = runs
        assert queries_on < queries_off
