"""Bit-blasting: lowering Bool+BitVec terms to CNF.

Every bitvector term is compiled to a little-endian list of SAT literals
(index 0 = least significant bit); Boolean terms compile to a single
literal.  Compilation is memoized on term identity, so shared DAG nodes
(ubiquitous in the ite-chain memory encoding) are compiled once.

Circuit constructions are the classic ones: ripple-carry adders, a
shift-add multiplier, a restoring divider, logarithmic barrel shifters,
and borrow-chain comparators.  Division by zero follows SMT-LIB
(``bvudiv x 0 = all-ones``, ``bvurem x 0 = x``) to stay consistent with
:mod:`repro.smt.eval` — Alive's verification conditions always guard
division anyway, so any consistent totalization works.
"""

from __future__ import annotations

from typing import Dict, List

from . import terms as T
from .cnf import CnfBuilder
from .sorts import is_bool, is_bv
from .terms import Term


class BitBlaster:
    """Compiles terms into a :class:`~repro.smt.cnf.CnfBuilder`.

    Attributes:
        builder: the CNF under construction.
        var_bits: map from variable terms to their literal lists (length 1
            for Booleans), used for model extraction.
    """

    def __init__(self, builder: CnfBuilder = None):
        self.builder = builder if builder is not None else CnfBuilder()
        self.var_bits: Dict[Term, List[int]] = {}
        self._bool_cache: Dict[int, int] = {}
        self._bv_cache: Dict[int, List[int]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def assert_formula(self, formula: Term) -> None:
        """Assert a Boolean term at the top level."""
        if not is_bool(formula.sort):
            raise TypeError("can only assert Boolean terms")
        self.builder.assert_lit(self.lit(formula))

    def lit(self, term: Term) -> int:
        """Compile a Boolean term to a literal."""
        if not is_bool(term.sort):
            raise TypeError("lit() expects a Boolean term, got %s" % term.sort)
        cached = self._bool_cache.get(id(term))
        if cached is not None:
            return cached
        result = self._compile_bool(term)
        self._bool_cache[id(term)] = result
        return result

    def bits(self, term: Term) -> List[int]:
        """Compile a bitvector term to its list of literals (LSB first)."""
        if not is_bv(term.sort):
            raise TypeError("bits() expects a bitvector term, got %s" % term.sort)
        cached = self._bv_cache.get(id(term))
        if cached is not None:
            return cached
        result = self._compile_bv(term)
        assert len(result) == term.width, (term.op, len(result), term.width)
        self._bv_cache[id(term)] = result
        return result

    def extract_model(self, sat_solver) -> Dict[Term, int]:
        """Read back variable values from a SAT model."""
        model: Dict[Term, int] = {}
        for var, lits in self.var_bits.items():
            value = 0
            for i, l in enumerate(lits):
                if sat_solver.model_value(l) if l > 0 else not sat_solver.model_value(-l):
                    value |= 1 << i
            model[var] = value
        return model

    # ------------------------------------------------------------------
    # Boolean compilation
    # ------------------------------------------------------------------

    def _compile_bool(self, t: Term) -> int:
        b = self.builder
        op = t.op
        if op == T.OP_TRUE:
            return b.true_lit
        if op == T.OP_FALSE:
            return b.false_lit
        if op == T.OP_VAR:
            lits = self.var_bits.get(t)
            if lits is None:
                lits = [b.new_var()]
                self.var_bits[t] = lits
            return lits[0]
        if op == T.OP_NOT:
            return -self.lit(t.args[0])
        if op == T.OP_AND:
            return b.gate_and([self.lit(a) for a in t.args])
        if op == T.OP_OR:
            return b.gate_or([self.lit(a) for a in t.args])
        if op == T.OP_XOR_BOOL:
            return b.gate_xor(self.lit(t.args[0]), self.lit(t.args[1]))
        if op == T.OP_EQ:
            x, y = t.args
            if is_bool(x.sort):
                return b.gate_iff(self.lit(x), self.lit(y))
            xs, ys = self.bits(x), self.bits(y)
            return b.gate_and([b.gate_iff(p, q) for p, q in zip(xs, ys)])
        if op == T.OP_ULT:
            return self._ult(self.bits(t.args[0]), self.bits(t.args[1]))
        if op == T.OP_ULE:
            return -self._ult(self.bits(t.args[1]), self.bits(t.args[0]))
        if op == T.OP_SLT:
            return self._slt(self.bits(t.args[0]), self.bits(t.args[1]))
        if op == T.OP_SLE:
            return -self._slt(self.bits(t.args[1]), self.bits(t.args[0]))
        raise ValueError("cannot bit-blast Boolean op %r" % op)

    # ------------------------------------------------------------------
    # Bitvector compilation
    # ------------------------------------------------------------------

    def _compile_bv(self, t: Term) -> List[int]:
        b = self.builder
        op = t.op
        w = t.width
        if op == T.OP_BVCONST:
            return [b.lit_const(bool(t.data >> i & 1)) for i in range(w)]
        if op == T.OP_VAR:
            lits = self.var_bits.get(t)
            if lits is None:
                lits = b.new_vars(w)
                self.var_bits[t] = lits
            return lits
        if op == T.OP_ITE:
            c = self.lit(t.args[0])
            xs, ys = self.bits(t.args[1]), self.bits(t.args[2])
            return [b.gate_ite(c, x, y) for x, y in zip(xs, ys)]
        if op == T.OP_BVNOT:
            return [-x for x in self.bits(t.args[0])]
        if op == T.OP_BVNEG:
            xs = self.bits(t.args[0])
            return self._adder([-x for x in xs],
                               [b.lit_const(False)] * len(xs),
                               b.lit_const(True))
        if op == T.OP_BVAND:
            xs, ys = self.bits(t.args[0]), self.bits(t.args[1])
            return [b.gate_and([x, y]) for x, y in zip(xs, ys)]
        if op == T.OP_BVOR:
            xs, ys = self.bits(t.args[0]), self.bits(t.args[1])
            return [b.gate_or([x, y]) for x, y in zip(xs, ys)]
        if op == T.OP_BVXOR:
            xs, ys = self.bits(t.args[0]), self.bits(t.args[1])
            return [b.gate_xor(x, y) for x, y in zip(xs, ys)]
        if op == T.OP_BVADD:
            return self._adder(self.bits(t.args[0]), self.bits(t.args[1]),
                               b.lit_const(False))
        if op == T.OP_BVSUB:
            ys = self.bits(t.args[1])
            return self._adder(self.bits(t.args[0]), [-y for y in ys],
                               b.lit_const(True))
        if op == T.OP_BVMUL:
            return self._multiplier(self.bits(t.args[0]), self.bits(t.args[1]))
        if op == T.OP_BVUDIV:
            q, _ = self._udivider(self.bits(t.args[0]), self.bits(t.args[1]))
            return q
        if op == T.OP_BVUREM:
            _, r = self._udivider(self.bits(t.args[0]), self.bits(t.args[1]))
            return r
        if op == T.OP_BVSDIV:
            return self._sdiv(self.bits(t.args[0]), self.bits(t.args[1]), rem=False)
        if op == T.OP_BVSREM:
            return self._sdiv(self.bits(t.args[0]), self.bits(t.args[1]), rem=True)
        if op == T.OP_BVSHL:
            return self._shifter(t, left=True, arith=False)
        if op == T.OP_BVLSHR:
            return self._shifter(t, left=False, arith=False)
        if op == T.OP_BVASHR:
            return self._shifter(t, left=False, arith=True)
        if op == T.OP_CONCAT:
            hi, lo = t.args
            return self.bits(lo) + self.bits(hi)
        if op == T.OP_EXTRACT:
            hi, lo = t.data
            return self.bits(t.args[0])[lo : hi + 1]
        if op == T.OP_ZEXT:
            return self.bits(t.args[0]) + [b.lit_const(False)] * t.data
        if op == T.OP_SEXT:
            xs = self.bits(t.args[0])
            return xs + [xs[-1]] * t.data
        raise ValueError("cannot bit-blast bitvector op %r" % op)

    # ------------------------------------------------------------------
    # Circuits
    # ------------------------------------------------------------------

    def _adder(self, xs: List[int], ys: List[int], carry: int) -> List[int]:
        out = []
        for x, y in zip(xs, ys):
            s, carry = self.builder.gate_full_adder(x, y, carry)
            out.append(s)
        return out

    def _multiplier(self, xs: List[int], ys: List[int]) -> List[int]:
        """Shift-and-add multiplication (O(w^2) gates)."""
        b = self.builder
        w = len(xs)
        acc = [b.lit_const(False)] * w
        for i, yi in enumerate(ys):
            if yi == b.false_lit:
                continue
            addend = [b.lit_const(False)] * i + [
                b.gate_and([x, yi]) for x in xs[: w - i]
            ]
            acc = self._adder(acc, addend, b.lit_const(False))
        return acc

    def _ult(self, xs: List[int], ys: List[int]) -> int:
        """Unsigned less-than via an LSB-to-MSB borrow chain."""
        b = self.builder
        lt = b.lit_const(False)
        for x, y in zip(xs, ys):
            eq_bit = b.gate_iff(x, y)
            lt_bit = b.gate_and([-x, y])
            lt = b.gate_or([lt_bit, b.gate_and([eq_bit, lt])])
        return lt

    def _slt(self, xs: List[int], ys: List[int]) -> int:
        """Signed less-than: flip the sign bits and compare unsigned."""
        xs2 = xs[:-1] + [-xs[-1]]
        ys2 = ys[:-1] + [-ys[-1]]
        return self._ult(xs2, ys2)

    def _is_zero(self, xs: List[int]) -> int:
        return self.builder.gate_and([-x for x in xs])

    def _mux_vec(self, c: int, xs: List[int], ys: List[int]) -> List[int]:
        b = self.builder
        return [b.gate_ite(c, x, y) for x, y in zip(xs, ys)]

    def _udivider(self, xs: List[int], ys: List[int]):
        """Restoring division; returns (quotient, remainder) with the
        SMT-LIB convention for a zero divisor."""
        b = self.builder
        w = len(xs)
        # remainder register, one extra bit so the subtraction cannot wrap
        r = [b.lit_const(False)] * (w + 1)
        ys_ext = ys + [b.lit_const(False)]
        q = [b.lit_const(False)] * w
        for i in range(w - 1, -1, -1):
            # r = (r << 1) | x_i
            r = [xs[i]] + r[:w]
            ge = -self._ult(r, ys_ext)
            diff = self._adder(r, [-y for y in ys_ext], b.lit_const(True))
            r = self._mux_vec(ge, diff, r)
            q[i] = ge
        div_zero = self._is_zero(ys)
        ones = [b.lit_const(True)] * w
        q = self._mux_vec(div_zero, ones, q)
        r_out = self._mux_vec(div_zero, xs, r[:w])
        return q, r_out

    def _negate(self, xs: List[int]) -> List[int]:
        b = self.builder
        return self._adder([-x for x in xs], [b.lit_const(False)] * len(xs),
                           b.lit_const(True))

    def _sdiv(self, xs: List[int], ys: List[int], rem: bool) -> List[int]:
        """Signed division/remainder via magnitudes (truncated division).

        Matches SMT-LIB: the quotient rounds toward zero, the remainder
        takes the dividend's sign, and a zero divisor falls through to the
        unsigned convention on magnitudes (which reproduces
        ``bvsdiv x 0 = x<0 ? 1 : -1`` and ``bvsrem x 0 = x``).
        """
        sx, sy = xs[-1], ys[-1]
        ax = self._mux_vec(sx, self._negate(xs), xs)
        ay = self._mux_vec(sy, self._negate(ys), ys)
        q, r = self._udivider(ax, ay)
        if rem:
            return self._mux_vec(sx, self._negate(r), r)
        neg_q = self.builder.gate_xor(sx, sy)
        return self._mux_vec(neg_q, self._negate(q), q)

    def _shifter(self, t: Term, left: bool, arith: bool) -> List[int]:
        """Logarithmic barrel shifter with out-of-range handling."""
        b = self.builder
        xs = self.bits(t.args[0])
        ys = self.bits(t.args[1])
        w = len(xs)
        fill = xs[-1] if arith else b.lit_const(False)

        acc = xs
        k = 0
        while (1 << k) < w:
            amount = 1 << k
            bit = ys[k]
            if left:
                # left shifts always fill with zeros
                shifted = [b.lit_const(False) if i < amount else acc[i - amount]
                           for i in range(w)]
            else:
                shifted = [acc[i + amount] if i + amount < w else fill
                           for i in range(w)]
            acc = self._mux_vec(bit, shifted, acc)
            k += 1

        # overflow: shift amount >= w (any bit at position >= k set, or the
        # already-consumed bits encode a value >= w)
        high_bits = ys[k:]
        consumed = ys[:k]
        # value of consumed bits >= w ?
        over_low = b.lit_const(False)
        if (1 << k) > w:
            # possible for non-power-of-two widths: compare consumed >= w
            wval = [b.lit_const(bool(w >> i & 1)) for i in range(k)]
            over_low = -self._ult(consumed, wval)
        over = b.gate_or([over_low] + list(high_bits))
        fill_vec = [fill] * w
        return self._mux_vec(over, fill_vec, acc)


def blast(formula: Term) -> BitBlaster:
    """Convenience: bit-blast a single asserted formula."""
    bb = BitBlaster()
    bb.assert_formula(formula)
    return bb
