"""Job model for the batch-verification engine.

A *job* is the smallest independent unit of the paper's workflow: one
(transformation × feasible type assignment) refinement check (§3.1.2 at
one model of the §3.2 typing constraints).  Jobs carry everything a
worker process needs as plain data — the transformation in its printed
surface syntax (parse → print round-trips by construction), the index
of the type assignment in enumeration order, and the configuration
knobs — so they cross the ``multiprocessing`` boundary without
pickling AST or solver objects.

Every job has a stable *content-addressed key*: the SHA-256 of

* the transformation body, printed with a normalized name (so renaming
  a rule does not invalidate its cached verdicts);
* the canonical signature of the type assignment (sorted
  ``var=type`` pairs);
* every :class:`~repro.core.config.Config` knob (any of them can
  change a verdict);
* the engine's *semantics fingerprint* (see :mod:`repro.engine.cache`),
  which versions the verifier implementation itself.

Two jobs with equal keys are guaranteed to produce the same outcome,
which is what makes the persistent cache sound and lets the scheduler
deduplicate identical work within a batch.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from ..core.config import Config
from ..core.verifier import VerificationResult, decompose
from ..ir import ast
from ..ir.printer import transformation_str


class JobSpec:
    """One per-type-assignment refinement job, ready to schedule.

    Attributes:
        key: content-addressed cache key (SHA-256 hex digest).
        name: the transformation's user-facing name (for reporting).
        text: the transformation in parseable surface syntax.
        index: position of the type assignment in enumeration order.
        signature: canonical string form of the type assignment.
        knobs: the Config knobs as plain data.
    """

    __slots__ = ("key", "name", "text", "index", "signature", "knobs")

    def __init__(self, key: str, name: str, text: str, index: int,
                 signature: str, knobs: dict):
        self.key = key
        self.name = name
        self.text = text
        self.index = index
        self.signature = signature
        self.knobs = knobs

    def payload(self) -> dict:
        """The picklable worker payload (no derived/reporting fields)."""
        return {"key": self.key, "text": self.text, "index": self.index,
                "knobs": self.knobs}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "JobSpec(%s#%d, %s)" % (self.name, self.index, self.key[:12])


def normalized_text(t: ast.Transformation) -> str:
    """Printed form with the ``Name:`` header normalized away.

    The name is reporting metadata: two rules with identical bodies are
    the same verification problem, so they share cache entries.
    """
    lines = transformation_str(t).split("\n")
    if lines and lines[0].startswith("Name:"):
        lines[0] = "Name: _"
    return "\n".join(lines)


def assignment_signature(mapping: Dict[str, object]) -> str:
    """Canonical ``var=type`` signature of one type assignment."""
    return ",".join(
        "%s=%s" % (var, mapping[var]) for var in sorted(mapping)
    )


def job_key(body: str, signature: str, knobs: dict, fingerprint: str) -> str:
    """The content-addressed key of one job."""
    blob = json.dumps(
        {
            "body": body,
            "assignment": signature,
            "knobs": knobs,
            "fingerprint": fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fuse_payloads(payloads: List[dict], max_fused: int = 16) -> List[dict]:
    """Group job payloads into fused dispatch batches by rule affinity.

    Jobs of the same rule (identical ``text`` + ``knobs``) are made
    contiguous and ordered by assignment index, so a warm worker
    re-parses and re-typechecks each rule once per batch instead of
    once per job; contiguous runs sharing the same knobs are then
    chunked into batches of at most *max_fused* sub-jobs.  A batch is
    a plain dict ``{"fused": True, "key", "knobs", "jobs": [...]}`` —
    the individual payloads (and their content-addressed keys) are
    carried through unchanged, which is what keeps cache keys and
    per-job outcomes byte-identical to unfused dispatch.

    Singleton chunks stay plain payloads; ``max_fused <= 1`` disables
    fusion entirely.
    """
    if max_fused <= 1 or len(payloads) <= 1:
        return list(payloads)
    groups: "OrderedDict[Tuple[str, str], List[dict]]" = OrderedDict()
    for payload in payloads:
        knobs_json = json.dumps(payload["knobs"], sort_keys=True)
        groups.setdefault((payload["text"], knobs_json), []).append(payload)
    # one ordered stream per knobs value: every sub-job of a batch must
    # share its knobs (the pool derives per-sub hard deadlines from them)
    streams: "OrderedDict[str, List[dict]]" = OrderedDict()
    for (_text, knobs_json), group in groups.items():
        group.sort(key=lambda p: p["index"])
        streams.setdefault(knobs_json, []).extend(group)
    batches: List[dict] = []
    for ordered in streams.values():
        for i in range(0, len(ordered), max_fused):
            chunk = ordered[i:i + max_fused]
            if len(chunk) == 1:
                batches.append(chunk[0])
            else:
                batches.append({
                    "fused": True,
                    "key": "fused:%s" % chunk[0]["key"],
                    "knobs": chunk[0]["knobs"],
                    "jobs": chunk,
                })
    return batches


class TransformationPlan:
    """The decomposition of one transformation into jobs.

    ``early`` is a finished :class:`VerificationResult` when the
    transformation never reaches refinement checking (scoping or typing
    rejection); otherwise ``jobs`` lists one :class:`JobSpec` per
    feasible type assignment, in enumeration order.
    """

    __slots__ = ("transformation", "early", "jobs")

    def __init__(self, transformation: ast.Transformation,
                 early: Optional[VerificationResult],
                 jobs: List[JobSpec]):
        self.transformation = transformation
        self.early = early
        self.jobs = jobs


def plan_transformation(
    t: ast.Transformation,
    config: Config,
    fingerprint: str,
) -> TransformationPlan:
    """Decompose one transformation into content-addressed jobs."""
    early, _checker, mappings = decompose(t, config)
    if early is not None:
        return TransformationPlan(t, early, [])
    text = transformation_str(t)
    body = normalized_text(t)
    knobs = config.to_dict()
    jobs = []
    for index, mapping in enumerate(mappings):
        signature = assignment_signature(mapping)
        jobs.append(JobSpec(
            key=job_key(body, signature, knobs, fingerprint),
            name=t.name,
            text=text,
            index=index,
            signature=signature,
            knobs=knobs,
        ))
    return TransformationPlan(t, None, jobs)
