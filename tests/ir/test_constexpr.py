"""Tests for the constant-expression language: concrete evaluation must
agree with the SMT term semantics on every operator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import parse_transformation
from repro.ir.ast import AliveError, ConstantSymbol, Input, Literal
from repro.ir.constexpr import ConstExpr, eval_constexpr, is_constant_value
from repro.smt import terms as T
from repro.smt.eval import evaluate

C1 = ConstantSymbol("C1")
C2 = ConstantSymbol("C2")


def ev(expr, width=8, env=None):
    env = env or {}
    return eval_constexpr(expr, width, lambda sym: env[sym.name])


class TestLeaves:
    def test_literal(self):
        assert ev(Literal(300)) == 44  # truncated to i8

    def test_symbol(self):
        assert ev(C1, env={"C1": 7}) == 7

    def test_non_constant_raises(self):
        with pytest.raises(AliveError):
            ev(Input("%x"))


# every binary op against a reference implemented via the SMT terms
_TERM_OPS = {
    "add": T.bvadd, "sub": T.bvsub, "mul": T.bvmul,
    "udiv": T.bvudiv, "sdiv": T.bvsdiv, "urem": T.bvurem, "srem": T.bvsrem,
    "shl": T.bvshl, "lshr": T.bvlshr, "ashr": T.bvashr,
    "and": T.bvand, "or": T.bvor, "xor": T.bvxor,
}


@settings(max_examples=300, deadline=None)
@given(
    op=st.sampled_from(sorted(_TERM_OPS)),
    a=st.integers(0, 255),
    b=st.integers(0, 255),
)
def test_binops_agree_with_smt_semantics(op, a, b):
    expr = ConstExpr(op, (C1, C2))
    got = ev(expr, env={"C1": a, "C2": b})
    term = _TERM_OPS[op](T.bv_const(a, 8), T.bv_const(b, 8))
    assert got == evaluate(term, {})


@settings(max_examples=100, deadline=None)
@given(a=st.integers(0, 255))
def test_unops_agree(a):
    assert ev(ConstExpr("neg", (C1,)), env={"C1": a}) == (-a) & 0xFF
    assert ev(ConstExpr("not", (C1,)), env={"C1": a}) == (~a) & 0xFF
    signed = a - 256 if a >= 128 else a
    assert ev(ConstExpr("abs", (C1,)), env={"C1": a}) == abs(signed) & 0xFF


class TestFunctions:
    def test_log2(self):
        assert ev(ConstExpr("log2", (Literal(8),))) == 3
        assert ev(ConstExpr("log2", (Literal(1),))) == 0
        assert ev(ConstExpr("log2", (Literal(0),))) == 0
        assert ev(ConstExpr("log2", (Literal(100),))) == 6

    def test_minmax(self):
        env = {"C1": 200, "C2": 5}  # 200 is -56 signed
        assert ev(ConstExpr("umax", (C1, C2)), env=env) == 200
        assert ev(ConstExpr("umin", (C1, C2)), env=env) == 5
        assert ev(ConstExpr("smax", (C1, C2)), env=env) == 5
        assert ev(ConstExpr("smin", (C1, C2)), env=env) == 200

    def test_width_resolved_by_lookup(self):
        expr = ConstExpr("width", (Input("%x"),))
        assert eval_constexpr(expr, 8, lambda e: 32) == 32


class TestIsConstant:
    def test_cases(self):
        assert is_constant_value(Literal(1))
        assert is_constant_value(C1)
        assert is_constant_value(ConstExpr("add", (C1, Literal(1))))
        assert not is_constant_value(Input("%x"))
        assert not is_constant_value(ConstExpr("add", (C1, Input("%x"))))
        # width() of anything is compile-time once types are fixed
        assert is_constant_value(ConstExpr("width", (Input("%x"),)))


class TestParsedExpressions:
    def test_paper_pr21245_expression(self):
        t = parse_transformation(
            "Pre: C2 % (1<<C1) == 0\n%s = shl nsw %X, C1\n%r = sdiv %s, C2\n"
            "=>\n%r = sdiv %X, C2/(1<<C1)"
        )
        expr = t.tgt["%r"].b
        # evaluate with C1 = 1, C2 = 8 at i8 -> 8 / 2 = 4
        got = eval_constexpr(expr, 8, lambda sym: {"C1": 1, "C2": 8}[sym.name])
        assert got == 4

    def test_negative_division_is_signed(self):
        t = parse_transformation(
            "%r = sdiv %x, C\n=>\n%r = sdiv %x, C/2"
        )
        expr = t.tgt["%r"].b
        # C = -8 -> signed division -> -4
        got = eval_constexpr(expr, 8, lambda sym: 0xF8)
        assert got == 0xFC
