"""Per-batch execution statistics for the verification engine.

Counters answer the operational questions a batch run raises — how much
work was real vs. replayed from cache, how often workers had to be
retried or timed out, and what the job latency distribution looks like.
``alive-repro verify-batch --stats`` prints the summary table after the
verdicts; tests use the counters to assert cache behavior (a warm run
must execute zero refinement checks).
"""

from __future__ import annotations

import math
from typing import List, Optional


def percentile(values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of *values* (0.0 for an empty list)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(fraction * len(ordered))) - 1))
    return ordered[rank]


class EngineStats:
    """Counters and timings collected over one batch run.

    Attributes:
        transformations: transformations in the batch.
        jobs_total: refinement jobs after decomposition (pre-dedup).
        jobs_deduped: jobs folded into an identical job in the same batch.
        cache_hits: jobs answered from the persistent cache.
        jobs_executed: refinement checks actually run (cold work).
        absint_proved: executed jobs whose type assignments were all
            discharged by the abstract-interpretation tier — valid
            verdicts that cost zero SAT queries.
        retries: worker attempts beyond the first, across all jobs.
        timeouts: jobs whose outcome was a wall-clock budget expiry.
        crashes: worker processes that died mid-job (segfault, OOM
            kill, ``os._exit``) — distinct from raised errors.
        errors: jobs abandoned after exhausting their retry budget.
        latencies: per-executed-job wall-clock seconds.
        scheduler: structured snapshot of the last scheduler dispatch
            (:class:`~repro.engine.scheduler.SchedulerStats` as a dict),
            or None when nothing was dispatched.
    """

    def __init__(self):
        self.transformations = 0
        self.jobs_total = 0
        self.jobs_deduped = 0
        self.cache_hits = 0
        self.jobs_executed = 0
        self.absint_proved = 0
        self.retries = 0
        self.timeouts = 0
        self.crashes = 0
        self.errors = 0
        self.latencies: List[float] = []
        self.wall_time = 0.0
        self.scheduler: Optional[dict] = None

    def record_latency(self, seconds: float) -> None:
        self.latencies.append(seconds)

    @property
    def p50(self) -> float:
        return percentile(self.latencies, 0.50)

    @property
    def p95(self) -> float:
        return percentile(self.latencies, 0.95)

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 0.99)

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Fold *other*'s counters into this one; returns self.

        Used to combine stats from independent runs — per-worker or
        per-micro-batch — into one aggregate.  Counters and latency
        samples add; ``wall_time`` takes the maximum because merged
        runs are assumed to have overlapped in time (the serving layer
        merges per-dispatch stats gathered concurrently).
        """
        self.transformations += other.transformations
        self.jobs_total += other.jobs_total
        self.jobs_deduped += other.jobs_deduped
        self.cache_hits += other.cache_hits
        self.jobs_executed += other.jobs_executed
        self.absint_proved += other.absint_proved
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.crashes += other.crashes
        self.errors += other.errors
        self.latencies.extend(other.latencies)
        self.wall_time = max(self.wall_time, other.wall_time)
        if other.scheduler is not None:
            self.scheduler = other.scheduler
        return self

    def to_dict(self) -> dict:
        """Plain-data form for JSON artifacts (benchmarks, CI)."""
        return {
            "transformations": self.transformations,
            "jobs_total": self.jobs_total,
            "jobs_deduped": self.jobs_deduped,
            "cache_hits": self.cache_hits,
            "jobs_executed": self.jobs_executed,
            "absint_proved": self.absint_proved,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "errors": self.errors,
            "p50_latency": self.p50,
            "p95_latency": self.p95,
            "p99_latency": self.p99,
            "wall_time": self.wall_time,
            "scheduler": self.scheduler,
        }

    def format_table(self) -> str:
        """The ``--stats`` summary table."""
        rows = [
            ("transformations", "%d" % self.transformations),
            ("jobs (total)", "%d" % self.jobs_total),
            ("jobs deduplicated", "%d" % self.jobs_deduped),
            ("cache hits", "%d" % self.cache_hits),
            ("jobs executed", "%d" % self.jobs_executed),
            ("absint proved", "%d" % self.absint_proved),
            ("retries", "%d" % self.retries),
            ("timeouts", "%d" % self.timeouts),
            ("worker crashes", "%d" % self.crashes),
            ("errors", "%d" % self.errors),
            ("p50 job latency", "%.3fs" % self.p50),
            ("p95 job latency", "%.3fs" % self.p95),
            ("wall time", "%.2fs" % self.wall_time),
        ]
        width = max(len(label) for label, _ in rows)
        lines = ["batch statistics", "-" * (width + 12)]
        for label, value in rows:
            lines.append("%-*s %10s" % (width, label, value))
        return "\n".join(lines)
