"""Applying a matched transformation to concrete IR (paper §4).

Mirrors the body of the generated C++: create the target template's
instructions, materialize constant expressions as ``ConstantInt``-style
constants, wire operands to the matched bindings, and
``replaceAllUsesWith`` the root.  Like the paper's generated code, the
rewriter leaves dead instructions behind for a later DCE pass.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import ast
from ..ir.constexpr import ConstExpr, eval_constexpr, is_constant_value
from ..ir.module import MConst, MFunction, MInstr, MValue
from .matcher import Match


class RewriteError(ast.AliveError):
    """The target template cannot be materialized for this match."""


class Rewriter:
    """Materializes the target template of one transformation."""

    def __init__(self, transformation: ast.Transformation):
        self.t = transformation

    def apply(self, fn: MFunction, match: Match) -> MValue:
        """Rewrite *fn* in place; returns the new root value."""
        built: Dict[str, MValue] = {}
        root_inst = match.root
        new_root: Optional[MValue] = None
        for name, inst in self.t.tgt.items():
            value = self._build(inst, fn, match, built, root_inst)
            built[name] = value
            if name == self.t.root:
                new_root = value
        if new_root is None:
            raise RewriteError("target did not produce the root %s" % self.t.root)
        fn.replace_all_uses(root_inst, new_root)
        return new_root

    # ------------------------------------------------------------------

    def _build_pair(self, va: ast.Value, vb: ast.Value, fn: MFunction,
                    match: Match, built: Dict[str, MValue], before: MInstr,
                    width_hint):
        """Build two sibling operands, resolving constant widths from the
        non-constant sibling (LLVM's type unification at codegen, §4)."""
        a_const = isinstance(va, (ast.Literal, ConstExpr))
        b_const = isinstance(vb, (ast.Literal, ConstExpr))
        if a_const and not b_const:
            b = self._build(vb, fn, match, built, before, width_hint)
            a = self._build(va, fn, match, built, before, b.width)
        else:
            a = self._build(va, fn, match, built, before, width_hint)
            b = self._build(vb, fn, match, built, before, a.width)
        return a, b

    def _build(self, v: ast.Value, fn: MFunction, match: Match,
               built: Dict[str, MValue], before: MInstr,
               width_hint=None) -> MValue:
        bindings = match.bindings
        if isinstance(v, ast.Instruction) and v.name in built:
            return built[v.name]
        if isinstance(v, (ast.Input, ast.ConstantSymbol)):
            bound = bindings.get(v.name)
            if bound is None:
                raise RewriteError("unbound template value %s" % v.name)
            return bound
        if isinstance(v, ast.Instruction) and v.name in bindings and v.name not in self.t.tgt:
            # a source temporary referenced by the target
            return bindings[v.name]
        if isinstance(v, ast.Literal):
            width = width_hint or self._width_for(v, match)
            return MConst(v.value, width)
        if isinstance(v, ConstExpr):
            width = width_hint or self._width_for(v, match)
            value = eval_constexpr(
                v, width, lambda sym: self._resolve_const(sym, match)
            )
            return MConst(value, width)
        if isinstance(v, ast.BinOp):
            a, b = self._build_pair(v.a, v.b, fn, match, built, before,
                                    width_hint)
            return fn.add(v.opcode, [a, b], a.width, flags=v.flags, before=before)
        if isinstance(v, ast.ICmp):
            a, b = self._build_pair(v.a, v.b, fn, match, built, before, None)
            return fn.add("icmp", [a, b], 1, cond=v.cond, before=before)
        if isinstance(v, ast.Select):
            c = self._build(v.c, fn, match, built, before, 1)
            a, b = self._build_pair(v.a, v.b, fn, match, built, before,
                                    width_hint)
            return fn.add("select", [c, a, b], a.width, before=before)
        if isinstance(v, ast.ConvOp):
            if v.opcode not in ("zext", "sext", "trunc"):
                raise RewriteError("conversion %r not supported" % v.opcode)
            x = self._build(v.x, fn, match, built, before)
            # a conversion's result width comes from its consumer; in
            # target templates that is (transitively) the root, unless an
            # explicit annotation overrides it
            from ..typing.types import IntType

            if v.ty is not None and isinstance(v.ty, IntType):
                width = v.ty.width
            elif width_hint is not None:
                width = width_hint
            else:
                width = match.root.width
            if width == x.width:
                return x  # degenerate conversion collapses to a copy
            if v.opcode in ("zext", "sext") and width < x.width:
                raise RewriteError("conversion widths unsatisfiable")
            if v.opcode == "trunc" and width > x.width:
                raise RewriteError("conversion widths unsatisfiable")
            return fn.add(v.opcode, [x], width, before=before)
        if isinstance(v, ast.Copy):
            return self._build(v.x, fn, match, built, before)
        raise RewriteError("cannot materialize %r" % (v,))

    # ------------------------------------------------------------------

    def _resolve_const(self, sym: ast.Value, match: Match) -> int:
        if isinstance(sym, ConstExpr) and sym.op == "width":
            arg = sym.args[0]
            bound = match.bindings.get(arg.name)
            if bound is None:
                raise RewriteError("width() of unbound value %s" % arg.name)
            return bound.width
        bound = match.bindings.get(sym.name)
        if isinstance(bound, MConst):
            return bound.value
        raise RewriteError("constant %s is not bound" % sym.name)

    def _width_for(self, v: ast.Value, match: Match) -> int:
        """Resolve the concrete width of a target value.

        Uses, in order: an explicit annotation, the width of the source
        root (targets overwhelmingly share it), or the width of any
        constant symbol the expression mentions.
        """
        from ..typing.types import IntType

        if v.ty is not None and isinstance(v.ty, IntType):
            return v.ty.width
        # widths referenced through the expression's symbols
        widths = []

        def scan(e: ast.Value):
            if isinstance(e, (ast.Input, ast.ConstantSymbol, ast.Instruction)):
                bound = match.bindings.get(e.name)
                if bound is not None:
                    widths.append(bound.width)
            for op in e.operands():
                scan(op)

        scan(v)
        if widths:
            return widths[0]
        return match.root.width
