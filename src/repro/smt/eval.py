"""Concrete evaluation of SMT terms under a full assignment.

The evaluator is the ground-truth semantics of the term language.  It is
used by:

* the CEGIS loop, to evaluate candidate models;
* the brute-force backend (:mod:`repro.smt.brute`) that cross-checks the
  CDCL+bit-blasting pipeline in the test suite;
* counterexample printing, to recompute intermediate values.

Values are plain Python ints: Booleans map to 0/1, bitvectors to their
unsigned representative in ``[0, 2^w)``.
"""

from __future__ import annotations

from typing import Dict

from . import terms as T
from .terms import Term


class EvalError(Exception):
    """Raised when a term mentions a variable missing from the model."""


def evaluate(term: Term, model: Dict[Term, int]) -> int:
    """Evaluate *term* under *model* (a map from variable terms to ints).

    Returns the unsigned integer value of the term.  Iterative post-order
    walk so deeply nested ite-chains do not hit the recursion limit.
    """
    cache: Dict[int, int] = {}
    stack = [(term, False)]
    while stack:
        t, ready = stack.pop()
        if id(t) in cache:
            continue
        if not ready:
            stack.append((t, True))
            for a in t.args:
                if id(a) not in cache:
                    stack.append((a, False))
            continue
        cache[id(t)] = _eval_node(t, cache, model)
    return cache[id(term)]


def _eval_node(t: Term, cache: Dict[int, int], model: Dict[Term, int]) -> int:
    op = t.op
    if op == T.OP_VAR:
        try:
            value = model[t]
        except KeyError:
            raise EvalError("no value for variable %r in model" % (t.data,))
        return value & _sort_mask(t)
    if op == T.OP_BVCONST:
        return t.data
    if op == T.OP_TRUE:
        return 1
    if op == T.OP_FALSE:
        return 0

    args = [cache[id(a)] for a in t.args]

    if op == T.OP_NOT:
        return 1 - args[0]
    if op == T.OP_AND:
        return int(all(args))
    if op == T.OP_OR:
        return int(any(args))
    if op == T.OP_XOR_BOOL:
        return args[0] ^ args[1]
    if op == T.OP_EQ:
        return int(args[0] == args[1])
    if op == T.OP_ITE:
        return args[1] if args[0] else args[2]

    if op == T.OP_BVNOT:
        return (~args[0]) & T.mask(t.width)
    if op == T.OP_BVNEG:
        return (-args[0]) & T.mask(t.width)

    w = t.width if op not in (T.OP_ULT, T.OP_ULE, T.OP_SLT, T.OP_SLE) else t.args[0].width
    if op == T.OP_BVADD:
        return (args[0] + args[1]) & T.mask(w)
    if op == T.OP_BVSUB:
        return (args[0] - args[1]) & T.mask(w)
    if op == T.OP_BVMUL:
        return (args[0] * args[1]) & T.mask(w)
    if op == T.OP_BVUDIV:
        return T._udiv_val(args[0], args[1], w)
    if op == T.OP_BVSDIV:
        return T._sdiv_val(args[0], args[1], w)
    if op == T.OP_BVUREM:
        return T._urem_val(args[0], args[1], w)
    if op == T.OP_BVSREM:
        return T._srem_val(args[0], args[1], w)
    if op == T.OP_BVSHL:
        return T._shl_val(args[0], args[1], w)
    if op == T.OP_BVLSHR:
        return T._lshr_val(args[0], args[1], w)
    if op == T.OP_BVASHR:
        return T._ashr_val(args[0], args[1], w)
    if op == T.OP_BVAND:
        return args[0] & args[1]
    if op == T.OP_BVOR:
        return args[0] | args[1]
    if op == T.OP_BVXOR:
        return args[0] ^ args[1]

    if op == T.OP_CONCAT:
        return (args[0] << t.args[1].width) | args[1]
    if op == T.OP_EXTRACT:
        hi, lo = t.data
        return (args[0] >> lo) & T.mask(hi - lo + 1)
    if op == T.OP_ZEXT:
        return args[0]
    if op == T.OP_SEXT:
        return T.truncate(T.to_signed(args[0], t.args[0].width), t.width)

    if op == T.OP_ULT:
        return int(args[0] < args[1])
    if op == T.OP_ULE:
        return int(args[0] <= args[1])
    if op == T.OP_SLT:
        return int(T.to_signed(args[0], w) < T.to_signed(args[1], w))
    if op == T.OP_SLE:
        return int(T.to_signed(args[0], w) <= T.to_signed(args[1], w))

    raise EvalError("cannot evaluate operation %r" % (op,))


def _sort_mask(t: Term) -> int:
    from .sorts import is_bv

    if is_bv(t.sort):
        return T.mask(t.width)
    return 1


def holds(term: Term, model: Dict[Term, int]) -> bool:
    """Evaluate a Boolean term to a Python bool."""
    return bool(evaluate(term, model))
