"""Solver front-end: check-sat, model extraction, and ∃∀ solving.

The Alive correctness conditions (paper §3.1.2) are of the form

    ∀ I, P, Ū  ∃ U :  ψ ⇒ C

where ``I`` are inputs/constants, ``P`` analysis bits, ``Ū`` the target's
undef variables and ``U`` the source's undef variables.  Validity is
checked by refuting the negation

    ∃ I, P, Ū  ∀ U :  ψ ∧ ¬C

which is an exists-forall problem over bitvectors.  When the source has
no undef values the inner block is empty and the query is plain QF_BV,
solved by bit-blasting + CDCL.  Otherwise we run a CEGIS
(counterexample-guided inductive synthesis) loop:

1. maintain a finite set S of instantiations for the ∀ variables;
2. solve ``∧_{u∈S} φ[U := u]`` for the outer variables;
3. given a candidate model for the outer variables, look for a value of
   the ∀ variables falsifying φ; if none exists the candidate is a true
   witness; otherwise add it to S and repeat.

This decides the fragment (finite domains) and terminates because each
iteration removes at least one outer candidate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from . import terms as T
from .bitblast import BitBlaster
from .cnf import CnfBuilder
from .eval import evaluate
from .sat import SAT, UNKNOWN, UNSAT, SatSolver
from .sorts import is_bool, is_bv
from .terms import Term


class SolverError(Exception):
    """Raised when the solver cannot decide a query within its budget."""


class StaleSolverError(Exception):
    """An incremental session was reused across incompatible contexts.

    Raised by :meth:`IncrementalSession.require` when a resident session
    is asked to serve a query from a different width class (term-table
    fingerprint mismatch) without an intervening :meth:`reset` — learned
    clauses from one sort universe must never steer (or worse, answer)
    a query over another.
    """


class Result:
    """Outcome of a satisfiability query.

    Attributes:
        status: "sat", "unsat" or "unknown".
        model: for "sat", a map from variable terms to integer values
            (Booleans are 0/1, bitvectors unsigned).
        stats: solver statistics (conflicts, decisions, cegis rounds).
    """

    def __init__(self, status: str, model: Optional[Dict[Term, int]] = None,
                 stats: Optional[dict] = None):
        self.status = status
        self.model = model or {}
        self.stats = stats or {}

    def is_sat(self) -> bool:
        return self.status == SAT

    def is_unsat(self) -> bool:
        return self.status == UNSAT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Result(%s, %d vars)" % (self.status, len(self.model))


class IncrementalSession:
    """A long-lived (bit-blaster, CDCL solver) pair for query families.

    The Alive workload is thousands of *nearly identical* queries: the
    three refinement checks of one instruction share their entire
    hypothesis ψ, the checks of different instructions share the
    template encodings, and every CEGIS round extends the previous
    round's formula by one instantiation.  A fresh solver per query
    re-bit-blasts and re-learns all of that from scratch.

    A session instead keeps one :class:`BitBlaster` (whose term→literal
    memo makes the shared prefix of each new query free — hash-consed
    terms compile once) feeding one incremental :class:`SatSolver`
    (whose learned clauses, activities and phases carry over).  Queries
    are posed as *assumptions*: the Tseitin root literal of a formula is
    assumed rather than asserted, so it constrains exactly one
    :meth:`check` call.  Gate definition clauses are always satisfiable
    on their own, so retired queries leave no semantic residue — only
    reusable structure.

    ``fingerprint`` names the width class / sort universe the session
    was built for; :meth:`require` raises :class:`StaleSolverError` on a
    mismatch so a resident session cannot silently serve a wrong-sorted
    query (see ``Solver state hygiene`` in DESIGN.md).
    """

    #: formulas whose :func:`repro.smt.terms.encoding_weight` exceeds
    #: this are solved one-shot instead of in-session.  A query
    #: dominated by a unique cone gains little from the shared prefix,
    #: but as an *assumption* its (huge) implication cone is
    #: re-propagated after every backtrack past the assumption level —
    #: far more work than the one-shot path's single root propagation.
    #: Small and repetitive queries (refinement checks, CEGIS rounds)
    #: stay in-session.  On the alive corpus the two populations are
    #: separated by more than an order of magnitude.
    ONE_SHOT_WEIGHT_LIMIT = 1000

    def __init__(self, fingerprint: Optional[str] = None):
        self.fingerprint = fingerprint
        self.builder = CnfBuilder()
        self.blaster = BitBlaster(self.builder)
        self.solver = SatSolver(self.builder.num_vars)
        self._fed = 0
        self.checks = 0
        #: activation guards issued minus retired; while positive, a
        #: CEGIS loop is live and heuristic state carries over between
        #: calls (the synthesis stream re-solves one growing formula)
        self._live_acts = 0

    @property
    def epoch(self) -> int:
        """Bumped by :meth:`reset`; literals from older epochs are stale."""
        return self.solver.epoch

    def reset(self, fingerprint: Optional[str] = None) -> None:
        """Drop all solver and encoding state; adopt a new fingerprint."""
        self.solver.reset()
        self.builder = CnfBuilder()
        self.blaster = BitBlaster(self.builder)
        self._fed = 0
        self._live_acts = 0
        self.fingerprint = fingerprint

    def require(self, fingerprint: Optional[str]) -> None:
        """Assert this session belongs to *fingerprint*'s width class."""
        if self.fingerprint is not None and fingerprint != self.fingerprint:
            raise StaleSolverError(
                "incremental session for %r cannot serve %r; reset() first"
                % (self.fingerprint, fingerprint))

    def _sync(self) -> None:
        """Ship clauses added to the builder since the last solve."""
        self.solver.ensure_num_vars(self.builder.num_vars)
        for clause in self.builder.clauses_since(self._fed):
            self.solver.add_clause(clause)
        self._fed = self.builder.mark()

    # -- incremental constraint surface --------------------------------

    def new_assumption(self) -> int:
        """A fresh activation literal for :meth:`add_implied` guards."""
        self._live_acts += 1
        return self.builder.new_var()

    def add_implied(self, act: int, formula: Term) -> None:
        """Assert ``act → formula``: active only while *act* is assumed."""
        lit = self.blaster.lit(formula)
        self.builder.add_clause([-act, lit])

    def retire(self, act: int) -> None:
        """Permanently deactivate *act*'s guarded constraints."""
        self._live_acts -= 1
        self.builder.add_clause([-act])

    # -- solving -------------------------------------------------------

    def check(self, formula: Optional[Term] = None,
              assumptions: Sequence[int] = (),
              conflict_limit: Optional[int] = None,
              deadline: Optional[float] = None) -> Result:
        """Decide *formula* (under *assumptions*) in this session.

        The formula's root literal is assumed, not asserted, so the
        call leaves only definitional clauses behind.  ``formula`` may
        be None to solve purely under activation-literal assumptions
        (the CEGIS synthesis step).
        """
        assumptions = list(assumptions)
        if formula is not None:
            if formula.is_true() and not assumptions:
                return Result(SAT, {})
            if formula.is_false():
                return Result(UNSAT)
            limit = self.ONE_SHOT_WEIGHT_LIMIT
            if not assumptions and \
                    T.encoding_weight(formula, limit) > limit:
                # dominant unique cone: route around the session (the
                # session builder never sees the formula, so it does not
                # pollute later queries' watch lists either)
                return check_sat(formula, conflict_limit=conflict_limit,
                                 deadline=deadline)
            assumptions.insert(0, self.blaster.lit(formula))
        self._sync()
        if formula is not None and self.checks > 0 and not self._live_acts:
            # independent query against the accumulated database: the
            # previous query's activity/phase state would mislead this
            # search (learned clauses stay — they are sound consequences)
            self.solver.scrub_heuristics()
        self.checks += 1
        solver = self.solver
        status = solver.solve(assumptions=assumptions,
                              conflict_limit=conflict_limit,
                              deadline=deadline)
        if status == SAT:
            model = self.blaster.extract_model(solver)
            stats = {"conflicts": solver.conflicts,
                     "decisions": solver.decisions}
            return Result(SAT, model, stats)
        if status == UNSAT:
            return Result(UNSAT, stats={"conflicts": solver.conflicts})
        return Result(UNKNOWN)


def check_sat(formula: Term, conflict_limit: Optional[int] = None,
              deadline: Optional[float] = None,
              session: Optional[IncrementalSession] = None) -> Result:
    """Decide a quantifier-free formula by bit-blasting + CDCL.

    ``deadline`` is a ``time.monotonic()`` timestamp after which the
    search gives up and reports "unknown" (wall-clock budget, in
    addition to the deterministic conflict budget).

    With a *session*, the query is posed incrementally: shared subterms
    reuse the session's existing encoding and the CDCL state carries
    over (the session's model may mention variables from earlier
    queries).  Without one, a fresh solver is built per call.

    Variables not mentioned in the formula after simplification do not
    appear in the returned model; callers needing totals should use
    :func:`complete_model`.
    """
    if session is not None:
        return session.check(formula, conflict_limit=conflict_limit,
                             deadline=deadline)
    if formula.is_true():
        return Result(SAT, {})
    if formula.is_false():
        return Result(UNSAT)
    bb = BitBlaster()
    bb.assert_formula(formula)
    solver = SatSolver(bb.builder.num_vars, conflict_limit=conflict_limit,
                       deadline=deadline)
    for clause in bb.builder.clauses:
        solver.add_clause(clause)
    status = solver.solve()
    if status == SAT:
        model = bb.extract_model(solver)
        stats = {"conflicts": solver.conflicts, "decisions": solver.decisions}
        return Result(SAT, model, stats)
    if status == UNSAT:
        return Result(UNSAT, stats={"conflicts": solver.conflicts})
    return Result(UNKNOWN)


def complete_model(model: Dict[Term, int], variables: Iterable[Term]) -> Dict[Term, int]:
    """Extend *model* with a default value (0) for missing variables."""
    out = dict(model)
    for v in variables:
        out.setdefault(v, 0)
    return out


def check_valid(formula: Term, conflict_limit: Optional[int] = None,
                deadline: Optional[float] = None) -> Result:
    """Check validity of a QF formula; a "sat" result carries a
    counterexample model (of the negation)."""
    return check_sat(T.not_(formula), conflict_limit=conflict_limit,
                     deadline=deadline)


def solve_exists_forall(
    outer_vars: Sequence[Term],
    inner_vars: Sequence[Term],
    phi: Term,
    conflict_limit: Optional[int] = None,
    max_rounds: int = 10_000,
    expansion_limit: int = 256,
    deadline: Optional[float] = None,
    session: Optional[IncrementalSession] = None,
) -> Result:
    """Decide ``∃ outer ∀ inner : phi``.

    Small universal domains (at most *expansion_limit* assignments) are
    eliminated by direct expansion — one quantifier-free query over the
    conjunction ``∧_u phi[inner := u]`` — which avoids the CEGIS worst
    case of walking the outer space one counterexample at a time (an
    8-bit undef variable would otherwise cost up to 256 solver rounds).
    Larger domains fall back to the CEGIS loop.

    With a *session*, every quantifier-free query runs incrementally in
    it, and the CEGIS loop becomes assumption-based: instantiations
    accumulate as activation-guarded clauses instead of re-encoding the
    growing conjunction from scratch each round; the guard is retired
    when the call returns, so nothing leaks into later queries.

    Returns a Result whose model (when sat) assigns the *outer* variables.
    ``inner_vars`` must be disjoint from ``outer_vars``; variables of
    *phi* outside both sets are treated as outer (existential).
    """
    if not inner_vars:
        return check_sat(phi, conflict_limit=conflict_limit,
                         deadline=deadline, session=session)
    if phi.is_false():
        return Result(UNSAT)

    # keep only inner variables that actually occur (deduplicated)
    free = T.free_vars(phi)
    inner_vars = [v for v in dict.fromkeys(inner_vars) if v in free]
    if not inner_vars:
        return check_sat(phi, conflict_limit=conflict_limit,
                         deadline=deadline, session=session)

    from .brute import domain_size

    if domain_size(inner_vars) <= expansion_limit:
        expanded = T.and_(
            *[
                T.substitute(phi, dict(zip(inner_vars, combo)))
                for combo in _inner_combos(inner_vars)
            ]
        )
        return check_sat(expanded, conflict_limit=conflict_limit,
                         deadline=deadline, session=session)

    inner_set = set(inner_vars)
    rounds = 0
    # seed with one instantiation: all-zero inner assignment
    seed = {v: _zero_of(v) for v in inner_vars}
    act = None
    synth_constraint = T.TRUE
    if session is not None:
        act = session.new_assumption()
        session.add_implied(act, T.substitute(phi, seed))
    else:
        synth_constraint = T.and_(synth_constraint,
                                  T.substitute(phi, seed))

    import time as _time

    try:
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise SolverError(
                    "CEGIS did not converge in %d rounds" % max_rounds)
            if deadline is not None and _time.monotonic() >= deadline:
                return Result(UNKNOWN)
            if session is not None:
                cand = session.check(None, [act],
                                     conflict_limit=conflict_limit,
                                     deadline=deadline)
            else:
                cand = check_sat(synth_constraint,
                                 conflict_limit=conflict_limit,
                                 deadline=deadline)
            if cand.status == UNKNOWN:
                return Result(UNKNOWN)
            if cand.is_unsat():
                return Result(UNSAT, stats={"cegis_rounds": rounds})
            # candidate assignment for the outer variables (default
            # missing to 0)
            outer_model = {}
            for v in T.free_vars(phi):
                if v not in inner_set:
                    outer_model[v] = cand.model.get(v, 0)
            for v in outer_vars:
                outer_model.setdefault(v, cand.model.get(v, 0))
            # verify: ∀ inner phi[outer := candidate] ?
            grounded = T.substitute(
                phi, {v: _const_of(v, val) for v, val in outer_model.items()}
            )
            cex = check_sat(T.not_(grounded), conflict_limit=conflict_limit,
                            deadline=deadline, session=session)
            if cex.status == UNKNOWN:
                return Result(UNKNOWN)
            if cex.is_unsat():
                return Result(SAT, outer_model,
                              stats={"cegis_rounds": rounds})
            # block: add the instantiation phi[inner := cex values]
            inst = {
                v: _const_of(v, cex.model.get(v, 0)) for v in inner_vars
            }
            if session is not None:
                session.add_implied(act, T.substitute(phi, inst))
            else:
                synth_constraint = T.and_(synth_constraint,
                                          T.substitute(phi, inst))
    finally:
        if act is not None:
            session.retire(act)


def _inner_combos(inner_vars: Sequence[Term]):
    """All assignments to *inner_vars* as tuples of constant terms."""
    import itertools

    domains = []
    for v in inner_vars:
        if is_bool(v.sort):
            domains.append((T.FALSE, T.TRUE))
        else:
            w = v.sort.width
            domains.append(tuple(T.bv_const(i, w) for i in range(1 << w)))
    return itertools.product(*domains)


def _zero_of(v: Term) -> Term:
    if is_bool(v.sort):
        return T.FALSE
    return T.bv_const(0, v.sort.width)


def _const_of(v: Term, value: int) -> Term:
    if is_bool(v.sort):
        return T.bool_const(bool(value))
    return T.bv_const(value, v.sort.width)


def enumerate_models(
    formula: Term,
    project_vars: Sequence[Term],
    limit: int = 100_000,
    conflict_limit: Optional[int] = None,
):
    """Yield all models of *formula* projected onto *project_vars*.

    Implements the iterative strengthening loop from the paper (§3.2):
    solve, block the model's projection, repeat until unsat.  Used for
    type enumeration cross-checks and attribute inference.
    """
    remaining = formula
    produced = 0
    while produced < limit:
        res = check_sat(remaining, conflict_limit=conflict_limit)
        if res.status == UNKNOWN:
            raise SolverError("model enumeration hit the solver budget")
        if res.is_unsat():
            return
        proj = {v: res.model.get(v, 0) for v in project_vars}
        yield proj
        produced += 1
        block = T.or_(
            *[T.ne(v, _const_of(v, val)) for v, val in proj.items()]
        )
        if block.is_false():
            return  # no projection vars: single model
        remaining = T.and_(remaining, block)


def model_evaluates(formula: Term, model: Dict[Term, int]) -> bool:
    """Check that *model* satisfies *formula* (total over its free vars)."""
    full = complete_model(model, T.free_vars(formula))
    return bool(evaluate(formula, full))
