"""Mining-stage units: lifting workload IR into abstract templates."""

from repro.discover.harvest import build_samples
from repro.discover.mine import lift_instruction, mine_candidate_stubs
from repro.ir.module import MArg, MConst, MFunction
from repro.workload import WorkloadConfig, generate_module

SAMPLES = build_samples(0)


def _fn(width=8):
    return MFunction("f", [MArg("%a", width), MArg("%b", width)])


class TestLift:
    def test_canonical_renaming_by_first_occurrence(self):
        fn = _fn()
        inst = fn.add("sub", [fn.args[1], fn.args[0]], 8)
        e = lift_instruction(inst, SAMPLES)
        # the first operand seen becomes %x regardless of its IR name
        assert e.key == "(sub %x %y)"

    def test_repeated_value_maps_to_one_leaf(self):
        fn = _fn()
        inst = fn.add("sub", [fn.args[0], fn.args[0]], 8)
        assert lift_instruction(inst, SAMPLES).key == "(sub %x %x)"

    def test_small_literals_stay_literal(self):
        fn = _fn()
        for value, rendered in ((0, "0"), (1, "1"), (2, "2"), (255, "-1")):
            inst = fn.add("add", [fn.args[0], MConst(value, 8)], 8)
            e = lift_instruction(inst, SAMPLES)
            assert e.key == "(add %%x %s)" % rendered

    def test_other_constants_abstract_to_symbols(self):
        fn = _fn()
        inst = fn.add("and", [fn.args[0], MConst(0x3C, 8)], 8)
        assert lift_instruction(inst, SAMPLES).key == "(and %x C1)"

    def test_same_constant_same_symbol(self):
        fn = _fn()
        a = fn.add("and", [fn.args[0], MConst(12, 8)], 8)
        inst = fn.add("or", [a, MConst(12, 8)], 8)
        assert lift_instruction(inst, SAMPLES).key == "(or (and %x C1) C1)"

    def test_non_binop_roots_are_skipped(self):
        fn = _fn()
        inst = fn.add("icmp", [fn.args[0], fn.args[1]], 1, cond="eq")
        assert lift_instruction(inst, SAMPLES) is None

    def test_non_binop_operands_become_opaque_inputs(self):
        fn = _fn(16)
        narrow = MFunction("g", [MArg("%n", 8)])
        ext = fn.add("zext", [narrow.args[0]], 16)
        inst = fn.add("add", [ext, fn.args[0]], 16)
        assert lift_instruction(inst, SAMPLES).key == "(add %x %y)"

    def test_budget_truncates_to_opaque_inputs(self):
        fn = _fn()
        deep = fn.args[0]
        for _ in range(5):
            deep = fn.add("add", [deep, fn.args[1]], 8)
        e = lift_instruction(deep, SAMPLES, max_insts=2)
        assert e is not None and e.size <= 2


class TestMineModule:
    def test_deterministic(self):
        cfg = WorkloadConfig(seed=5, functions=10)
        a = mine_candidate_stubs(generate_module(cfg), SAMPLES)
        b = mine_candidate_stubs(generate_module(cfg), SAMPLES)
        assert [(c.src.key, c.occurrences) for c in a] == \
               [(c.src.key, c.occurrences) for c in b]

    def test_counts_occurrences_and_sorts_by_them(self):
        module = generate_module(WorkloadConfig(seed=5, functions=20))
        stubs = mine_candidate_stubs(module, SAMPLES)
        assert stubs
        counts = [c.occurrences for c in stubs]
        assert counts == sorted(counts, reverse=True)
        assert counts[0] > 1  # the workload mix repeats its patterns
        for c in stubs:
            assert c.origin == "mined"
