"""The Alive language: AST, constant expressions, predicates, parser.

This package implements the language layer of the paper (§2): the
instruction syntax of Figure 1, the constant-expression sublanguage, the
built-in precondition predicates, and the scoping rules.  The concrete
(mutable) IR that the peephole optimizer rewrites lives in
:mod:`repro.ir.module`.
"""

from .ast import (
    AliveError,
    Alloca,
    BinOp,
    ConstantSymbol,
    ConvOp,
    Copy,
    FBinOp,
    FCmp,
    FPLiteral,
    GEP,
    ICmp,
    Input,
    Instruction,
    Literal,
    Load,
    ScopeError,
    Select,
    Store,
    Transformation,
    UndefValue,
    Unreachable,
    Value,
)
from .constexpr import ConstExpr, eval_constexpr, is_constant_value
from .parser import ParseError, parse_transformation, parse_transformations
from .precond import (
    PredAnd,
    PredCall,
    PredCmp,
    PredNot,
    PredOr,
    PredTrue,
    Predicate,
)
from .printer import instruction_str, transformation_str

__all__ = [
    "AliveError",
    "ScopeError",
    "ParseError",
    "Value",
    "Input",
    "ConstantSymbol",
    "Literal",
    "UndefValue",
    "Instruction",
    "BinOp",
    "FBinOp",
    "FCmp",
    "FPLiteral",
    "ICmp",
    "Select",
    "ConvOp",
    "Copy",
    "Alloca",
    "Load",
    "Store",
    "GEP",
    "Unreachable",
    "Transformation",
    "ConstExpr",
    "eval_constexpr",
    "is_constant_value",
    "Predicate",
    "PredTrue",
    "PredNot",
    "PredAnd",
    "PredOr",
    "PredCmp",
    "PredCall",
    "parse_transformation",
    "parse_transformations",
    "instruction_str",
    "transformation_str",
]
