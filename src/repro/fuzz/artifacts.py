"""Fuzzing artifacts: serialization, the regression corpus, replay.

A :class:`Artifact` freezes everything needed to re-run one fuzz
finding deterministically: the kind of check that disagreed, the
campaign seed and iteration that produced it, and the (shrunk) input —
a term serialized as a raw JSON tree, or a rule as its surface text.

Terms are reconstructed with the *raw* ``Term`` constructor rather than
the smart constructors: the smart constructors fold and canonicalize,
which would silently repair exactly the kind of malformed-but-consed
shapes a bug report needs to preserve.

Artifacts are JSON files named by content hash, so re-finding a known
bug is idempotent; ``tests/fuzz/corpus/`` keeps one file per fixed bug
and the test suite replays them all (a regression = a replay that
reports a disagreement again).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from typing import Dict, List, Optional

from ..smt import terms as T
from ..smt.sorts import BOOL, BitVecSort, Sort, is_bool
from ..smt.terms import Term


def term_to_tree(term: Term) -> dict:
    """Serialize a term as a nested JSON-compatible tree."""
    sort = ("bool" if is_bool(term.sort) else term.sort.width)
    data = term.data
    if isinstance(data, tuple):
        data = {"tuple": list(data)}
    return {
        "op": term.op,
        "sort": sort,
        "data": data,
        "args": [term_to_tree(a) for a in term.args],
    }


def term_from_tree(tree: dict) -> Term:
    """Reconstruct a term exactly (no smart-constructor folding)."""
    sort: Sort = BOOL if tree["sort"] == "bool" else BitVecSort(tree["sort"])
    data = tree["data"]
    if isinstance(data, dict) and "tuple" in data:
        data = tuple(data["tuple"])
    args = tuple(term_from_tree(a) for a in tree["args"])
    return Term(tree["op"], sort, args, data)


class Artifact:
    """One frozen fuzz finding (or its fixed-regression descendant).

    Attributes:
        kind: "term", "ef", "rule", "interp" or "fp" — selects the
            replay oracle.
        check: the disagreement check that fired (e.g. "sat-status").
        seed / iteration: campaign coordinates for reproduction.
        data: kind-specific payload:
            term   — {"term": tree}
            ef     — {"phi": tree, "outer": [names], "inner": [names]}
            rule   — {"text": surface_syntax}
            interp — {"workload_seed": int}
            fp     — {"program": tree, "inputs": [{arg: bits}]} or
                     {"fp_seed": int}
            plus optional free-form context ("model", "inputs", "note").
    """

    KINDS = ("term", "ef", "rule", "interp", "fp")

    def __init__(self, kind: str, check: str, seed: int, iteration: int,
                 data: Dict):
        if kind not in self.KINDS:
            raise ValueError("unknown artifact kind %r" % kind)
        self.kind = kind
        self.check = check
        self.seed = seed
        self.iteration = iteration
        self.data = dict(data)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "check": self.check,
            "seed": self.seed,
            "iteration": self.iteration,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Artifact":
        return cls(
            kind=data["kind"],
            check=data["check"],
            seed=data["seed"],
            iteration=data["iteration"],
            data=data["data"],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Artifact":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Content hash (stable across runs, used for filenames)."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()[:12]

    def filename(self) -> str:
        return "fuzz-%s-%s.json" % (self.kind, self.digest())

    def __eq__(self, other) -> bool:
        if not isinstance(other, Artifact):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __repr__(self) -> str:
        return "Artifact(%s/%s, seed=%d, it=%d)" % (
            self.kind, self.check, self.seed, self.iteration)


def save_artifact(directory: str, artifact: Artifact) -> str:
    """Write one artifact into *directory*; returns its path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, artifact.filename())
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(artifact.to_json() + "\n")
    return path


def load_corpus(directory: str) -> List[Artifact]:
    """Load every ``*.json`` artifact under *directory*, sorted by name."""
    if not os.path.isdir(directory):
        return []
    out: List[Artifact] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), encoding="utf-8") as fh:
            out.append(Artifact.from_json(fh.read()))
    return out


def replay_artifact(artifact: Artifact, config=None,
                    samples: int = 8) -> List:
    """Re-run the oracle an artifact was found by.

    Returns the (hopefully empty) list of
    :class:`~repro.fuzz.oracles.Disagreement` records: a non-empty
    result from a corpus replay means a fixed bug has regressed.
    """
    from ..core.config import Config
    from .oracles import check_ef, check_formula, check_interp, check_rule

    if artifact.kind == "term":
        term = term_from_tree(artifact.data["term"])
        return check_formula(term)
    if artifact.kind == "interp":
        return check_interp(artifact.data["workload_seed"])
    if artifact.kind == "fp":
        from .fpgen import check_fp_function, function_from_tree
        from .oracles import check_fp

        if "program" in artifact.data:
            fn = function_from_tree(artifact.data["program"])
            return check_fp_function(
                fn, [dict(d) for d in artifact.data["inputs"]])
        return check_fp(artifact.data["fp_seed"])
    if artifact.kind == "ef":
        phi = term_from_tree(artifact.data["phi"])
        by_name = {v.data: v for v in T.free_vars(phi)}
        outer = [by_name[n] for n in artifact.data["outer"] if n in by_name]
        inner = [by_name[n] for n in artifact.data["inner"] if n in by_name]
        return check_ef(outer, inner, phi)
    # rule
    from ..ir import parse_transformations

    if config is None:
        config = Config(max_width=4, prefer_widths=(4,),
                        max_type_assignments=4)
    t = parse_transformations(artifact.data["text"])[0]
    rng = random.Random(artifact.seed)
    return check_rule(t, config, rng, samples=samples)
