"""Memory model tests (paper §3.3): the eager Ackermannized encoding,
alloca constraints, sequence points, and correctness condition 4."""

import pytest

from repro.core import Config, verify
from repro.ir import parse_transformation

CFG = Config(max_width=4, prefer_widths=(4,), ptr_width=8,
             max_type_assignments=3)


def v(text):
    return verify(parse_transformation(text), CFG)


class TestValidMemoryOpts:
    def test_store_to_load_forwarding(self):
        assert v("""
        store %v, %p
        %r = load %p
        =>
        store %v, %p
        %r = %v
        """).status == "valid"

    def test_load_load_cse(self):
        assert v("""
        %a = load %p
        %r = load %p
        =>
        %a = load %p
        %r = %a
        """).status == "valid"

    def test_dead_store_elimination(self):
        assert v("""
        store %v, %p
        store %w, %p
        =>
        store %w, %p
        """).status == "valid"

    def test_alloca_forwarding(self):
        assert v("""
        %p = alloca i8
        store %v, %p
        %r = load %p
        =>
        %p = alloca i8
        store %v, %p
        %r = %v
        """).status == "valid"

    def test_gep_zero_identity(self):
        assert v("""
        %q = getelementptr %p, 0
        %r = load %q
        =>
        %r = load %p
        """).status == "valid"

    def test_reorder_across_sequence_points_rejected(self):
        # p and p+1 never alias, but stores are sequence points: if the
        # second store is UB (q = null) the source still performed the
        # first one — the paper's "limited reordering" rule (§3.3.1)
        assert v("""
        %q = getelementptr %p, 1
        store %v, %p
        store %w, %q
        =>
        %q = getelementptr %p, 1
        store %w, %q
        store %v, %p
        """).status == "invalid"


class TestInvalidMemoryOpts:
    def test_dropping_a_store_is_unsound(self):
        r = v("""
        store %v, %p
        store %w, %q
        =>
        store %w, %q
        """)
        assert r.status == "invalid"

    def test_keeping_wrong_store(self):
        r = v("""
        store %v, %p
        store %w, %p
        =>
        store %v, %p
        """)
        assert r.status == "invalid"
        assert "memory" in r.detail

    def test_store_forward_across_unknown_store_unsound(self):
        # an intervening store to a possibly-aliasing pointer kills
        # forwarding
        r = v("""
        store %v, %p
        store %w, %q
        %r = load %p
        =>
        store %v, %p
        store %w, %q
        %r = %v
        """)
        assert r.status == "invalid"

    def test_reordering_potentially_aliasing_stores(self):
        r = v("""
        store %v, %p
        store %w, %q
        =>
        store %w, %q
        store %v, %p
        """)
        assert r.status == "invalid"

    def test_load_does_not_equal_other_pointer(self):
        r = v("""
        store %v, %p
        %r = load %q
        =>
        store %v, %p
        %r = %v
        """)
        assert r.status == "invalid"


class TestAllocaProperties:
    def test_alloca_pointers_do_not_alias_inputs(self):
        # a store through a fresh alloca cannot clobber *p
        assert v("""
        %a = alloca i8
        store %v, %a
        %r = load %p
        =>
        %a = alloca i8
        store %v, %a
        %r = load %p
        """).status == "valid"

    def test_two_allocas_do_not_alias(self):
        assert v("""
        %a = alloca i8
        %b = alloca i8
        store %v, %a
        store %w, %b
        %r = load %a
        =>
        %a = alloca i8
        %b = alloca i8
        store %v, %a
        store %w, %b
        %r = %v
        """).status == "valid"

    def test_uninitialized_load_is_undef(self):
        # reading fresh memory gives undef, which refines to any value...
        # but only with the ∃ on the source side: replacing a load of
        # uninitialized memory by 0 is sound
        assert v("""
        %p = alloca i8
        %r = load %p
        =>
        %p = alloca i8
        %r = 0
        """).status == "valid"

    def test_constant_is_not_undef(self):
        # the reverse direction must fail: 0 cannot become undef
        r = v("""
        %p = alloca i8
        %r = %x
        =>
        %p = alloca i8
        %r = load %p
        """)
        assert r.status == "invalid"
