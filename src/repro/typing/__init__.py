"""Type system substrate: Alive's types, constraints, and enumeration.

Implements the polymorphic type abstraction of the Alive language
(paper §2.2, Figure 3) and the feasible-type enumeration of §3.2.
"""

from .constraints import ConstraintSystem, TypeConstraintError
from .enumerate import (
    count_assignments,
    enumerate_assignments,
    first_assignment,
    preferred_widths,
)
from .types import (
    VOID,
    ArrayType,
    IntType,
    PointerType,
    Type,
    TypeContext,
    VoidType,
    is_array,
    is_first_class,
    is_int,
    is_pointer,
    smaller,
)

__all__ = [
    "ConstraintSystem",
    "TypeConstraintError",
    "enumerate_assignments",
    "first_assignment",
    "count_assignments",
    "preferred_widths",
    "Type",
    "IntType",
    "PointerType",
    "ArrayType",
    "VoidType",
    "VOID",
    "TypeContext",
    "is_int",
    "is_pointer",
    "is_array",
    "is_first_class",
    "smaller",
]
