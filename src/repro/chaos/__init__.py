"""``repro.chaos`` — deterministic fault injection for the whole stack.

The paper's thesis is that optimization correctness must be *checked*,
not trusted; this package applies the same standard to the machinery
doing the checking.  A seeded :class:`FaultPlan` injects worker
crashes, hangs, OOM kills, torn and corrupted cache writes, dispatch
errors and driver kills at named sites threaded through
:mod:`repro.engine`, :mod:`repro.engine.cache` and :mod:`repro.serve`;
:mod:`repro.chaos.clients` adds the attacks that arrive over the wire
(malformed frames, oversize frames, slowloris).  ``tests/chaos`` is
the suite every robustness claim in README's "Failure model" section
is verified against, and the CI chaos-smoke job replays a fixed plan
on every push.

Usage::

    from repro import chaos
    plan = chaos.FaultPlan([
        chaos.FaultSpec("engine.worker.run", chaos.KIND_CRASH,
                        times=[0, 5]),
        chaos.FaultSpec("cache.append", chaos.KIND_TORN, times=[1]),
    ], seed=7)
    with chaos.active_plan(plan):
        run_batch(corpus, config, jobs=4, cache=cache)

or, for a CLI process, ``ALIVE_REPRO_CHAOS=plan.json`` /
``--chaos plan.json`` (and ``ALIVE_REPRO_CHAOS_LOG=chaos.log`` to
record every firing).
"""

from .plan import (CHAOS_ENV, CHAOS_LOG_ENV, KIND_CORRUPT, KIND_CRASH,
                   KIND_DELAY, KIND_ERROR, KIND_HANG, KIND_KILL, KIND_OOM,
                   KIND_POISON, KIND_TORN, KINDS, FaultPlan, FaultSpec,
                   InjectedKill, WorkerCrash, active, active_plan,
                   execute_worker_fault, fire, install, install_from_env,
                   mangle_record, payload_fault, register_poison_target,
                   uninstall)

__all__ = [
    "CHAOS_ENV",
    "CHAOS_LOG_ENV",
    "FaultPlan",
    "FaultSpec",
    "InjectedKill",
    "KINDS",
    "KIND_CORRUPT",
    "KIND_CRASH",
    "KIND_DELAY",
    "KIND_ERROR",
    "KIND_HANG",
    "KIND_KILL",
    "KIND_OOM",
    "KIND_POISON",
    "KIND_TORN",
    "WorkerCrash",
    "active",
    "active_plan",
    "execute_worker_fault",
    "fire",
    "install",
    "install_from_env",
    "mangle_record",
    "payload_fault",
    "register_poison_target",
    "uninstall",
]
