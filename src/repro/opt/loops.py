"""Detection of non-terminating rewrite cycles.

InstCombine famously has (had) rule pairs that undo each other, making
the pass ping-pong forever; detecting such cycles became a follow-up
research line for the Alive authors ("alive-loops").  This module
implements the dynamic variant: instantiate each optimization's source
template with concrete arguments and sampled constants, run the entire
rule set to (attempted) fixpoint, and flag instances where the pass
fails to converge.

Soundness of the *verifier* is unaffected by cycles — each individual
rewrite is still correct — but a cyclic rule set makes the optimizer
non-terminating, which is a real deployment bug the paper's C++ output
would inherit.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import ast
from ..ir.module import MArg, MConst, MFunction
from .pass_manager import PeepholeOpt, PeepholePass


class InstantiationError(Exception):
    """The source template cannot be made concrete (e.g. undef)."""


def instantiate_source(
    t: ast.Transformation,
    width: int = 8,
    const_values: Optional[Dict[str, int]] = None,
    rng: Optional[random.Random] = None,
) -> MFunction:
    """Build a concrete function whose body is *t*'s source template.

    Inputs become arguments; abstract constants take values from
    *const_values* (or random ones).  All values use one width, so
    multi-width templates (zext/trunc) are rejected.
    """
    rng = rng or random.Random(0)
    const_values = const_values or {}
    fn = MFunction("inst_" + t.name.replace(":", "_").replace("-", "_"), [])
    built: Dict[int, object] = {}

    def build(v: ast.Value):
        if id(v) in built:
            return built[id(v)]
        result = None
        if isinstance(v, ast.Input):
            result = MArg(v.name, width)
            fn.args.append(result)
        elif isinstance(v, ast.ConstantSymbol):
            value = const_values.get(v.name, rng.randrange(1 << width))
            result = MConst(value, width)
        elif isinstance(v, ast.Literal):
            result = MConst(v.value, width)
        elif isinstance(v, ast.BinOp):
            result = fn.add(v.opcode, [build(v.a), build(v.b)], width,
                            flags=v.flags)
        elif isinstance(v, ast.ICmp):
            result = fn.add("icmp", [build(v.a), build(v.b)], 1, cond=v.cond)
        elif isinstance(v, ast.Select):
            a, b = build(v.a), build(v.b)
            result = fn.add("select", [build(v.c), a, b], a.width)
        elif isinstance(v, ast.Copy):
            result = build(v.x)
        else:
            raise InstantiationError(
                "cannot instantiate %r concretely" % (v,)
            )
        built[id(v)] = result
        return result

    # widths: treat i1-typed values (icmp results and their users)
    # properly by building bottom-up through the root
    root = t.src[t.root]
    try:
        fn.ret = build(root)
    except ValueError as e:
        raise InstantiationError(str(e))
    return fn


class CycleReport:
    """One detected non-convergence: the seed instance and the rules that
    kept firing in the last rounds."""

    def __init__(self, opt_name: str, const_values: Dict[str, int],
                 spinning_rules: List[str], fired: int):
        self.opt_name = opt_name
        self.const_values = const_values
        self.spinning_rules = spinning_rules
        self.fired = fired

    def describe(self) -> str:
        consts = ", ".join(
            "%s=%d" % (k, v) for k, v in sorted(self.const_values.items())
        ) or "no constants"
        return "cycle seeded by %s (%s): rules %s fired %d times without converging" % (
            self.opt_name, consts, ", ".join(sorted(set(self.spinning_rules))),
            self.fired,
        )


def detect_cycles(
    opts: Sequence[PeepholeOpt],
    width: int = 8,
    samples_per_opt: int = 3,
    spin_limit: int = 64,
    seed: int = 0,
) -> List[CycleReport]:
    """Search for rewrite cycles in a rule set.

    For every optimization, instantiate its source template a few times
    and drive the whole rule set; if more than *spin_limit* rewrites fire
    on a template-sized function, the set is (almost certainly) cycling.
    """
    rng = random.Random(seed)
    reports: List[CycleReport] = []
    for opt in opts:
        for _ in range(samples_per_opt):
            const_values = {
                v.name: rng.randrange(1 << width)
                for v in opt.transformation.inputs()
                if isinstance(v, ast.ConstantSymbol)
            }
            try:
                fn = instantiate_source(opt.transformation, width,
                                        const_values, rng)
            except InstantiationError:
                break
            pass_ = PeepholePass(list(opts), max_iterations=spin_limit)
            fired = pass_.run_function(fn)
            if fired >= spin_limit:
                spinning = [name for name, _ in pass_.stats.sorted_counts()[:4]]
                reports.append(
                    CycleReport(opt.name, const_values, spinning, fired)
                )
                break
    return reports
