"""Rule discovery: funnel throughput, cold vs. warm cache, 1 vs. N workers.

The discovery pipeline routes candidate verification through the same
engine scheduler and persistent cache as ``verify-batch``, so a warm
re-run (same seed, populated cache) should collapse the verification
stage to pure cache replay while emitting a byte-identical ``.opt``
file.  This benchmark measures the funnel — expressions enumerated and
templates mined per second, candidates verified per second — across
cache temperatures and worker counts, and emits a machine-readable
``BENCH_discover.json`` artifact alongside the text results.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from repro.core import Config
from repro.discover import DiscoverOptions, run_discovery
from repro.engine import ResultCache

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_discover.json")

#: CLI-default verification knobs so the cache interoperates with
#: `repro discover` and `repro verify-batch` runs
CONFIG = Config()


def _options(jobs: int) -> DiscoverOptions:
    return DiscoverOptions(seed=0, max_insts=3, max_candidates=96,
                           max_salvage=2, jobs=jobs)


def _run(jobs: int, cache):
    start = time.perf_counter()
    report = run_discovery(_options(jobs), CONFIG, cache=cache)
    elapsed = time.perf_counter() - start
    funnel = dict(report.funnel)
    harvested = funnel.get("enumerated_exprs", 0) + funnel.get(
        "mined_templates", 0)
    return {
        "elapsed": elapsed,
        "funnel": funnel,
        "harvested_per_sec": harvested / elapsed if elapsed else 0.0,
        "verified_per_sec": (
            funnel.get("selected", 0) / elapsed if elapsed else 0.0),
        "opt_sha": hash(report.opt_text) & 0xFFFFFFFF,
        "opt_text": report.opt_text,
        "stats": report.stats.to_dict(),
    }


def run_scenarios(tmp_dir):
    workers = max(2, min(4, multiprocessing.cpu_count()))
    cache_path = os.path.join(tmp_dir, "cache.jsonl")

    def cache():
        return ResultCache(cache_path)

    rows = {}
    rows["cold_1_worker"] = _run(1, None)
    rows["cold_%d_workers" % workers] = _run(workers, cache())
    rows["warm_%d_workers" % workers] = _run(workers, cache())
    rows["warm_1_worker"] = _run(1, cache())
    return workers, rows


def test_discover(benchmark, report, tmp_path):
    workers, rows = benchmark.pedantic(
        run_scenarios, args=(str(tmp_path),), iterations=1, rounds=1
    )

    cold = rows["cold_1_worker"]
    warm_par = rows["warm_%d_workers" % workers]

    report("repro.discover — rule discovery funnel throughput")
    report("")
    funnel = cold["funnel"]
    report("funnel: %s" % " ".join(
        "%s=%d" % (key, funnel[key]) for key in sorted(funnel)))
    report("")
    report("%-18s %10s %12s %12s %10s" % (
        "scenario", "seconds", "harvest/s", "verify/s", "jobs run"))
    report("-" * 68)
    for label, row in rows.items():
        report("%-18s %10.2f %12.0f %12.1f %10d" % (
            label, row["elapsed"], row["harvested_per_sec"],
            row["verified_per_sec"], row["stats"]["jobs_executed"]))
    report("")
    warm_elapsed = warm_par["elapsed"]
    report("warm/%d-workers speedup over cold/sequential: %.1fx"
           % (workers, cold["elapsed"] / warm_elapsed
              if warm_elapsed > 0 else 0.0))

    # byte-identical emission regardless of parallelism or cache
    texts = {label: row["opt_text"] for label, row in rows.items()}
    assert len(set(texts.values())) == 1, {
        label: row["opt_sha"] for label, row in rows.items()}
    # a warm run's verification stage is served entirely from the cache
    assert rows["warm_1_worker"]["stats"]["jobs_executed"] == 0

    os.makedirs(RESULTS_DIR, exist_ok=True)
    artifact_rows = {
        label: {key: value for key, value in row.items()
                if key != "opt_text"}
        for label, row in rows.items()
    }
    with open(ARTIFACT, "w") as handle:
        json.dump({"workers": workers, "rows": artifact_rows},
                  handle, indent=2, sort_keys=True)
        handle.write("\n")
