"""The serving layer's cluster-facing surface.

``jobs`` (forwarded chunk resolution), ``cache_put`` (replica
installation), the extended ``/healthz`` document and the labeled
``/metrics`` families — everything a :class:`ClusterCoordinator`
relies a node to provide, tested against a real server.
"""

from repro.engine import ResultCache, plan_transformation
from repro.engine.cache import record_crc, semantics_fingerprint
from repro.ir import parse_transformation

from .conftest import GOOD, BAD, TEST_CONFIG


def payloads_for(text, name="t"):
    plan = plan_transformation(parse_transformation(text, name),
                               TEST_CONFIG, semantics_fingerprint())
    return [job.payload() for job in plan.jobs]


def entry_for(key, outcome, fingerprint):
    """A wire-shape replica entry, exactly as a coordinator ships it."""
    record = {k: v for k, v in outcome.items()
              if k not in ("key", "elapsed")}
    entry = {"key": key, "fingerprint": fingerprint, "outcome": record,
             "elapsed": 0.0, "name": ""}
    entry["crc"] = record_crc(entry)
    return entry


class TestJobsOp:
    def test_resolves_forwarded_payloads(self, make_server):
        harness = make_server()
        payloads = payloads_for(GOOD) + payloads_for(BAD, "u")
        with harness.client() as client:
            response = client.request_jobs(payloads, shard="n0")
        assert response["ok"] is True
        assert set(response["outcomes"]) == {p["key"] for p in payloads}
        for outcome in response["outcomes"].values():
            assert "status" in outcome
        assert response["stats"]["jobs"] == len(
            {p["key"] for p in payloads})

    def test_duplicate_keys_coalesce(self, make_server):
        harness = make_server()
        payloads = payloads_for(GOOD)
        with harness.client() as client:
            response = client.request_jobs(payloads + payloads)
        assert response["ok"] is True
        assert response["stats"]["jobs"] == len(
            {p["key"] for p in payloads})

    def test_cache_fast_path_is_counted(self, make_server, tmp_path):
        cache = ResultCache(str(tmp_path / "cache.jsonl"),
                            fingerprint=semantics_fingerprint())
        harness = make_server(cache=cache)
        payloads = payloads_for(GOOD)
        with harness.client() as client:
            cold = client.request_jobs(payloads)
            warm = client.request_jobs(payloads)
        assert cold["stats"]["cache_hits"] == 0
        assert warm["stats"]["cache_hits"] == len(payloads)
        # same verdicts, modulo transport extras (key/elapsed) that
        # the cache-served form does not re-attach
        assert ({key: outcome["status"]
                 for key, outcome in warm["outcomes"].items()}
                == {key: outcome["status"]
                    for key, outcome in cold["outcomes"].items()})

    def test_malformed_jobs_rejected(self, make_server):
        harness = make_server()
        with harness.client() as client:
            response = client.request_jobs([{"key": "k"}])  # no text/knobs
        assert response.get("ok") is not True
        assert response["error"] == "bad_request"


class TestCachePutOp:
    def test_install_then_serve_from_cache(self, make_server, tmp_path):
        fingerprint = semantics_fingerprint()
        cache = ResultCache(str(tmp_path / "cache.jsonl"),
                            fingerprint=fingerprint)
        harness = make_server(cache=cache)
        payloads = payloads_for(GOOD)
        with harness.client() as client:
            outcomes = client.request_jobs(payloads)["outcomes"]
            entries = [entry_for(key, outcome, fingerprint)
                       for key, outcome in outcomes.items()]
            # re-installing what the node already has: accepted, no-op
            response = client.cache_put(entries)
            assert response["installed"] == len(entries)
            assert response["rejected"] == 0

    def test_install_into_cold_node(self, make_server, tmp_path):
        fingerprint = semantics_fingerprint()
        donor = make_server(cache=ResultCache(
            str(tmp_path / "donor.jsonl"), fingerprint=fingerprint))
        payloads = payloads_for(GOOD)
        with donor.client() as client:
            outcomes = client.request_jobs(payloads)["outcomes"]
        entries = [entry_for(key, outcome, fingerprint)
                   for key, outcome in outcomes.items()]

        cold = make_server(cache=ResultCache(
            str(tmp_path / "cold.jsonl"), fingerprint=fingerprint))
        with cold.client() as client:
            response = client.cache_put(entries)
            assert response["installed"] == len(entries)
            # the replica now serves those keys without verifying
            warm = client.request_jobs(payloads)
        assert warm["stats"]["cache_hits"] == len(entries)

    def test_corrupt_and_alien_entries_rejected(self, make_server,
                                                tmp_path):
        fingerprint = semantics_fingerprint()
        cache = ResultCache(str(tmp_path / "cache.jsonl"),
                            fingerprint=fingerprint)
        harness = make_server(cache=cache)
        good = entry_for("k" * 64, {"status": "valid"}, fingerprint)
        bad_crc = dict(good, crc=(good["crc"] ^ 0x1) & 0xFFFFFFFF)
        alien = entry_for("a" * 64, {"status": "valid"}, "other-semantics")
        transient = entry_for(
            "t" * 64, {"status": "unknown", "transient": True}, fingerprint)
        with harness.client() as client:
            response = client.cache_put(
                [good, bad_crc, alien, transient, "not-a-dict"])
        assert response["installed"] == 1
        assert response["rejected"] == 4
        assert cache.get("k" * 64) is not None
        assert cache.get("a" * 64) is None
        assert cache.get("t" * 64) is None

    def test_cacheless_node_rejects_everything(self, make_server):
        harness = make_server()  # no cache configured
        entry = entry_for("k" * 64, {"status": "valid"},
                          semantics_fingerprint())
        with harness.client() as client:
            response = client.cache_put([entry])
        assert response["installed"] == 0
        assert response["rejected"] == 1


class TestHealthz:
    def test_reports_breaker_pool_and_generation(self, make_server):
        harness = make_server(node_id="n7")
        health = harness.client().healthz()
        assert health["status"] == "ok"
        assert health["breaker"] == "closed"
        assert health["node_id"] == "n7"
        assert health["generation"] == 0  # never joined a registry
        assert health["pool"]["workers"] >= 1
        for field in ("dispatches", "crashes", "timeouts"):
            assert field in health["pool"]


class TestLabeledMetrics:
    def test_node_label_on_every_sample(self, make_server):
        harness = make_server(node_id="n7")
        with harness.client() as client:
            client.request(GOOD)
            status, body = client.http_get("/metrics")
        assert status == 200
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            name = line.rpartition(" ")[0]
            assert 'node="n7"' in name, line

    def test_forward_and_hedge_counters_by_shard(self, make_server):
        harness = make_server(node_id="n7")
        payloads = payloads_for(GOOD)
        with harness.client() as client:
            client.request_jobs(payloads, shard="n7")
            client.request_jobs(payloads, shard="n7", hedged=True)
            values = client.metrics()
        # bare names resolve for labeled nodes (first-sample fallback)
        assert values["cluster_forwarded_total"] == 2.0
        assert values["cluster_hedged_total"] == 1.0
        assert values['cluster_forwarded_total{node="n7",shard="n7"}'] \
            == 2.0
        assert values['cluster_hedged_total{node="n7",shard="n7"}'] == 1.0

    def test_unlabeled_node_keeps_bare_families(self, make_server):
        harness = make_server()  # no node id, no labels
        with harness.client() as client:
            client.request(GOOD)
            values = client.metrics()
        assert values["serve_requests_total"] >= 1.0
        assert "cluster_forwarded_total" in values
        assert not any("node=" in name for name in values)
