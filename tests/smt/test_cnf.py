"""Truth-table tests for the Tseitin gate encodings."""

import itertools

import pytest

from repro.smt.cnf import CnfBuilder
from repro.smt.sat import SAT, UNSAT, SatSolver


def gate_truth_table(make_gate, arity):
    """Evaluate a gate under every input combination via the solver."""
    results = {}
    for values in itertools.product([False, True], repeat=arity):
        builder = CnfBuilder()
        inputs = builder.new_vars(arity)
        out = make_gate(builder, inputs)
        for lit, val in zip(inputs, values):
            builder.assert_lit(lit if val else -lit)
        solver = SatSolver(builder.num_vars)
        for clause in builder.clauses:
            solver.add_clause(clause)
        assert solver.solve() == SAT
        if out > 0:
            results[values] = solver.model_value(out)
        else:
            results[values] = not solver.model_value(-out)
    return results


class TestGates:
    def test_and(self):
        table = gate_truth_table(lambda b, ins: b.gate_and(ins), 3)
        for values, out in table.items():
            assert out == all(values)

    def test_or(self):
        table = gate_truth_table(lambda b, ins: b.gate_or(ins), 3)
        for values, out in table.items():
            assert out == any(values)

    def test_xor(self):
        table = gate_truth_table(lambda b, ins: b.gate_xor(*ins), 2)
        for values, out in table.items():
            assert out == (values[0] ^ values[1])

    def test_iff(self):
        table = gate_truth_table(lambda b, ins: b.gate_iff(*ins), 2)
        for values, out in table.items():
            assert out == (values[0] == values[1])

    def test_ite(self):
        table = gate_truth_table(lambda b, ins: b.gate_ite(*ins), 3)
        for (c, t, e), out in table.items():
            assert out == (t if c else e)

    def test_full_adder(self):
        for values in itertools.product([False, True], repeat=3):
            builder = CnfBuilder()
            a, b, cin = builder.new_vars(3)
            s, cout = builder.gate_full_adder(a, b, cin)
            for lit, val in zip((a, b, cin), values):
                builder.assert_lit(lit if val else -lit)
            solver = SatSolver(builder.num_vars)
            for clause in builder.clauses:
                solver.add_clause(clause)
            assert solver.solve() == SAT

            def value(lit):
                if lit > 0:
                    return solver.model_value(lit)
                return not solver.model_value(-lit)

            total = sum(values)
            assert value(s) == bool(total & 1)
            assert value(cout) == (total >= 2)


class TestGateSimplification:
    def test_and_constant_folding(self):
        b = CnfBuilder()
        x = b.new_var()
        assert b.gate_and([x, b.true_lit]) == x
        assert b.gate_and([x, b.false_lit]) == b.false_lit
        assert b.gate_and([]) == b.true_lit

    def test_xor_with_constants(self):
        b = CnfBuilder()
        x = b.new_var()
        assert b.gate_xor(x, b.false_lit) == x
        assert b.gate_xor(x, b.true_lit) == -x
        assert b.gate_xor(x, x) == b.false_lit
        assert b.gate_xor(x, -x) == b.true_lit

    def test_ite_collapses(self):
        b = CnfBuilder()
        c, x, y = b.new_vars(3)
        assert b.gate_ite(b.true_lit, x, y) == x
        assert b.gate_ite(b.false_lit, x, y) == y
        assert b.gate_ite(c, x, x) == x
        assert b.gate_ite(c, b.true_lit, b.false_lit) == c

    def test_tautology_clause_dropped(self):
        b = CnfBuilder()
        x = b.new_var()
        before = len(b.clauses)
        b.add_clause([x, -x])
        assert len(b.clauses) == before

    def test_true_lit_asserted(self):
        b = CnfBuilder()
        solver = SatSolver(b.num_vars)
        for clause in b.clauses:
            solver.add_clause(clause)
        assert solver.solve() == SAT
        assert solver.model_value(b.true_lit)
