"""``repro.engine`` — parallel batch verification with a persistent cache.

The paper's workflow is batch-shaped: Alive verified 334 InstCombine
transformations, each fanned out over many feasible type assignments
(§3.2, §6).  This subsystem decomposes such a corpus into independent
per-type-assignment refinement jobs (:mod:`.jobs`), runs them across a
``multiprocessing`` worker pool with timeouts and bounded retries
(:mod:`.scheduler`), replays previously-computed verdicts from a
persistent content-addressed cache (:mod:`.cache`), and reassembles the
per-job outcomes into the exact :class:`~repro.core.verifier.
VerificationResult` values the sequential driver would have produced.

Equivalence with :func:`repro.core.verifier.verify` is by construction:
decomposition and aggregation share the driver's own hooks
(:func:`~repro.core.verifier.decompose` and
:class:`~repro.core.verifier.ResultBuilder`), and outcomes are fed to
the aggregator in type-enumeration order, so the first terminal
outcome — the one the sequential loop would have stopped at — decides
the verdict and the counterexample text byte-for-byte.

Entry point::

    from repro.engine import run_batch
    results = run_batch(transformations, config, jobs=4)
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .. import chaos
from ..core.config import Config, DEFAULT_CONFIG
from ..core.refinement import CheckOutcome
from ..core.verifier import ResultBuilder, VerificationResult
from ..ir import ast
from .cache import ResultCache, semantics_fingerprint
from .jobs import JobSpec, TransformationPlan, plan_transformation
from .scheduler import Scheduler, SchedulerStats
from .stats import EngineStats

__all__ = [
    "EngineStats",
    "aggregate_plan",
    "JobSpec",
    "ResultCache",
    "Scheduler",
    "SchedulerStats",
    "TransformationPlan",
    "plan_transformation",
    "run_batch",
    "semantics_fingerprint",
    "submit_jobs",
]


def aggregate_plan(plan: TransformationPlan,
                   outcomes: dict) -> VerificationResult:
    """Reassemble one transformation's result from its job outcomes.

    Shared by :func:`run_batch` and the serving layer: outcomes are fed
    in type-enumeration order so the verdict (and counterexample text)
    is byte-identical to the sequential driver's.
    """
    if plan.early is not None:
        return plan.early
    builder = ResultBuilder(plan.transformation.name)
    for job in plan.jobs:  # enumeration order == sequential check order
        outcome = CheckOutcome.from_dict(outcomes[job.key])
        terminal = builder.add(outcome)
        if terminal is not None:
            return terminal
    return builder.finish()


def submit_jobs(
    payloads: Sequence[dict],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[EngineStats] = None,
    max_retries: int = 1,
    scheduler: Optional[Scheduler] = None,
) -> dict:
    """Resolve raw job payloads; returns a key → outcome-dict map.

    The payload-level core of the engine, shared by :func:`run_batch`
    and the serving layer (:mod:`repro.serve`), which calls it from a
    worker thread so an asyncio event loop never blocks on SMT work.
    Each unique key is resolved exactly once, in cost order:

    1. **dedup** — later payloads with an already-seen key are folded
       into the first (``stats.jobs_deduped``);
    2. **cache fast path** — a persistent-cache hit short-circuits
       before any scheduler dispatch (``stats.cache_hits``);
    3. **one scheduler dispatch** for everything left; non-transient
       outcomes are *checkpointed* into the cache the moment each job
       resolves (not after the batch), so a run killed mid-flight
       resumes from the cache without re-verifying finished jobs.

    Pass a long-lived *scheduler* to accumulate dispatch statistics
    across calls (its snapshot lands in ``stats.scheduler``); otherwise
    a throwaway ``Scheduler(jobs, max_retries)`` is used.
    """
    stats = stats if stats is not None else EngineStats()
    outcomes: dict = {}
    to_run: List[dict] = []
    seen_keys = set()
    for payload in payloads:
        key = payload["key"]
        if key in seen_keys:
            stats.jobs_deduped += 1
            continue
        seen_keys.add(key)
        entry = cache.get(key) if cache is not None else None
        if entry is not None:
            stats.cache_hits += 1
            outcomes[key] = entry["outcome"]
        else:
            to_run.append(payload)

    if to_run:
        if scheduler is None:
            scheduler = Scheduler(jobs=jobs, max_retries=max_retries)

        def checkpoint(key: str, outcome: dict) -> None:
            """Persist one resolved outcome immediately (crash safety)."""
            if cache is not None and not outcome.get("transient"):
                # transient = scheduler gave up; do not poison the cache
                record = {
                    k: v for k, v in outcome.items()
                    if k not in ("key", "elapsed")
                }
                cache.put(key, record,
                          elapsed=outcome.get("elapsed", 0.0))
            spec = chaos.fire("engine.batch.abort", key=key)
            if spec is not None and spec.kind == chaos.KIND_KILL:
                raise chaos.InjectedKill(
                    "chaos: batch driver killed after checkpoint")

        try:
            fresh = scheduler.run(to_run, stats=stats,
                                  on_outcome=checkpoint)
        finally:
            stats.scheduler = scheduler.total_stats.to_dict()
        outcomes.update(fresh)
    return outcomes


def run_batch(
    transformations: Sequence[ast.Transformation],
    config: Config = DEFAULT_CONFIG,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    stats: Optional[EngineStats] = None,
    max_retries: int = 1,
) -> List[VerificationResult]:
    """Verify a corpus of transformations as a parallel cached batch.

    Args:
        transformations: the corpus, in reporting order.
        config: verification knobs (hashed into every job key).
        jobs: worker processes; ``1`` runs in-process (no pool).
        cache: persistent verdict cache, or None to disable caching.
        stats: an :class:`EngineStats` to fill in (optional).
        max_retries: bounded resubmissions for crashed workers.

    Returns one :class:`VerificationResult` per transformation, in
    input order, identical to ``[verify(t, config) for t in ...]``.
    """
    stats = stats if stats is not None else EngineStats()
    start = time.monotonic()
    fingerprint = cache.fingerprint if cache is not None \
        else semantics_fingerprint()

    # counters accumulate so one EngineStats can span several batches
    plans = [plan_transformation(t, config, fingerprint)
             for t in transformations]
    stats.transformations += len(plans)

    payloads: List[dict] = []
    for plan in plans:
        stats.jobs_total += len(plan.jobs)
        payloads.extend(job.payload() for job in plan.jobs)

    outcomes = submit_jobs(payloads, jobs=jobs, cache=cache, stats=stats,
                           max_retries=max_retries)
    results = [aggregate_plan(plan, outcomes) for plan in plans]
    stats.wall_time += time.monotonic() - start
    return results
