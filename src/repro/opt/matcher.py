"""Pattern matching of Alive source templates against concrete IR.

This is the Python analogue of the C++ that Alive generates (paper §4):
the generated code matches a DAG of LLVM instructions against the source
template, binds inputs and constants, evaluates the precondition using
the dataflow analyses, and fires the rewrite.  Hosting the matcher in
Python lets the reproduction run the "LLVM+Alive" experiments of §6.4
without an LLVM checkout; the emitted C++ (:mod:`repro.codegen.cpp`)
mirrors what this module does operationally.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import ast
from ..ir.constexpr import ConstExpr, eval_constexpr, is_constant_value
from ..ir.module import MConst, MFunction, MInstr, MValue
from ..ir.precond import (
    PredAnd,
    PredCall,
    PredCmp,
    PredNot,
    PredOr,
    PredTrue,
    Predicate,
)
from .analysis import Analyses


class Match:
    """A successful match: bindings from template values to IR values."""

    def __init__(self, root: MInstr, bindings: Dict[str, MValue]):
        self.root = root
        self.bindings = bindings  # template value name -> MValue

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Match(%s, %d bindings)" % (self.root.name, len(self.bindings))


_SIGNED_CMPS = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                ">": "sgt", ">=": "sge"}
_UNSIGNED_CMPS = {"u<": "ult", "u<=": "ule", "u>": "ugt", "u>=": "uge"}


def _signed(x: int, w: int) -> int:
    x &= (1 << w) - 1
    return x - (1 << w) if x >= 1 << (w - 1) else x


class TemplateMatcher:
    """Matches one transformation's source template."""

    def __init__(self, transformation: ast.Transformation):
        self.t = transformation
        self.root_pattern = transformation.src[transformation.root]
        # the template's real typing constraints, used to reject
        # structurally matching DAGs whose widths are inconsistent with
        # the (polymorphic) template typing — e.g. an i1 `false` literal
        # must not match an i8 zero
        from ..core.typecheck import TypeChecker

        self._checker = TypeChecker()
        self._checker.check_transformation(transformation)

    # ------------------------------------------------------------------

    def match(self, inst: MInstr, analyses: Analyses) -> Optional[Match]:
        """Try to match the template rooted at *inst*."""
        bindings: Dict[str, MValue] = {}
        observations: Dict[int, int] = {}  # id(pattern) -> matched width
        if not self._match_value(self.root_pattern, inst, bindings,
                                 observations):
            return None
        if not self._check_types(bindings):
            return None
        if not self._widths_feasible(observations):
            return None
        if not self._eval_pred(self.t.pre, bindings, analyses):
            return None
        return Match(inst, bindings)

    def _widths_feasible(self, observations: Dict[int, int]) -> bool:
        """Check the observed widths against the template's typing.

        Every matched pattern node reported its concrete width; nodes in
        the same type class must agree, and the class's unary
        constraints (i1-ness, fixed types, literal fit) must hold.
        SMALLER edges (conversions) are checked when both ends are
        observed.
        """
        from repro.typing.constraints import (
            BOOL,
            FIXED,
            MIN_WIDTH,
            SAME_WIDTH,
            SMALLER,
        )
        from repro.typing.types import IntType

        system = self._checker.system
        by_class: Dict[str, int] = {}
        obs_by_pattern = self._observation_keys(observations)
        for key, width in obs_by_pattern.items():
            root = system.find(key)
            existing = by_class.get(root)
            if existing is not None and existing != width:
                return False
            by_class[root] = width
        for root, width in by_class.items():
            for tag, payload in system.unary.get(root, []):
                if tag == BOOL and width != 1:
                    return False
                if tag == FIXED and isinstance(payload, IntType) \
                        and payload.width != width:
                    return False
                if tag == MIN_WIDTH and width < payload:
                    return False
        for tag, a, b in system.resolved_binary():
            wa, wb = by_class.get(system.find(a)), by_class.get(system.find(b))
            if wa is None or wb is None:
                continue
            if tag == SMALLER and not wa < wb:
                return False
            if tag == SAME_WIDTH and wa != wb:
                return False
        return True

    def _observation_keys(self, observations: Dict[int, int]) -> Dict[str, int]:
        """Translate id(pattern-node) observations into type-var keys."""
        out: Dict[str, int] = {}
        for v in self.t.source_values():
            width = observations.get(id(v))
            if width is not None:
                out[self._checker.tv(v)] = width
        return out

    # ------------------------------------------------------------------

    def _bind(self, name: str, value: MValue, bindings: Dict[str, MValue]) -> bool:
        existing = bindings.get(name)
        if existing is None:
            bindings[name] = value
            return True
        if existing is value:
            return True
        # two occurrences must be the same value; constants may also
        # match by equal numeric value
        if (
            isinstance(existing, MConst)
            and isinstance(value, MConst)
            and existing.width == value.width
            and existing.value == value.value
        ):
            return True
        return False

    def _match_value(self, pattern: ast.Value, value: MValue,
                     bindings: Dict[str, MValue],
                     observations: Dict[int, int]) -> bool:
        observations[id(pattern)] = value.width
        if isinstance(pattern, ast.Input):
            return self._bind(pattern.name, value, bindings)
        if isinstance(pattern, ast.ConstantSymbol):
            if not isinstance(value, MConst):
                return False
            return self._bind(pattern.name, value, bindings)
        if isinstance(pattern, ast.Literal):
            if not isinstance(value, MConst):
                return False
            return (pattern.value & ((1 << value.width) - 1)) == value.value
        if isinstance(pattern, ast.UndefValue):
            return False  # concrete IR has no undef values
        if isinstance(pattern, ConstExpr):
            # a constant expression in operand position must evaluate to
            # the matched constant (requires its symbols to be bound)
            if not isinstance(value, MConst):
                return False
            if not is_constant_value(pattern):
                return False
            try:
                expected = eval_constexpr(
                    pattern, value.width,
                    lambda sym: _require_const(bindings, sym),
                )
            except _UnboundConstant:
                return False
            return expected == value.value
        if isinstance(pattern, ast.Copy):
            return self._match_value(pattern.x, value, bindings, observations)
        if isinstance(pattern, ast.BinOp):
            if not isinstance(value, MInstr) or value.opcode != pattern.opcode:
                return False
            for f in pattern.flags:
                if f not in value.flags:
                    return False
            if not self._match_value(pattern.a, value.operands[0], bindings, observations):
                return False
            if not self._match_value(pattern.b, value.operands[1], bindings, observations):
                return False
            return self._bind(pattern.name, value, bindings)
        if isinstance(pattern, ast.ICmp):
            if (
                not isinstance(value, MInstr)
                or value.opcode != "icmp"
                or value.cond != pattern.cond
            ):
                return False
            if not self._match_value(pattern.a, value.operands[0], bindings, observations):
                return False
            if not self._match_value(pattern.b, value.operands[1], bindings, observations):
                return False
            return self._bind(pattern.name, value, bindings)
        if isinstance(pattern, ast.Select):
            if not isinstance(value, MInstr) or value.opcode != "select":
                return False
            for pat, op in zip((pattern.c, pattern.a, pattern.b), value.operands):
                if not self._match_value(pat, op, bindings, observations):
                    return False
            return self._bind(pattern.name, value, bindings)
        if isinstance(pattern, ast.ConvOp):
            if pattern.opcode not in ("zext", "sext", "trunc"):
                return False
            if not isinstance(value, MInstr) or value.opcode != pattern.opcode:
                return False
            if not self._match_value(pattern.x, value.operands[0], bindings, observations):
                return False
            return self._bind(pattern.name, value, bindings)
        return False

    # ------------------------------------------------------------------

    def _check_types(self, bindings: Dict[str, MValue]) -> bool:
        """Explicit type annotations must agree with the matched widths."""
        from ..typing.types import IntType

        for value in self.t.source_values():
            if value.ty is None or not isinstance(value.ty, IntType):
                continue
            bound = bindings.get(value.name)
            if bound is not None and bound.width != value.ty.width:
                return False
        return True

    # ------------------------------------------------------------------

    def _eval_pred(self, pred: Predicate, bindings: Dict[str, MValue],
                   analyses: Analyses) -> bool:
        if isinstance(pred, PredTrue):
            return True
        if isinstance(pred, PredNot):
            return not self._eval_pred(pred.p, bindings, analyses)
        if isinstance(pred, PredAnd):
            return all(self._eval_pred(p, bindings, analyses) for p in pred.ps)
        if isinstance(pred, PredOr):
            return any(self._eval_pred(p, bindings, analyses) for p in pred.ps)
        if isinstance(pred, PredCmp):
            width = self._width_of(pred.a, bindings) or self._width_of(pred.b, bindings)
            if width is None:
                return False
            try:
                a = self._eval_const(pred.a, width, bindings)
                b = self._eval_const(pred.b, width, bindings)
            except _UnboundConstant:
                return False
            if pred.op in _SIGNED_CMPS:
                sa, sb = _signed(a, width), _signed(b, width)
                return _do_cmp(pred.op.strip("u"), sa, sb)
            return _do_cmp(pred.op[1:], a, b)
        if isinstance(pred, PredCall):
            return self._eval_call(pred, bindings, analyses)
        raise ast.AliveError("cannot evaluate predicate %r" % pred)

    def _width_of(self, e: ast.Value, bindings: Dict[str, MValue]) -> Optional[int]:
        if isinstance(e, (ast.Input, ast.ConstantSymbol, ast.Instruction)):
            bound = bindings.get(e.name)
            return bound.width if bound is not None else None
        if isinstance(e, ConstExpr):
            for a in e.args:
                w = self._width_of(a, bindings)
                if w is not None:
                    return w
        return None

    def _eval_const(self, e: ast.Value, width: int,
                    bindings: Dict[str, MValue]) -> int:
        return eval_constexpr(
            e, width, lambda sym: _resolve_const(bindings, sym)
        )

    def _eval_call(self, pred: PredCall, bindings: Dict[str, MValue],
                   analyses: Analyses) -> bool:
        fn = pred.fn

        def arg_value(i: int) -> Optional[MValue]:
            a = pred.args[i]
            if isinstance(a, (ast.Input, ast.ConstantSymbol, ast.Instruction)):
                return bindings.get(a.name)
            return None

        def arg_const(i: int, width: int) -> Optional[int]:
            try:
                return self._eval_const(pred.args[i], width, bindings)
            except (_UnboundConstant, ast.AliveError):
                return None

        if fn == "hasOneUse":
            v = arg_value(0)
            return v is not None and analyses.has_one_use(v)
        if fn == "isConstant":
            v = arg_value(0)
            return isinstance(v, MConst)
        if fn in ("isPowerOf2", "isPowerOf2OrZero"):
            v = arg_value(0)
            if isinstance(v, MConst):
                ok_zero = fn.endswith("OrZero") and v.value == 0
                return ok_zero or (
                    v.value != 0 and v.value & (v.value - 1) == 0
                )
            if v is not None:
                return analyses.is_power_of_2(v)
            return False
        if fn == "isSignBit":
            v = arg_value(0)
            return isinstance(v, MConst) and v.value == 1 << (v.width - 1)
        if fn == "isShiftedMask":
            v = arg_value(0)
            if not isinstance(v, MConst) or v.value == 0:
                return False
            filled = v.value | (v.value - 1)
            return (filled & (filled + 1)) == 0
        if fn == "MaskedValueIsZero":
            v = arg_value(0)
            if v is None:
                return False
            mask = arg_const(1, v.width)
            if mask is None:
                return False
            return analyses.masked_value_is_zero(v, mask)
        if fn.startswith("WillNotOverflow"):
            v0, v1 = arg_value(0), arg_value(1)
            if isinstance(v0, MConst) and isinstance(v1, MConst):
                return _const_will_not_overflow(fn, v0, v1)
            if fn == "WillNotOverflowSignedAdd" and v0 is not None and v1 is not None:
                return analyses.will_not_overflow_signed_add(v0, v1)
            return False
        raise ast.AliveError("predicate %r not implemented in matcher" % fn)


class _UnboundConstant(Exception):
    pass


def _resolve_const(bindings: Dict[str, MValue], sym: ast.Value) -> int:
    bound = bindings.get(sym.name)
    if not isinstance(bound, MConst):
        raise _UnboundConstant(sym.name)
    return bound.value


def _require_const(bindings: Dict[str, MValue], sym: ast.Value) -> int:
    return _resolve_const(bindings, sym)


def _do_cmp(op: str, a: int, b: int) -> bool:
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise ValueError(op)


def _const_will_not_overflow(fn: str, a: MConst, b: MConst) -> bool:
    w = a.width
    sa, sb = _signed(a.value, w), _signed(b.value, w)
    lo, hi = -(1 << (w - 1)), (1 << (w - 1)) - 1
    if fn == "WillNotOverflowSignedAdd":
        return lo <= sa + sb <= hi
    if fn == "WillNotOverflowUnsignedAdd":
        return a.value + b.value < (1 << w)
    if fn == "WillNotOverflowSignedSub":
        return lo <= sa - sb <= hi
    if fn == "WillNotOverflowUnsignedSub":
        return a.value >= b.value
    if fn == "WillNotOverflowSignedMul":
        return lo <= sa * sb <= hi
    if fn == "WillNotOverflowUnsignedMul":
        return a.value * b.value < (1 << w)
    if fn == "WillNotOverflowSignedShl":
        return sb < w and lo <= (sa << sb) <= hi
    if fn == "WillNotOverflowUnsignedShl":
        return sb < w and (a.value << sb) < (1 << w)
    raise ValueError(fn)
