"""CLI tests: the alive-repro subcommands end to end."""

import json
import os

import pytest

from repro.cli import main

GOOD = """Name: good
%r = add %x, 0
=>
%r = %x
"""

BAD = """Name: bad
%r = add %x, 1
=>
%r = add %x, 2
"""

FLAGGED = """Name: flagged
%r = add nsw %x, %y
=>
%r = add %y, %x
"""


@pytest.fixture
def opt_file(tmp_path):
    def write(content, name="input.opt"):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestVerifyCommand:
    def test_valid_exits_zero(self, opt_file, capsys):
        rc = main(["verify", "--max-width", "4", opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "good: valid" in out
        assert "0 problem(s)" in out

    def test_invalid_exits_nonzero_with_counterexample(self, opt_file, capsys):
        rc = main(["verify", "--max-width", "4", opt_file(BAD)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ERROR: Mismatch in values" in out

    def test_multiple_files(self, opt_file, capsys):
        rc = main([
            "verify", "--max-width", "4",
            opt_file(GOOD, "a.opt"), opt_file(BAD, "b.opt"),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "Verified 2 transformation(s)" in out

    def test_budget_exhausted_exits_two(self, opt_file, capsys):
        # an expired wall-clock budget leaves the verdict undecided:
        # exit 2 (retry with more budget), not 1 (genuinely refuted)
        rc = main(["verify", "--max-width", "4", "--time-limit", "0",
                   opt_file(BAD)])
        out = capsys.readouterr().out
        assert rc == 2
        assert "unknown" in out

    def test_refuted_beats_budget_exhausted(self, opt_file, capsys):
        # a conflict budget small enough to leave the mul proof undecided
        # but a refuted rule in the same batch: refutation wins (exit 1)
        unknown = ("Name: hard\n"
                   "%a = mul %x, %y\n%b = mul %x, %z\n%r = add %a, %b\n"
                   "=>\n%s = add %y, %z\n%r = mul %x, %s\n")
        rc = main([
            "verify", "--max-width", "4", "--conflict-limit", "1",
            opt_file(BAD, "bad.opt"), opt_file(unknown, "hard.opt"),
        ])
        assert rc == 1

    def test_jobs_flag_keeps_output_shape(self, opt_file, capsys):
        rc = main(["verify", "--max-width", "4", "--jobs", "2",
                   opt_file(BAD)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ERROR: Mismatch in values" in out
        assert "1 problem(s)" in out


class TestInferCommand:
    def test_reports_attributes(self, opt_file, capsys):
        rc = main(["infer", "--max-width", "4", opt_file(FLAGGED)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strongest target attributes" in out
        assert "nsw" in out


class TestCodegenCommand:
    def test_emits_cpp(self, opt_file, capsys):
        rc = main(["codegen", opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "match(I" in out
        assert "replaceAllUsesWith" in out


class TestBugsCommand:
    def test_all_refuted(self, capsys):
        rc = main(["bugs", "--max-width", "4", "--max-types", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("PR20186", "PR21245", "PR21274"):
            assert name in out
        assert out.count("refuted") == 8
        assert "NOT refuted" not in out


class TestVerifyBatchCommand:
    def test_valid_exits_zero(self, opt_file, tmp_path, capsys):
        rc = main(["verify-batch", "--max-width", "4", "--jobs", "2",
                   "--cache", str(tmp_path / "cache"), opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "good: valid" in out

    def test_invalid_output_matches_sequential_verify(self, opt_file,
                                                      capsys):
        rc = main(["verify", "--max-width", "4", opt_file(BAD)])
        sequential = capsys.readouterr().out
        assert rc == 1
        rc = main(["verify-batch", "--max-width", "4", "--jobs", "2",
                   "--no-cache", opt_file(BAD)])
        batch = capsys.readouterr().out
        assert rc == 1
        assert batch == sequential  # byte-identical report

    def test_warm_cache_executes_zero_jobs(self, opt_file, tmp_path,
                                           capsys):
        argv = ["verify-batch", "--max-width", "4", "--stats",
                "--cache", str(tmp_path / "cache"),
                opt_file(GOOD, "a.opt"), opt_file(BAD, "b.opt")]
        rc = main(argv)
        cold = capsys.readouterr().out
        assert rc == 1
        assert "cache hits" in cold and "jobs executed" in cold

        rc = main(argv)
        warm = capsys.readouterr().out
        assert rc == 1
        # every refinement check replayed from the persistent cache
        assert _stat(warm, "jobs executed") == 0
        assert _stat(warm, "cache hits") == _stat(cold, "jobs executed") > 0

    def test_no_input_is_an_error(self, capsys):
        rc = main(["verify-batch"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_table_printed(self, opt_file, capsys):
        rc = main(["verify-batch", "--max-width", "4", "--no-cache",
                   "--stats", opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "batch statistics" in out
        assert "p95 job latency" in out


def _stat(output: str, label: str) -> int:
    """Parse one counter out of the --stats table."""
    for line in output.splitlines():
        if line.startswith(label):
            return int(line.split()[-1])
    raise AssertionError("no %r row in:\n%s" % (label, output))


class TestErrors:
    def test_no_command_prints_help(self, capsys):
        rc = main([])
        assert rc == 2

    def test_parse_error_reported(self, opt_file, capsys):
        rc = main(["verify", opt_file("%r = add %x\n=>\n%r = %x")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestDumpSmt:
    def test_scripts_emitted(self, opt_file, capsys):
        rc = main(["dump-smt", "--max-width", "4", opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(set-logic BV)" in out
        assert out.count("(check-sat)") == 3  # defined, poison, value
        assert "; good — negated value check" in out


class TestInferPreCommand:
    def test_precondition_synthesized(self, opt_file, capsys):
        rc = main([
            "infer-pre", "--max-width", "4", "--max-types", "2",
            opt_file("Name: fix-me\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)\n"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "isPowerOf2(C)" in out


class TestCyclesCommand:
    def test_cycle_reported(self, opt_file, capsys):
        cyclic = ("Name: a\n%r = mul %x, 2\n=>\n%r = shl %x, 1\n\n"
                  "Name: b\n%r = shl %x, 1\n=>\n%r = mul %x, 2\n")
        rc = main(["cycles", opt_file(cyclic)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "cycle seeded by" in out

    def test_clean_set(self, opt_file, capsys):
        rc = main(["cycles", opt_file(GOOD)])
        assert rc == 0
        assert "no rewrite cycles" in capsys.readouterr().out


class TestExitCodeDocs:
    """The 0/1/2 contract is documented in --help (and mirrored by
    'submit'; see tests/serve/test_submit_cli.py)."""

    @pytest.mark.parametrize("command", ["verify", "verify-batch", "submit"])
    def test_help_epilog_documents_exit_codes(self, command, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "0   all transformations proven valid" in out
        assert "1   at least one transformation refuted" in out
        assert "2   undecided only" in out
        assert "130 interrupted" in out


class TestStatsJson:
    def test_written_to_file(self, opt_file, tmp_path, capsys):
        target = tmp_path / "stats.json"
        rc = main(["verify", "--max-width", "4",
                   "--stats-json", str(target), opt_file(GOOD)])
        assert rc == 0
        blob = json.loads(target.read_text())
        assert blob["transformations"] == 1
        assert blob["jobs_executed"] > 0
        assert blob["errors"] == 0

    def test_includes_scheduler_snapshot(self, opt_file, tmp_path):
        target = tmp_path / "stats.json"
        main(["verify", "--max-width", "4",
              "--stats-json", str(target), opt_file(GOOD)])
        scheduler = json.loads(target.read_text())["scheduler"]
        assert scheduler["dispatches"] == 1
        assert scheduler["jobs_dispatched"] > 0
        assert scheduler["retries"] == 0
        assert scheduler["wall_time"] >= 0

    def test_dash_writes_to_stdout(self, opt_file, capsys):
        rc = main(["verify", "--max-width", "4", "--stats-json", "-",
                   opt_file(GOOD)])
        assert rc == 0
        out = capsys.readouterr().out
        start = out.index("{")
        blob = json.loads(out[start:out.rindex("}") + 1])
        assert blob["transformations"] == 1

    def test_verify_batch_supports_it_too(self, opt_file, tmp_path, capsys):
        target = tmp_path / "stats.json"
        rc = main(["verify-batch", "--max-width", "4",
                   "--cache", str(tmp_path / "cache.jsonl"),
                   "--stats-json", str(target), opt_file(GOOD)])
        assert rc == 0
        blob = json.loads(target.read_text())
        assert blob["cache_hits"] == 0 and blob["jobs_executed"] > 0


class TestCacheMaxEntries:
    def test_flag_bounds_the_cache(self, opt_file, tmp_path, capsys):
        cache_path = tmp_path / "cache.jsonl"
        rc = main(["verify-batch", "--max-width", "4",
                   "--cache", str(cache_path), "--cache-max-entries", "1",
                   opt_file(GOOD, "a.opt"), opt_file(BAD, "b.opt")])
        assert rc == 1

        from repro.engine import ResultCache

        reloaded = ResultCache(str(cache_path), max_entries=1)
        assert len(reloaded) <= 1
