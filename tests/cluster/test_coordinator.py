"""Coordinator behavior: parity, failover, hedging, replication.

The acceptance bar for everything here is the determinism contract:
whatever the cluster goes through — dead shards, transient answers,
corrupted replicas, hedged duplicates — the final verdicts must be
byte-identical to a local :func:`repro.engine.run_batch`.
"""

import pytest

from repro import chaos
from repro.cluster import PROV_CACHE, PROV_LOCAL
from repro.cluster.coordinator import _Dispatch
from repro.engine import plan_transformation, run_batch
from repro.engine.cache import semantics_fingerprint

from .conftest import CORPUS_TEXTS, TEST_CONFIG, corpus


def assert_parity(results, baseline):
    """Byte-identical verdicts (the acceptance criterion)."""
    assert len(results) == len(baseline)
    for ours, ref in zip(results, baseline):
        assert ours.name == ref.name
        assert ours.status == ref.status
        assert ours.detail == ref.detail
        if ref.counterexample is None:
            assert ours.counterexample is None
        else:
            assert (ours.counterexample.format()
                    == ref.counterexample.format())


@pytest.fixture(scope="module")
def baseline():
    return run_batch(corpus(), TEST_CONFIG, jobs=1)


def job_keys(ts):
    fingerprint = semantics_fingerprint()
    keys = []
    for t in ts:
        plan = plan_transformation(t, TEST_CONFIG, fingerprint)
        keys.extend(job.key for job in plan.jobs)
    return keys


class TestHealthyCluster:
    def test_parity_with_local_run_batch(self, make_cluster, baseline):
        ts = corpus()
        cluster = make_cluster()
        report = cluster.coordinator.verify_batch(ts)
        assert_parity(report.results, baseline)
        # every job answered by a node, none locally
        node_ids = set(cluster.nodes)
        assert set(report.provenance.values()) <= node_ids
        assert len(report.provenance) == report.stats.jobs_total
        assert report.stats.local_fallback_jobs == 0
        assert report.stats.waves == 1

    def test_shard_labels_ride_the_requests(self, make_cluster):
        cluster = make_cluster()
        cluster.coordinator.verify_batch(corpus())
        for node_id, node in cluster.nodes.items():
            for request in node.requests:
                assert request["shard"] == node_id
                assert request["hedged"] is False

    def test_stats_round_trip_to_dict(self, make_cluster):
        cluster = make_cluster()
        report = cluster.coordinator.verify_batch(corpus())
        data = report.stats.to_dict()
        assert data["jobs_total"] == report.stats.jobs_total
        assert data["failover_count"] == 0
        assert report.provenance_summary() != {}


class TestCoordinatorCache:
    def test_second_batch_is_all_cache(self, make_cluster):
        cluster = make_cluster(cache=True)
        first = cluster.coordinator.verify_batch(corpus())
        forwarded = first.stats.forwarded
        assert forwarded > 0
        second = cluster.coordinator.verify_batch(corpus())
        assert set(second.provenance.values()) == {PROV_CACHE}
        assert second.stats.forwarded == forwarded  # nothing new sent


class TestFailover:
    def test_dead_primary_fails_over(self, make_cluster, baseline):
        ts = corpus()
        cluster = make_cluster()
        victim = cluster.coordinator.ring.owner(job_keys(ts)[0])
        cluster.node(victim).dead = True
        report = cluster.coordinator.verify_batch(ts)
        assert_parity(report.results, baseline)
        assert victim not in set(report.provenance.values())
        assert report.stats.forward_failures >= 1
        assert report.stats.waves >= 2
        assert report.stats.failover_latencies  # measured, not inferred
        assert all(lat >= 0.0 for lat in report.stats.failover_latencies)
        view = {node["node_id"]: node["state"]
                for node in report.registry_view["nodes"]}
        assert view[victim] in ("suspect", "dead")

    def test_backoff_between_waves_is_jittered(self, make_cluster):
        ts = corpus()
        cluster = make_cluster()
        victim = cluster.coordinator.ring.owner(job_keys(ts)[0])
        cluster.node(victim).dead = True
        cluster.coordinator.verify_batch(ts)
        assert cluster.sleeps  # a retry wave waited first
        base = cluster.coordinator.options.backoff_base
        cap = cluster.coordinator.options.backoff_cap
        assert all(0.0 < delay <= 1.5 * cap for delay in cluster.sleeps)
        assert all(delay >= 0.5 * base for delay in cluster.sleeps)

    def test_whole_cluster_dead_degrades_to_local(self, make_cluster,
                                                  baseline):
        ts = corpus()
        cluster = make_cluster()
        for node in cluster.nodes.values():
            node.dead = True
        report = cluster.coordinator.verify_batch(ts)  # never raises
        assert_parity(report.results, baseline)
        assert set(report.provenance.values()) == {PROV_LOCAL}
        assert report.stats.local_fallback_jobs == report.stats.jobs_total

    def test_transient_answer_is_retried_elsewhere(self, make_cluster,
                                                   baseline):
        ts = corpus()
        cluster = make_cluster()
        key = job_keys(ts)[0]
        primary = cluster.coordinator.ring.owner(key)
        cluster.node(primary).transient_once.add(key)
        report = cluster.coordinator.verify_batch(ts)
        assert_parity(report.results, baseline)
        assert report.stats.transient_rejected == 1
        assert report.provenance[key] != primary
        # the transient verdict must not have been cached anywhere
        for node in cluster.nodes.values():
            entry = node.cache.get(key)
            assert entry is None or not entry["outcome"].get("transient")


class TestLateReplies:
    def test_stale_stamp_is_discarded(self, make_cluster):
        ts = corpus()
        cluster = make_cluster()
        coordinator = cluster.coordinator
        key = job_keys(ts)[0]
        payload = {"key": key, "text": "", "knobs": {}}
        dispatch = _Dispatch("n0", coordinator.registry.generation_of("n0"),
                             [payload])
        coordinator.registry.mark_dead("n0")  # declared dead in flight
        outcomes, provenance = {}, {}
        coordinator._on_response(
            dispatch, {"ok": True,
                       "outcomes": {key: {"status": "valid"}}},
            {key: set()}, {}, outcomes, provenance)
        assert outcomes == {}
        assert provenance == {}
        assert coordinator.stats.late_replies_discarded == 1

    def test_current_stamp_is_accepted(self, make_cluster):
        ts = corpus()
        cluster = make_cluster()
        coordinator = cluster.coordinator
        key = job_keys(ts)[0]
        payload = {"key": key, "text": "", "knobs": {}}
        dispatch = _Dispatch("n0", coordinator.registry.generation_of("n0"),
                             [payload])
        outcomes, provenance = {}, {}
        coordinator._on_response(
            dispatch, {"ok": True,
                       "outcomes": {key: {"status": "valid"}}},
            {key: set()}, {}, outcomes, provenance)
        assert outcomes[key]["status"] == "valid"
        assert provenance[key] == "n0"


class TestHedging:
    def test_slow_shard_is_hedged(self, make_cluster, baseline):
        ts = corpus()
        cluster = make_cluster(hedge_delay=0.05)
        slow = cluster.coordinator.ring.owner(job_keys(ts)[0])
        cluster.node(slow).latency = 0.6
        report = cluster.coordinator.verify_batch(ts)
        assert_parity(report.results, baseline)
        assert report.stats.hedged >= 1
        hedged_requests = [request
                           for node in cluster.nodes.values()
                           for request in node.requests
                           if request["hedged"]]
        assert hedged_requests
        # the hedge went somewhere other than the slow shard
        assert all(request["shard"] != slow
                   for request in hedged_requests)


class TestReplication:
    def test_write_through_to_successors(self, make_cluster):
        cluster = make_cluster(replicas=1)
        report = cluster.coordinator.verify_batch(corpus())
        assert report.stats.replicated >= 1
        ring = cluster.coordinator.ring
        for key, source in report.provenance.items():
            for node_id in ring.successors(key, 2):
                if node_id == source:
                    continue  # the answering node cached it itself
                assert key in cluster.node(node_id).cache
        # healthy run: every answer came from the primary, so no
        # write-back was ever needed
        assert report.stats.read_repairs == 0

    def test_read_repair_heals_the_primary(self, make_cluster):
        ts = corpus()
        cluster = make_cluster(replicas=1)
        key = job_keys(ts)[0]
        primary = cluster.coordinator.ring.owner(key)
        cluster.node(primary).transient_once.add(key)  # dodge, stay up
        report = cluster.coordinator.verify_batch(ts)
        assert report.provenance[key] != primary
        assert report.stats.read_repairs >= 1
        assert key in cluster.node(primary).cache  # healed
        assert key in cluster.node(primary).installed

    def test_warm_replicas_serve_after_node_loss(self, make_cluster,
                                                 baseline):
        ts = corpus()
        cluster = make_cluster(replicas=2)  # full replication on 3 nodes
        cluster.coordinator.verify_batch(ts)
        # the stats object is shared across runs on one coordinator,
        # so snapshot the counter between them
        before = cluster.coordinator.stats.remote_cache_hits
        assert before == 0  # cold cluster: every job was verified
        victim = cluster.coordinator.ring.owner(job_keys(ts)[0])
        cluster.node(victim).dead = True
        second = cluster.coordinator.verify_batch(ts)
        assert_parity(second.results, baseline)
        # every re-run job was answered from a node's warm cache —
        # including the victim's keys, served by their replicas
        assert (second.stats.remote_cache_hits
                - before) == second.stats.jobs_total

    def test_corrupt_replica_is_rejected_not_adopted(self, make_cluster,
                                                     baseline):
        chaos.install(chaos.FaultPlan([
            chaos.FaultSpec("cluster.replicate", chaos.KIND_CORRUPT,
                            times=[0]),
        ]))
        cluster = make_cluster(replicas=1)
        report = cluster.coordinator.verify_batch(corpus())
        assert_parity(report.results, baseline)
        assert report.stats.replication_failures >= 1
        # nothing adopted a record whose CRC does not match its content
        for node in cluster.nodes.values():
            fresh_cache = type(node.cache)(node.cache.path,
                                           fingerprint=node.cache.fingerprint)
            assert fresh_cache.skipped_corrupt == 0

    def test_lost_replication_does_not_lose_verdicts(self, make_cluster,
                                                     baseline):
        chaos.install(chaos.FaultPlan([
            chaos.FaultSpec("cluster.replicate", chaos.KIND_ERROR,
                            every=1),
        ]))
        cluster = make_cluster(replicas=1)
        report = cluster.coordinator.verify_batch(corpus())
        assert_parity(report.results, baseline)
        assert report.stats.replicated == 0
        assert report.stats.replication_failures >= 1


class TestChaosDeterminism:
    def _run(self, make_cluster, seed):
        plan = chaos.FaultPlan([
            chaos.FaultSpec("cluster.forward", chaos.KIND_ERROR,
                            every=3),
        ], seed=seed)
        chaos.install(plan)
        try:
            cluster = make_cluster()
            report = cluster.coordinator.verify_batch(corpus())
        finally:
            chaos.uninstall()
        verdicts = [(result.name, result.status, result.detail)
                    for result in report.results]
        return list(plan.log), verdicts, report.stats.forward_failures

    def test_same_seed_same_firing_log_same_verdicts(self, make_cluster,
                                                     baseline):
        log1, verdicts1, failures1 = self._run(make_cluster, seed=7)
        log2, verdicts2, failures2 = self._run(make_cluster, seed=7)
        assert log1, "the plan must actually fire to prove anything"
        assert log1 == log2
        assert verdicts1 == verdicts2
        assert failures1 == failures2 >= 1
        assert verdicts1 == [(r.name, r.status, r.detail)
                             for r in baseline]
