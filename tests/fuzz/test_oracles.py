"""The differential oracles and the concrete refinement checker."""

import random

import pytest

from repro.core.typecheck import TypeAssignment
from repro.core.verifier import decompose, verify
from repro.fuzz import (
    check_ef,
    check_formula,
    check_point,
    check_rule,
    confirm_counterexample,
    default_rule_config,
    revalidate_valid,
)
from repro.fuzz.concrete import (
    defined_condition,
    flag_condition,
    total_binop,
)
from repro.ir import ast, parse_transformations
from repro.smt import terms as T

CONFIG = default_rule_config()


def _parse(text):
    return parse_transformations(text)[0]


def _types(t):
    early, checker, mappings = decompose(t, CONFIG)
    assert early is None and mappings
    return TypeAssignment(checker, mappings[0])


# ---------------------------------------------------------------------------
# term level
# ---------------------------------------------------------------------------


def test_check_formula_agrees_on_tautology():
    v = T.bv_var("v0", 4)
    assert check_formula(T.eq(v, v)) == []


def test_check_formula_agrees_on_contradiction():
    v = T.bv_var("v0", 4)
    f = T.and_(T.ult(v, T.bv_const(2, 4)), T.ult(T.bv_const(9, 4), v))
    assert check_formula(f) == []


def test_check_ef_agrees_both_ways():
    v = T.bv_var("v0", 3)
    u = T.bv_var("u0", 3)
    # exists v forall u: v & u == 0  (v = 0 works)
    phi = T.eq(T.bvand(v, u), T.bv_const(0, 3))
    assert check_ef([v], [u], phi) == []
    # exists v forall u: v == u  (impossible over 3 bits)
    assert check_ef([v], [u], T.eq(v, u)) == []


# ---------------------------------------------------------------------------
# module level
# ---------------------------------------------------------------------------


def test_check_interp_eager_lazy_agree_on_workloads():
    from repro.fuzz import check_interp

    for seed in range(5):
        assert check_interp(seed) == []


# ---------------------------------------------------------------------------
# concrete semantics helpers
# ---------------------------------------------------------------------------


def test_total_binop_matches_smtlib_totalization():
    w = 4
    assert total_binop("udiv", 5, 0, w) == T.mask(w)          # x/0 = ~0
    assert total_binop("urem", 5, 0, w) == 5                  # x%0 = x
    assert total_binop("sdiv", 13, 0, w) == 1                 # neg/0 = 1
    assert total_binop("sdiv", 3, 0, w) == T.mask(w)          # pos/0 = -1
    assert total_binop("shl", 1, 9, w) == 0                   # shamt >= w
    assert total_binop("ashr", 8, 9, w) == T.mask(w)          # sign fill


def test_defined_condition_table1():
    w = 4
    assert not defined_condition("udiv", 1, 0, w)
    assert defined_condition("udiv", 1, 3, w)
    # INT_MIN / -1 overflows
    assert not defined_condition("sdiv", 8, 15, w)
    assert not defined_condition("shl", 1, 4, w)
    assert defined_condition("shl", 1, 3, w)


def test_flag_condition_shl_nsw_uses_totalized_ops():
    # shamt >= width: the SMT formula compares against the *totalized*
    # shift, and the concrete oracle must agree with it exactly
    w = 4
    smt = T.eq(T.bvashr(T.bvshl(T.bv_const(1, w), T.bv_const(9, w)),
                        T.bv_const(9, w)),
               T.bv_const(1, w))
    from repro.smt.eval import holds

    assert flag_condition("shl", "nsw", 1, 9, w) == holds(smt, {})


# ---------------------------------------------------------------------------
# rule level
# ---------------------------------------------------------------------------

_WRONG = """Name: wrong
%r = lshr %x, 1
=>
%r = ashr %x, 1
"""

_RIGHT = """Name: right
%r = add %x, %y
=>
%r = add %y, %x
"""


def test_check_point_finds_value_violation():
    t = _parse(_WRONG)
    types = _types(t)
    v = check_point(t, types, CONFIG, {"%x": 8}, {})
    assert v is not None and (v.kind, v.name) == ("value", "%r")
    assert check_point(t, types, CONFIG, {"%x": 3}, {}) is None


def test_check_point_poison_violation():
    t = _parse("""Name: p
%r = add %x, %y
=>
%r = add nsw %x, %y
""")
    types = _types(t)
    # 7 + 1 overflows signed i4: target-only poison
    v = check_point(t, types, CONFIG, {"%x": 7, "%y": 1}, {})
    assert v is not None and v.kind == "poison"
    assert check_point(t, types, CONFIG, {"%x": 1, "%y": 1}, {}) is None


def test_check_point_domain_violation():
    t = _parse("""Name: d
%r = mul %x, 2
=>
%r = udiv %x, 0
""")
    types = _types(t)
    v = check_point(t, types, CONFIG, {"%x": 1}, {})
    assert v is not None and v.kind == "domain"


def test_revalidate_detects_wrong_valid_verdict():
    ds = revalidate_valid(_parse(_WRONG), CONFIG, random.Random(0),
                          samples=16)
    assert ds and ds[0].check == "valid-refuted-concretely"


def test_revalidate_passes_correct_rule():
    assert revalidate_valid(_parse(_RIGHT), CONFIG, random.Random(0),
                            samples=16) == []


def test_confirm_counterexample_reproduces():
    t = _parse(_WRONG)
    result = verify(t, CONFIG)
    assert result.status == "invalid"
    assert confirm_counterexample(t, CONFIG, result.counterexample) == []


def test_check_rule_end_to_end_clean():
    for text in (_RIGHT, _WRONG):
        assert check_rule(_parse(text), CONFIG, random.Random(1),
                          samples=8) == []


def test_precondition_gates_concrete_check():
    t = _parse("""Name: pre
Pre: C1 == 0
%r = or %x, C1
=>
%r = add %x, C1
""")
    types = _types(t)
    # C1 = 1 falsifies the precondition: no violation at any input
    assert check_point(t, types, CONFIG, {"%x": 5, "C1": 1}, {}) is None
    # C1 = 0 satisfies it; or == add when C1 == 0, still no violation
    assert check_point(t, types, CONFIG, {"%x": 5, "C1": 0}, {}) is None


def test_validate_rejects_shared_undef_object():
    # one UndefValue object in two operand slots is unprintable: the
    # reparse quantifies the occurrences independently (a real verdict
    # flip found by the fuzzer), so validate() must reject it
    from repro.ir.precond import PredTrue

    u = ast.UndefValue()
    src = {"%r": ast.BinOp("%r", "and", u, ast.Input("%x"))}
    tgt = {"%r": ast.BinOp("%r", "or", u, ast.Input("%x"))}
    t = ast.Transformation("shared", PredTrue(), src, tgt)
    with pytest.raises(ast.ScopeError):
        t.validate()


def test_validate_accepts_distinct_undefs():
    src = {"%r": ast.BinOp("%r", "and", ast.UndefValue(), ast.Input("%x"))}
    tgt = {"%r": ast.BinOp("%r", "or", ast.UndefValue(), ast.Input("%x"))}
    from repro.ir.precond import PredTrue

    t = ast.Transformation("fresh", PredTrue(), src, tgt)
    t.validate()
