"""Verification configuration knobs.

The paper verifies with integer widths up to 64 bits and ABI pointer
widths of 32/64.  A pure-Python bit-blaster is considerably slower than
Z3, so the defaults here are smaller; every knob can be raised to the
paper's values at the cost of time (see DESIGN.md, "Width bounds").
"""

from __future__ import annotations


class Config:
    """Parameters threaded through type enumeration and VC generation.

    Attributes:
        max_width: upper bound on integer bit widths during type
            enumeration (paper default: 64).
        prefer_widths: widths tried first, so the first counterexample is
            a readable one (paper §3.1.4 biases toward 4 and 8 bits).
        ptr_width: pointer width in bits for memory encodings.
        abi_int_align: ABI alignment quantum in bits (paper §3.3.1).
        conflict_limit: CDCL conflict budget per SMT query; ``None`` means
            unbounded.  When exceeded, verification reports "unknown"
            instead of looping for hours (the paper reports exactly this
            pathology for mul/div at large widths).
        simplify_queries: apply the global rewriting simplifier to each
            query before bit-blasting (ablatable).
        max_type_assignments: cap on enumerated type assignments per
            transformation (the paper's enumeration is also bounded).
        time_limit: wall-clock budget in seconds for checking one type
            assignment; ``None`` means unbounded.  When exceeded the
            check reports "unknown", exactly like an exhausted conflict
            budget.  The batch engine uses this as its per-job timeout.
        fp_formats: floating-point formats enumerated for unconstrained
            FP type variables, in preference order (half first: the
            16-bit soft-float circuits are dramatically cheaper to
            bit-blast than double's).
        brute_max_bits: cap on the total number of input bits the brute
            enumeration oracle (:mod:`repro.smt.brute`) will exhaust;
            one half operand is 16 bits, so the default admits a
            half-precision unary rule plus analysis booleans.
        incremental: run the refinement checks of one type assignment
            through a shared :class:`repro.smt.solver.IncrementalSession`
            (assumption-based CDCL; shared-prefix encoding) instead of a
            fresh solver per query.  Identical verdicts either way on
            decided queries; "unknown" budgets can differ, so the knob is
            part of the cache key.
        absint: run the solver-verified abstract-interpretation tier
            (:mod:`repro.absint`) before dispatching each refinement
            check; a must-answer of "refines" short-circuits the SAT
            queries entirely.  Verdicts are identical either way (the
            tier only ever proves what the solver would prove), but the
            knob participates in cache keys so A/B runs stay separate.
    """

    def __init__(
        self,
        max_width: int = 8,
        prefer_widths=(4, 8),
        ptr_width: int = 16,
        abi_int_align: int = 8,
        conflict_limit=200_000,
        max_type_assignments: int = 24,
        simplify_queries: bool = True,
        time_limit=None,
        fp_formats=("half", "float", "double"),
        brute_max_bits: int = 22,
        incremental: bool = True,
        absint: bool = True,
    ):
        self.max_width = max_width
        self.prefer_widths = tuple(prefer_widths)
        self.ptr_width = ptr_width
        self.abi_int_align = abi_int_align
        self.conflict_limit = conflict_limit
        self.max_type_assignments = max_type_assignments
        # run the global term simplifier (repro.smt.simplify) on every
        # refinement query before bit-blasting
        self.simplify_queries = simplify_queries
        self.time_limit = time_limit
        self.fp_formats = tuple(fp_formats)
        self.brute_max_bits = brute_max_bits
        self.incremental = incremental
        self.absint = absint

    def to_dict(self) -> dict:
        """All knobs as JSON-serializable plain data.

        The batch engine hashes this dict into job cache keys (every
        knob here can change a verdict) and ships it across the worker
        process boundary.
        """
        return {
            "max_width": self.max_width,
            "prefer_widths": list(self.prefer_widths),
            "ptr_width": self.ptr_width,
            "abi_int_align": self.abi_int_align,
            "conflict_limit": self.conflict_limit,
            "max_type_assignments": self.max_type_assignments,
            "simplify_queries": self.simplify_queries,
            "time_limit": self.time_limit,
            "fp_formats": list(self.fp_formats),
            "brute_max_bits": self.brute_max_bits,
            "incremental": self.incremental,
            "absint": self.absint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Config":
        """Inverse of :meth:`to_dict` (used on the worker side)."""
        return cls(**data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            "Config(max_width=%d, ptr_width=%d, conflict_limit=%r)"
            % (self.max_width, self.ptr_width, self.conflict_limit)
        )


DEFAULT_CONFIG = Config()

#: A faster configuration used by the test suite.
FAST_CONFIG = Config(max_width=4, prefer_widths=(4,), ptr_width=8,
                     max_type_assignments=8, fp_formats=("half",))

#: Paper-equivalent configuration (slow with the pure-Python solver).
PAPER_CONFIG = Config(max_width=64, prefer_widths=(4, 8), ptr_width=32,
                      abi_int_align=32, conflict_limit=None,
                      max_type_assignments=10_000)
