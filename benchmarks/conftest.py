"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  The ``report`` fixture
prints the regenerated rows to the real terminal (bypassing pytest's
capture) and appends them to ``benchmarks/results/<test>.txt`` so the
paper-vs-measured comparison survives the run.
"""

from __future__ import annotations

import os

import pytest

from repro.core import Config

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def bench_config() -> Config:
    """The verification configuration used by the benchmarks.

    Width 4 keeps the pure-Python solver fast; the paper's own default
    (64) is available via ``Config(max_width=64)`` at much higher cost.
    """
    return Config(max_width=4, prefer_widths=(4,), ptr_width=8,
                  max_type_assignments=4)


@pytest.fixture
def report(request, capsys):
    """Print experiment output to the terminal and a results file."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, request.node.name + ".txt")
    lines = []

    def emit(text: str = "") -> None:
        lines.append(text)

    yield emit

    body = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(body)
    with capsys.disabled():
        print()
        print("=" * 72)
        print(body, end="")
        print("=" * 72)
