"""CLI tests for `lint` and its `cycles` alias."""

import json

import pytest

from repro.cli import main

BAD = """Name: vacuous
Pre: isPowerOf2(C) && C == 0
%r = udiv %x, C
=>
%r = lshr %x, log2(C)
"""

CLEAN = """Name: fine
Pre: isPowerOf2(C)
%r = udiv %x, C
=>
%r = lshr %x, log2(C)
"""

CYCLIC = """Name: ping
%r = sub %x, C
=>
%r = add %x, -C

Name: pong
%r = add %x, C
=>
%r = sub %x, -C
"""

FAST = ["--max-width", "4", "--max-types", "4",
        "--cycle-samples", "2", "--cycle-spin-limit", "24"]
FAST_CYCLES = ["--max-width", "4", "--max-types", "4"]


@pytest.fixture
def opt_file(tmp_path):
    def write(content, name="input.opt"):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestLintCommand:
    def test_error_finding_exits_one(self, opt_file, capsys):
        rc = main(["lint", *FAST, opt_file(BAD)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "dead-precondition" in out
        assert "input.opt:2" in out  # span points at the Pre: line

    def test_clean_exits_zero(self, opt_file, capsys):
        rc = main(["lint", *FAST, opt_file(CLEAN)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s)" in out

    def test_json_output(self, opt_file, capsys):
        rc = main(["lint", "--json", *FAST, opt_file(BAD)])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        ids = [f["id"] for f in data["findings"]]
        assert any(i.startswith("dead-precondition-") for i in ids)
        assert data["summary"]["error"] >= 1

    def test_sarif_file(self, opt_file, tmp_path, capsys):
        sarif_path = tmp_path / "out.sarif"
        rc = main(["lint", "--sarif", str(sarif_path), *FAST,
                   opt_file(BAD)])
        assert rc == 1
        sarif = json.loads(sarif_path.read_text())
        assert sarif["version"] == "2.1.0"
        results = sarif["runs"][0]["results"]
        assert any(r["ruleId"] == "dead-precondition"
                   and r["level"] == "error" for r in results)

    def test_sarif_stdout(self, opt_file, capsys):
        main(["lint", "--sarif", "-", *FAST, opt_file(CLEAN)])
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["runs"][0]["tool"]["driver"]["name"] == \
            "alive-repro-lint"

    def test_allowlist_suppresses_error(self, opt_file, tmp_path, capsys):
        rc = main(["lint", "--json", *FAST, opt_file(BAD)])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        allow = tmp_path / "allow.txt"
        allow.write_text("\n".join(f["id"] for f in data["findings"]) + "\n")
        rc = main(["lint", "--allowlist", str(allow), *FAST,
                   opt_file(BAD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "suppressed by allowlist" in out

    def test_no_semantic_tier(self, opt_file, capsys):
        rc = main(["lint", "--no-semantic", opt_file(BAD)])
        out = capsys.readouterr().out
        assert rc == 0  # the dead precondition needs the SMT tier
        assert "dead-precondition" not in out

    def test_only_unknown_pass_rejected(self, opt_file, capsys):
        rc = main(["lint", "--only", "nonsense", opt_file(CLEAN)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "unknown lint pass" in err

    def test_only_selects_pass(self, opt_file, capsys):
        rc = main(["lint", "--only", "rewrite-cycle", "--json",
                   *FAST, opt_file(CYCLIC)])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert all(f["pass"] == "rewrite-cycle" for f in data["findings"])
        assert data["findings"]

    def test_missing_file_is_clean_error(self, capsys):
        rc = main(["lint", "/nonexistent/rules.opt"])
        assert rc == 1

    def test_stats_do_not_corrupt_json_stdout(self, opt_file, capsys):
        main(["lint", "--json", "--stats", *FAST, opt_file(BAD)])
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout must stay pure JSON
        assert "jobs executed" in captured.err


class TestCyclesAlias:
    def test_cycle_detected_text(self, opt_file, capsys):
        rc = main(["cycles", *FAST_CYCLES, opt_file(CYCLIC)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "cycle seeded by" in out

    def test_clean_set(self, opt_file, capsys):
        rc = main(["cycles", *FAST_CYCLES, opt_file(CLEAN)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no rewrite cycles detected" in out

    def test_json_matches_lint_schema(self, opt_file, capsys):
        path = opt_file(CYCLIC)
        rc = main(["cycles", "--json", *FAST_CYCLES, path])
        alias = json.loads(capsys.readouterr().out)
        assert rc == 1
        main(["lint", "--only", "rewrite-cycle", "--json",
              *FAST_CYCLES, path])
        direct = json.loads(capsys.readouterr().out)
        assert alias["findings"] == direct["findings"]
