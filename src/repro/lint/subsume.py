"""Structural rule-on-rule matching for the subsumption lint.

``match_templates(general, specific)`` asks: does the *general* rule's
source template match every program the *specific* rule's source
template matches?  The matcher mirrors the runtime pattern matcher in
:mod:`repro.opt.matcher` — purely syntactic, no commutativity, no
algebraic reasoning — because that is exactly how a pattern-directed
rewriter built from these rules would behave: if the general source
pattern structurally covers the specific one (inputs bind anything,
abstract constants bind any constant expression, flag sets may only
shrink), then every concrete match of the specific rule is also a match
of the general rule, and firing order decides which one wins.

The structural match is only half the story: subsumption additionally
needs ``pre_general[bindings] ⇐ pre_specific``, which is an SMT
question answered by :func:`repro.lint.semantic.check_subsumption`.
This module supplies the bindings and the substituted predicate.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..ir import ast
from ..ir.constexpr import ConstExpr, is_constant_value
from ..ir.precond import (
    Predicate,
    PredAnd,
    PredCall,
    PredCmp,
    PredNot,
    PredOr,
    PredTrue,
)
from ..core.typecheck import TypeChecker
from ..typing.constraints import TypeConstraintError

#: memory operations are out of scope for the subsumption lint — their
#: matching depends on aliasing context a structural matcher cannot see
_MEMORY_OPS = (ast.Load, ast.Store, ast.Alloca, ast.GEP, ast.Unreachable)


def uses_memory(t: ast.Transformation) -> bool:
    return any(isinstance(i, _MEMORY_OPS)
               for i in list(t.src.values()) + list(t.tgt.values()))


def _is_fp_value(v: ast.Value) -> bool:
    if isinstance(v, (ast.FBinOp, ast.FCmp, ast.FPLiteral)):
        return True
    return isinstance(v, ast.ConvOp) and v.opcode in ast.FP_CONVOPS


def uses_fp(t: ast.Transformation) -> bool:
    """Does the rule contain any floating-point instruction or literal?

    The semantic lint tier reasons with integer-only machinery
    (feasibility models, attribute inference, the concrete rewrite
    driver), none of which model IEEE-754; FP rules are diverted to an
    explicit ``unsupported-fp`` info finding instead of being silently
    half-analyzed or crashing a worker."""
    for v in list(t.src.values()) + list(t.tgt.values()):
        if _is_fp_value(v) or any(_is_fp_value(o) for o in v.operands()):
            return True
    return False


def _fp_tainted_ids(t: ast.Transformation) -> set:
    """Identities of values that are floating-point *typed*.

    Covers more than :func:`_is_fp_value`: an integer-looking operand
    (input, abstract constant) that feeds an FP instruction is FP-typed
    too, so the taint walks instruction operand slots by direction —
    ``fptosi``/``fptoui`` consume FP, ``sitofp``/``uitofp`` produce it,
    ``fpext``/``fptrunc`` do both.
    """
    tainted: set = set()
    for v in ast._collect_values(list(t.src.values())
                                 + list(t.tgt.values())):
        if isinstance(v, ast.FBinOp):
            tainted.add(id(v))
            tainted.update(id(o) for o in v.operands())
        elif isinstance(v, ast.FCmp):
            tainted.update(id(o) for o in v.operands())
        elif isinstance(v, ast.FPLiteral):
            tainted.add(id(v))
        elif isinstance(v, ast.ConvOp) and v.opcode in ast.FP_CONVOPS:
            if v.opcode in ("fptosi", "fptoui"):
                tainted.add(id(v.x))
            elif v.opcode in ("sitofp", "uitofp"):
                tainted.add(id(v))
            else:
                tainted.add(id(v))
                tainted.add(id(v.x))
    return tainted


def _pre_atom_list(p: Predicate) -> list:
    if isinstance(p, (PredAnd, PredOr)):
        out: list = []
        for q in p.ps:
            out.extend(_pre_atom_list(q))
        return out
    if isinstance(p, PredNot):
        return _pre_atom_list(p.p)
    if isinstance(p, (PredCmp, PredCall)):
        return [p]
    return []


def integer_only_pre(t: ast.Transformation) -> bool:
    """Does every precondition atom stay on the integer side of the rule?

    True when no atom argument's operand cone contains an FP value or an
    FP-typed operand (per :func:`_fp_tainted_ids`).  An FP rule whose
    precondition passes this check can still run the exact feasibility
    analysis — the precondition encoding never touches the FP circuits.
    """
    tainted = _fp_tainted_ids(t)
    for atom in _pre_atom_list(t.pre):
        args = ([atom.a, atom.b] if isinstance(atom, PredCmp)
                else list(atom.args))
        for arg in args:
            for v in ast._collect_values([arg]):
                if _is_fp_value(v) or id(v) in tainted:
                    return False
    return True


def _unwrap(v: ast.Value) -> ast.Value:
    """See through Copy pseudo-instructions on either side."""
    while isinstance(v, ast.Copy):
        v = v.x
    return v


def _values_equal(a: ast.Value, b: ast.Value) -> bool:
    """Consistency check for a name bound twice (e.g. ``add %x, %x``)."""
    a, b = _unwrap(a), _unwrap(b)
    if a is b:
        return True
    if isinstance(a, ast.Literal) and isinstance(b, ast.Literal):
        return a.value == b.value
    if isinstance(a, ConstExpr) and isinstance(b, ConstExpr):
        return (a.op == b.op and len(a.args) == len(b.args)
                and all(_values_equal(x, y)
                        for x, y in zip(a.args, b.args)))
    named_a = getattr(a, "name", None)
    named_b = getattr(b, "name", None)
    return named_a is not None and named_a == named_b


def _ty_subsumes(g_ty, s_ty) -> bool:
    """A general annotation must not be stricter than the specific one."""
    if g_ty is None:
        return True
    return s_ty is not None and str(g_ty) == str(s_ty)


def _match_value(g: ast.Value, s: ast.Value,
                 bindings: Dict[str, ast.Value]) -> bool:
    g, s = _unwrap(g), _unwrap(s)

    if isinstance(g, ast.Input) and not isinstance(g, ast.ConstantSymbol):
        prior = bindings.get(g.name)
        if prior is not None:
            return _values_equal(prior, s)
        bindings[g.name] = s
        return True

    if isinstance(g, ast.ConstantSymbol):
        # an abstract constant covers exactly the constant-valued shapes
        if not (is_constant_value(s) or isinstance(s, ast.ConstantSymbol)):
            return False
        prior = bindings.get(g.name)
        if prior is not None:
            return _values_equal(prior, s)
        bindings[g.name] = s
        return True

    if isinstance(g, ast.Literal):
        return isinstance(s, ast.Literal) and g.value == s.value

    if isinstance(g, ast.UndefValue):
        return isinstance(s, ast.UndefValue)

    if isinstance(g, ConstExpr):
        return (isinstance(s, ConstExpr) and g.op == s.op
                and len(g.args) == len(s.args)
                and all(_match_value(ga, sa, bindings)
                        for ga, sa in zip(g.args, s.args)))

    if isinstance(g, ast.BinOp):
        if not (isinstance(s, ast.BinOp) and g.opcode == s.opcode):
            return False
        # the general pattern may demand *fewer* flags, never more
        if not set(g.flags) <= set(s.flags):
            return False
        if not _ty_subsumes(g.ty, s.ty):
            return False
        if not (_match_value(g.a, s.a, bindings)
                and _match_value(g.b, s.b, bindings)):
            return False
        return _bind_name(g, s, bindings)

    if isinstance(g, ast.ICmp):
        if not (isinstance(s, ast.ICmp) and g.cond == s.cond):
            return False
        if not (_match_value(g.a, s.a, bindings)
                and _match_value(g.b, s.b, bindings)):
            return False
        return _bind_name(g, s, bindings)

    if isinstance(g, ast.Select):
        if not isinstance(s, ast.Select):
            return False
        if not (_match_value(g.c, s.c, bindings)
                and _match_value(g.a, s.a, bindings)
                and _match_value(g.b, s.b, bindings)):
            return False
        return _bind_name(g, s, bindings)

    if isinstance(g, ast.ConvOp):
        if not (isinstance(s, ast.ConvOp) and g.opcode == s.opcode):
            return False
        if not (_ty_subsumes(g.ty, s.ty)
                and _ty_subsumes(g.src_ty, s.src_ty)):
            return False
        if not _match_value(g.x, s.x, bindings):
            return False
        return _bind_name(g, s, bindings)

    return False


def _bind_name(g: ast.Value, s: ast.Value,
               bindings: Dict[str, ast.Value]) -> bool:
    """Record what a general temporary matched, so a general
    precondition mentioning it can be substituted."""
    name = getattr(g, "name", None)
    if name is None:
        return True
    prior = bindings.get(name)
    if prior is not None:
        return _values_equal(prior, s)
    bindings[name] = s
    return True


def _classes_compatible(general: ast.Transformation,
                        specific: ast.Transformation,
                        bindings: Dict[str, ast.Value]) -> bool:
    """Typing sanity: values the general rule forces into one type class
    must have landed on specific values that share a class too."""
    try:
        g_checker = TypeChecker()
        g_system = g_checker.check_transformation(general)
        s_checker = TypeChecker()
        s_system = s_checker.check_transformation(specific)
    except (ast.AliveError, TypeConstraintError):
        return False
    groups: Dict[str, set] = {}
    for g_name, s_val in bindings.items():
        s_val = _unwrap(s_val)
        if not isinstance(s_val, (ast.Input, ast.ConstantSymbol,
                                  ast.Instruction)):
            continue  # literal/expression: no named class to compare
        s_name = s_val.name
        g_root = g_system.find("v:" + g_name)
        s_root = s_system.find("v:" + s_name)
        groups.setdefault(g_root, set()).add(s_root)
    return all(len(roots) == 1 for roots in groups.values())


def match_templates(general: ast.Transformation,
                    specific: ast.Transformation
                    ) -> Optional[Dict[str, ast.Value]]:
    """Bindings from general names to specific values, or None.

    A non-None result means: every program the specific source template
    matches is also matched by the general source template (with the
    returned bindings), so the general rule fires first in source order
    and the specific rule is structurally shadowed — pending the
    precondition-implication check.
    """
    if uses_memory(general) or uses_memory(specific):
        return None
    bindings: Dict[str, ast.Value] = {}
    try:
        g_root = general.src[general.root]
        s_root = specific.src[specific.root]
        if not _match_value(g_root, s_root, bindings):
            return None
        if not _classes_compatible(general, specific, bindings):
            return None
    except (ast.AliveError, KeyError):
        return None
    return bindings


class SubstitutionError(ast.AliveError):
    """A predicate mentioned a name the match did not bind."""


def substitute_value(v: ast.Value,
                     bindings: Dict[str, ast.Value]) -> ast.Value:
    if isinstance(v, (ast.Literal, ast.UndefValue)):
        return v
    if isinstance(v, ConstExpr):
        return ConstExpr(v.op, [substitute_value(a, bindings)
                                for a in v.args])
    name = getattr(v, "name", None)
    if name is not None:
        try:
            return bindings[name]
        except KeyError:
            raise SubstitutionError(
                "precondition name %s not bound by the match" % name)
    raise SubstitutionError("cannot substitute %r" % (v,))


def substitute_predicate(pred: Predicate,
                         bindings: Dict[str, ast.Value]) -> Predicate:
    """The general precondition re-expressed over specific values."""
    if isinstance(pred, PredTrue):
        return pred
    if isinstance(pred, PredAnd):
        return PredAnd(*[substitute_predicate(p, bindings)
                         for p in pred.ps])
    if isinstance(pred, PredOr):
        return PredOr(*[substitute_predicate(p, bindings)
                        for p in pred.ps])
    if isinstance(pred, PredNot):
        return PredNot(substitute_predicate(pred.p, bindings))
    if isinstance(pred, PredCmp):
        return PredCmp(pred.op,
                       substitute_value(pred.a, bindings),
                       substitute_value(pred.b, bindings))
    if isinstance(pred, PredCall):
        return PredCall(pred.fn,
                        [substitute_value(a, bindings)
                         for a in pred.args])
    raise SubstitutionError("unknown predicate %r" % (pred,))
