"""Batch-verification engine: cold vs. warm cache, 1 vs. N workers.

The paper's pipeline re-verifies the same corpus constantly (§6: the
334-transformation InstCombine translation was checked after every
change).  This benchmark measures the two levers the batch engine adds
over the sequential driver — parallel scheduling and the persistent
result cache — on the bundled corpus, and emits a machine-readable
``BENCH_engine.json`` artifact alongside the text results.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

from repro.core import Config
from repro.engine import EngineStats, ResultCache, run_batch
from repro.suite import load_all_flat

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
ARTIFACT = os.path.join(RESULTS_DIR, "BENCH_engine.json")

CONFIG = Config(max_width=4, prefer_widths=(4,), ptr_width=8,
                max_type_assignments=2)


def _run(corpus, jobs, cache):
    stats = EngineStats()
    start = time.perf_counter()
    results = run_batch(corpus, CONFIG, jobs=jobs, cache=cache, stats=stats)
    elapsed = time.perf_counter() - start
    verdict_counts = {}
    for r in results:
        verdict_counts[r.status] = verdict_counts.get(r.status, 0) + 1
    return {
        "elapsed": elapsed,
        "verdicts": verdict_counts,
        "stats": stats.to_dict(),
    }


def run_scenarios(tmp_dir):
    corpus = load_all_flat()
    workers = max(2, min(4, multiprocessing.cpu_count()))
    cache_path = os.path.join(tmp_dir, "cache.jsonl")

    rows = {}
    rows["cold_1_worker"] = _run(corpus, 1, None)
    rows["cold_%d_workers" % workers] = _run(
        corpus, workers, ResultCache(cache_path)
    )
    rows["warm_%d_workers" % workers] = _run(
        corpus, workers, ResultCache(cache_path)
    )
    rows["warm_1_worker"] = _run(corpus, 1, ResultCache(cache_path))
    return corpus, workers, rows


def test_engine(benchmark, report, tmp_path):
    corpus, workers, rows = benchmark.pedantic(
        run_scenarios, args=(str(tmp_path),), iterations=1, rounds=1
    )

    cold_seq = rows["cold_1_worker"]["elapsed"]
    cold_par = rows["cold_%d_workers" % workers]["elapsed"]
    warm_par = rows["warm_%d_workers" % workers]["elapsed"]

    report("repro.engine — batch verification on the bundled corpus")
    report("")
    report("%d transformations, %d refinement jobs"
           % (len(corpus), rows["cold_1_worker"]["stats"]["jobs_total"]))
    report("")
    report("%-18s %10s %10s %12s" % ("scenario", "seconds", "jobs run",
                                     "cache hits"))
    report("-" * 54)
    for label, row in rows.items():
        report("%-18s %10.2f %10d %12d" % (
            label, row["elapsed"], row["stats"]["jobs_executed"],
            row["stats"]["cache_hits"],
        ))
    report("")
    report("parallel speedup (cold, %d workers, %d cpus): x%.2f"
           % (workers, multiprocessing.cpu_count(),
              cold_seq / max(cold_par, 1e-9)))
    report("warm-cache speedup vs cold sequential: x%.1f"
           % (cold_seq / max(warm_par, 1e-9)))

    # every scenario must agree on every verdict
    verdicts = [row["verdicts"] for row in rows.values()]
    assert all(v == verdicts[0] for v in verdicts[1:])
    # a warm cache must replay everything
    for label, row in rows.items():
        if label.startswith("warm"):
            assert row["stats"]["jobs_executed"] == 0

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(ARTIFACT, "w") as handle:
        json.dump(
            {
                "corpus_size": len(corpus),
                "workers": workers,
                "cpus": multiprocessing.cpu_count(),
                "scenarios": rows,
                "parallel_speedup": cold_seq / max(cold_par, 1e-9),
                "warm_cache_speedup": cold_seq / max(warm_par, 1e-9),
            },
            handle, indent=2, sort_keys=True,
        )
    report("")
    report("artifact: %s" % os.path.relpath(ARTIFACT,
                                            os.path.dirname(__file__)))
