"""Refinement checking for one concrete type assignment (paper §3.1.2).

Correctness of a transformation at a type assignment requires, for every
instruction name common to the source and target templates:

1. ``∀ I,P,Ū ∃ U : ψ ⇒ δ̄``   — target defined when source is;
2. ``∀ I,P,Ū ∃ U : ψ ⇒ ρ̄``   — target poison-free when source is;
3. ``∀ I,P,Ū ∃ U : ψ ⇒ ι = ῑ`` — equal results;

with ``ψ ≡ φ ∧ δ ∧ ρ`` — the precondition plus the aggregated
definedness/poison constraints of the *checked source instruction*
(§3.1.3 builds ψ per instruction) and the side constraints of
approximated analyses.  With memory operations, ``ψ`` additionally includes the
alloca constraints α and ᾱ and a fourth condition equates the final
memories pointwise (§3.3.2).

Validity is decided by refuting the negation, which peels one quantifier
alternation (paper §5): the negated query is ∃ I,P,Ū (,i) ∀ U and goes
to :func:`repro.smt.solver.solve_exists_forall`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..ir import ast
from ..smt import softfloat as SF
from ..smt import terms as T
from ..smt.sat import UNKNOWN
from ..smt.solver import IncrementalSession, solve_exists_forall
from ..typing.types import FloatType
from .config import Config
from .counterexample import (
    KIND_DOMAIN,
    KIND_MEMORY,
    KIND_POISON,
    KIND_VALUE,
    Counterexample,
    build_counterexample,
)
from .semantics import EncodeContext, TemplateEncoder, Unsupported, encode_precondition
from .typecheck import TypeAssignment


class CheckOutcome:
    """Result of checking one type assignment.

    ``status`` is "valid", "invalid", "unknown" or "unsupported"; on
    "invalid" the counterexample describes the failure in the paper's
    Figure 5 format.  All fields are plain data — no solver handles or
    closures — so outcomes pickle across the batch engine's process
    pool and serialize to JSON for its persistent cache.

    ``detail`` carries the human-readable reason for "unsupported";
    ``timed_out`` distinguishes a wall-clock budget expiry from a
    conflict-budget expiry among "unknown" outcomes.  ``absint_proved``
    marks a "valid" outcome discharged by the abstract-interpretation
    tier without any solver query.
    """

    def __init__(self, status: str, counterexample: Optional[Counterexample] = None,
                 kind: Optional[str] = None, queries: int = 0,
                 detail: str = "", timed_out: bool = False,
                 absint_proved: bool = False):
        self.status = status
        self.counterexample = counterexample
        self.kind = kind
        self.queries = queries
        self.detail = detail
        self.timed_out = timed_out
        self.absint_proved = absint_proved

    def to_dict(self) -> dict:
        """JSON-serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "status": self.status,
            "counterexample": (
                None if self.counterexample is None
                else self.counterexample.to_dict()
            ),
            "kind": self.kind,
            "queries": self.queries,
            "detail": self.detail,
            "timed_out": self.timed_out,
            "absint_proved": self.absint_proved,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CheckOutcome":
        cex = data.get("counterexample")
        return cls(
            status=data["status"],
            counterexample=None if cex is None else Counterexample.from_dict(cex),
            kind=data.get("kind"),
            queries=data.get("queries", 0),
            detail=data.get("detail", ""),
            timed_out=data.get("timed_out", False),
            absint_proved=data.get("absint_proved", False),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CheckOutcome):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __ne__(self, other) -> bool:
        eq = self.__eq__(other)
        return eq if eq is NotImplemented else not eq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CheckOutcome(%s, kind=%r)" % (self.status, self.kind)


def _value_mismatch(ctx, src_enc, src_inst: ast.Instruction,
                    src_val: T.Term, tgt_val: T.Term) -> T.Term:
    """The negated value-equality goal for one checked instruction.

    Integer values must match bit for bit.  Floating-point values use
    :func:`repro.smt.softfloat.refines_eq`: NaN-payload-insensitive
    always (LLVM may return any NaN), and additionally ±0-insensitive
    when the checked source instruction carries ``nsz`` (or ``fast``) —
    the flag's entire licence is to ignore the sign of a zero result.

    ``arcp`` (or ``fast``) on a source ``fdiv`` grants the reciprocal
    freedom: the target may compute ``a * (1/b)`` instead of ``a / b``,
    so the goal accepts either value.  The alternative is encoded from
    the *source* operand encodings — for the ``x / C`` rules the
    ``1/C`` sub-circuit constant-folds (see :func:`SF.fbinop`) and the
    target circuit becomes structurally identical, which is what keeps
    those proofs cheap.
    """
    ty = ctx.type_of(src_inst)
    if isinstance(ty, FloatType):
        fmt = SF.format_for_kind(ty.kind)
        flags = getattr(src_inst, "flags", ())
        nsz = "nsz" in flags or "fast" in flags
        mismatch = T.not_(SF.refines_eq(fmt, src_val, tgt_val,
                                        sign_of_zero_insensitive=nsz))
        arcp = "arcp" in flags or "fast" in flags
        if arcp and isinstance(src_inst, ast.FBinOp) and \
                src_inst.opcode == "fdiv":
            recip = SF.fbinop(
                "fmul", fmt, src_enc.value(src_inst.a),
                SF.fbinop("fdiv", fmt, SF.fp_const(fmt, 1.0),
                          src_enc.value(src_inst.b)))
            mismatch = T.and_(mismatch, T.not_(SF.refines_eq(
                fmt, recip, tgt_val, sign_of_zero_insensitive=nsz)))
        return mismatch
    return T.ne(src_val, tgt_val)


def _uses_memory(t: ast.Transformation) -> bool:
    for inst in list(t.src.values()) + list(t.tgt.values()):
        if isinstance(inst, (ast.Alloca, ast.Load, ast.Store, ast.GEP)):
            return True
        if isinstance(inst, ast.ConvOp) and inst.opcode in ("inttoptr",):
            return True
    return False


def check_assignment(
    t: ast.Transformation,
    types: TypeAssignment,
    config: Config,
    session: Optional[IncrementalSession] = None,
) -> CheckOutcome:
    """Run the refinement checks for one concrete type assignment.

    With ``config.incremental`` the 3×k refinement queries of this
    assignment (and their CEGIS rounds) share one
    :class:`IncrementalSession`: the hypothesis ψ and the template
    encodings bit-blast once, later queries add only their goal, and
    learned clauses carry over.  A caller may hand in a warm *session*
    (the batch engine keeps one resident per worker); it is verified
    against this assignment's fingerprint and reset on mismatch.

    With ``config.absint`` the solver-verified abstract tier runs
    first; a must-answer of "refines" returns "valid" with zero
    queries.  The tier is deterministic in (t, types, config), so the
    outcome of a cached job never depends on which path produced it.
    The ``engine.absint.prove`` chaos site suppresses the fast path —
    a forced wrong "unknown" only ever sends more work to the solver,
    which is the direction verdict parity survives by construction.
    """
    if config.absint:
        from .. import chaos

        if chaos.fire("engine.absint.prove", name=t.name) is None:
            from ..absint.prove import prove_refinement

            if prove_refinement(t, types, config):
                return CheckOutcome("valid", queries=0, absint_proved=True)
    deadline = (
        time.monotonic() + config.time_limit
        if config.time_limit is not None
        else None
    )
    if config.incremental:
        fingerprint = types.signature()
        if session is None:
            session = IncrementalSession(fingerprint)
        elif session.fingerprint != fingerprint:
            session.reset(fingerprint)
    else:
        session = None

    def expired() -> bool:
        return deadline is not None and time.monotonic() >= deadline

    ctx = EncodeContext(types, config)
    src_enc = TemplateEncoder(ctx, is_target=False)
    tgt_enc = TemplateEncoder(ctx, is_target=True, source=src_enc)

    memory = None
    if _uses_memory(t):
        from .memory import MemoryModel

        memory = MemoryModel(ctx)
        ctx.memory = memory
        src_enc.memory = memory.template_state(is_target=False)
        tgt_enc.memory = memory.template_state(is_target=True)

    src_enc.encode_template(t.src.values())
    phi = encode_precondition(t.pre, src_enc)
    tgt_enc.encode_template(t.tgt.values())

    common_parts = [phi]
    common_parts.extend(ctx.side_constraints)
    if memory is not None:
        common_parts.extend(memory.alloca_constraints())

    def psi_for(src_inst: ast.Instruction) -> T.Term:
        """ψ ≡ φ ∧ δ ∧ ρ — with δ/ρ of the *checked* source instruction
        (paper §3.1.3 builds ψ per instruction: the formulas for %0 use
        δ%0, the ones for %1 use δ%1)."""
        return T.and_(
            *common_parts,
            src_enc.defined(src_inst),
            src_enc.poison_free(src_inst),
        )

    outer = (
        list(ctx.input_terms().values())
        + list(ctx.analysis_bools)
        + list(tgt_enc.undef_vars)
    )
    if memory is not None:
        outer.extend(memory.outer_vars())
    inner = list(src_enc.undef_vars)
    if memory is not None:
        inner.extend(
            v for v in memory.source_undef_vars() if v not in inner
        )

    queries = 0
    # Pairs with identical encodings are skipped implicitly: the solver
    # refutes `x != x` immediately through constant folding.
    common = [n for n in t.tgt if n in t.src]
    for name in common:
        src_inst = t.src[name]
        tgt_inst = t.tgt[name]
        psi = psi_for(src_inst)
        checks = [
            (KIND_DOMAIN, T.not_(tgt_enc.defined(tgt_inst))),
            (KIND_POISON, T.not_(tgt_enc.poison_free(tgt_inst))),
        ]
        if not isinstance(src_inst, (ast.Store, ast.Unreachable)):
            checks.append(
                (
                    KIND_VALUE,
                    _value_mismatch(ctx, src_enc, src_inst,
                                    src_enc.value(src_inst),
                                    tgt_enc.value(tgt_inst)),
                )
            )
        for kind, negated_goal in checks:
            query = T.and_(psi, negated_goal)
            if config.simplify_queries:
                from ..smt.simplify import simplify

                query = simplify(query)
            queries += 1
            result = solve_exists_forall(
                outer, inner, query, conflict_limit=config.conflict_limit,
                deadline=deadline, session=session,
            )
            if result.status == UNKNOWN:
                return CheckOutcome("unknown", kind=kind, queries=queries,
                                    timed_out=expired())
            if result.is_sat():
                cex = build_counterexample(
                    kind, name, t, ctx, src_enc, tgt_enc, result.model
                )
                return CheckOutcome("invalid", cex, kind, queries)

    if memory is not None:
        queries += 1
        mem_query = memory.memory_equality_refutation(
            psi=T.and_(*common_parts),
            src_state=src_enc.memory,
            tgt_state=tgt_enc.memory,
        )
        result = solve_exists_forall(
            outer + [memory.probe_address()],
            inner,
            mem_query,
            conflict_limit=config.conflict_limit,
            deadline=deadline,
            session=session,
        )
        if result.status == UNKNOWN:
            return CheckOutcome("unknown", kind=KIND_MEMORY, queries=queries,
                                timed_out=expired())
        if result.is_sat():
            cex = build_counterexample(
                KIND_MEMORY, t.root, t, ctx, src_enc, tgt_enc, result.model
            )
            return CheckOutcome("invalid", cex, KIND_MEMORY, queries)

    return CheckOutcome("valid", queries=queries)
