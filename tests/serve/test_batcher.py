"""MicroBatcher: flush triggers, dedup, drain, dispatch failure."""

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher


def payload(key, **extra):
    return {"key": key, "text": "rule-%s" % key, "index": 0, "knobs": {},
            **extra}


class RecordingDispatch:
    """Dispatch stub that records batches and answers every key."""

    def __init__(self, delay=0.0, fail=False):
        self.batches = []
        self.delay = delay
        self.fail = fail
        self.started = asyncio.Event()
        self.release = asyncio.Event()
        self.release.set()

    async def __call__(self, batch):
        self.batches.append([p["key"] for p in batch])
        self.started.set()
        if self.delay:
            await asyncio.sleep(self.delay)
        await self.release.wait()
        if self.fail:
            raise RuntimeError("boom")
        return {p["key"]: {"status": "valid", "key": p["key"]}
                for p in batch}


def run(coro):
    return asyncio.run(coro)


def test_flush_on_max_batch():
    async def scenario():
        dispatch = RecordingDispatch()
        batcher = MicroBatcher(dispatch, max_batch=3, max_wait_ms=10_000)
        futures = [batcher.submit(payload(str(i)))[0] for i in range(3)]
        outcomes = await asyncio.gather(*futures)
        assert dispatch.batches == [["0", "1", "2"]]
        assert [o["status"] for o in outcomes] == ["valid"] * 3

    run(scenario())


def test_flush_on_max_wait():
    async def scenario():
        dispatch = RecordingDispatch()
        batcher = MicroBatcher(dispatch, max_batch=100, max_wait_ms=10)
        future, fresh = batcher.submit(payload("only"))
        assert fresh
        outcome = await asyncio.wait_for(future, timeout=5)
        assert outcome["status"] == "valid"
        assert dispatch.batches == [["only"]]

    run(scenario())


def test_inflight_dedup_shares_future():
    async def scenario():
        dispatch = RecordingDispatch()
        dispatch.release.clear()  # hold the first batch in flight
        batcher = MicroBatcher(dispatch, max_batch=1, max_wait_ms=0)
        first, fresh_first = batcher.submit(payload("k"))
        await dispatch.started.wait()  # "k" is now dispatched, unresolved
        second, fresh_second = batcher.submit(payload("k"))
        assert fresh_first and not fresh_second
        assert first is second
        assert batcher.coalesced == 1
        assert batcher.is_inflight("k")
        dispatch.release.set()
        await first
        assert not batcher.is_inflight("k")
        # dispatched once despite two submits
        assert dispatch.batches == [["k"]]

    run(scenario())


def test_queued_dedup_before_dispatch():
    async def scenario():
        dispatch = RecordingDispatch()
        batcher = MicroBatcher(dispatch, max_batch=10, max_wait_ms=50)
        first, _ = batcher.submit(payload("k"))
        second, fresh = batcher.submit(payload("k"))
        assert not fresh and first is second
        assert batcher.queue_depth == 1  # not enqueued twice
        await first

    run(scenario())


def test_flushes_are_serialized_and_coalesce_backlog():
    async def scenario():
        dispatch = RecordingDispatch()
        dispatch.release.clear()
        batcher = MicroBatcher(dispatch, max_batch=2, max_wait_ms=0)
        futures = [batcher.submit(payload(str(i)))[0] for i in range(2)]
        await dispatch.started.wait()
        # while batch 1 is out, five more jobs accumulate…
        futures += [batcher.submit(payload(str(i)))[0] for i in range(2, 7)]
        assert len(dispatch.batches) == 1
        dispatch.release.set()
        await asyncio.gather(*futures)
        # …and drain in max_batch-sized waves, not one dispatch each
        assert dispatch.batches[0] == ["0", "1"]
        assert [key for batch in dispatch.batches[1:] for key in batch] == \
            ["2", "3", "4", "5", "6"]
        assert all(len(batch) <= 2 for batch in dispatch.batches)

    run(scenario())


def test_dispatch_failure_resolves_futures_transient():
    async def scenario():
        dispatch = RecordingDispatch(fail=True)
        batcher = MicroBatcher(dispatch, max_batch=2, max_wait_ms=0)
        futures = [batcher.submit(payload(str(i)))[0] for i in range(2)]
        outcomes = await asyncio.gather(*futures)
        for outcome in outcomes:
            assert outcome["status"] == "unknown"
            assert outcome["transient"] is True
            assert "boom" in outcome["detail"]
        # the flush loop survived the exception
        future, _ = batcher.submit(payload("after"))
        dispatch.fail = False
        assert (await future)["status"] == "valid"

    run(scenario())


def test_missing_outcome_resolves_transient():
    async def scenario():
        async def partial_dispatch(batch):
            return {}  # engine answered nothing

        batcher = MicroBatcher(partial_dispatch, max_batch=1, max_wait_ms=0)
        future, _ = batcher.submit(payload("k"))
        outcome = await future
        assert outcome["status"] == "unknown" and outcome["transient"]

    run(scenario())


def test_drain_flushes_everything_then_rejects():
    async def scenario():
        dispatch = RecordingDispatch()
        batcher = MicroBatcher(dispatch, max_batch=2, max_wait_ms=10_000)
        futures = [batcher.submit(payload(str(i)))[0] for i in range(5)]
        await batcher.drain()
        assert batcher.pending == 0 and batcher.queue_depth == 0
        assert all(future.done() for future in futures)
        assert sum(len(batch) for batch in dispatch.batches) == 5
        with pytest.raises(RuntimeError):
            batcher.submit(payload("late"))

    run(scenario())


def test_drain_idle_batcher():
    async def scenario():
        batcher = MicroBatcher(RecordingDispatch())
        await batcher.drain()  # no submissions, no task — must not hang

    run(scenario())


def test_counters():
    async def scenario():
        dispatch = RecordingDispatch()
        batcher = MicroBatcher(dispatch, max_batch=2, max_wait_ms=5)
        first, _ = batcher.submit(payload("a"))
        batcher.submit(payload("a"))
        second, _ = batcher.submit(payload("b"))
        await asyncio.gather(first, second)
        assert batcher.submitted == 2
        assert batcher.coalesced == 1
        assert batcher.flushed_batches == dispatch.batches.__len__()

    run(scenario())
