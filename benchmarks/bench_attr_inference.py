"""§6.3 — inferring instruction attributes (Figure 6 algorithm).

Paper: "Out of the 334 transformations we translated, Alive was able to
weaken the precondition for one transformation and strengthen the
postcondition for 70 (21%) transformations.  The most strengthening
took place for transformations in AddSub, MulDivRem, and Shifts, each
with around 40% of transformations getting stronger postconditions."

We run the inference over every corpus transformation that has
attribute slots and report the same aggregates.  Expected shape: a
substantial fraction of flag-bearing transformations gain target
attributes, concentrated in the arithmetic categories (AddSub,
MulDivRem, Shifts) rather than the bitwise ones.
"""

from __future__ import annotations

from repro.core.attrs import attribute_slots, infer_attributes
from repro.suite import CATEGORIES, load_category


def run_attr_inference(config):
    per_category = {}
    for cat in CATEGORIES:
        stats = {"total": 0, "with_slots": 0, "weakened": 0, "strengthened": 0}
        for t in load_category(cat):
            stats["total"] += 1
            if not attribute_slots(t):
                continue
            stats["with_slots"] += 1
            result = infer_attributes(t, config)
            if result.precondition_weakened:
                stats["weakened"] += 1
            if result.postcondition_strengthened:
                stats["strengthened"] += 1
        per_category[cat] = stats
    return per_category


def test_attr_inference(benchmark, bench_config, report):
    per_category = benchmark.pedantic(
        run_attr_inference, args=(bench_config,), iterations=1, rounds=1
    )

    report("§6.3 — attribute inference over the corpus")
    report("")
    report("paper: 1/334 preconditions weakened; 70/334 (21%) post-")
    report("conditions strengthened; AddSub/MulDivRem/Shifts ~40% each")
    report("")
    report("%-18s %6s %10s %9s %13s" %
           ("File", "opts", "w/ slots", "weakened", "strengthened"))
    report("-" * 62)
    totals = {"total": 0, "with_slots": 0, "weakened": 0, "strengthened": 0}
    for cat, s in per_category.items():
        report("%-18s %6d %10d %9d %13d" %
               (cat, s["total"], s["with_slots"], s["weakened"],
                s["strengthened"]))
        for k in totals:
            totals[k] += s[k]
    report("-" * 62)
    report("%-18s %6d %10d %9d %13d" %
           ("Total", totals["total"], totals["with_slots"],
            totals["weakened"], totals["strengthened"]))
    pct = 100.0 * totals["strengthened"] / max(1, totals["total"])
    report("")
    report("postconditions strengthened: %.0f%% of all corpus entries "
           "(paper: 21%%)" % pct)

    arith = sum(per_category[c]["strengthened"]
                for c in ("AddSub", "MulDivRem", "Shifts"))
    assert totals["strengthened"] > 0
    # the strengthening concentrates in the arithmetic categories
    assert arith >= totals["strengthened"] * 0.5
