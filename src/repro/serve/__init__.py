"""``repro.serve`` — verification as a service.

The ROADMAP's north star is a resident verification *service*, not a
one-shot CLI: the paper's own workflow (§6 — re-verifying a 334-rule
corpus after every edit) and its descendants (precondition-inference
sweeps, LLM-driven rule screening) are high-QPS, high-duplication
request streams.  This package makes the batch engine long-running:

* :mod:`.server` — an asyncio TCP server speaking newline-delimited
  JSON plus a minimal HTTP shim (``/healthz``, ``/metrics``,
  ``POST /v1/verify``), with graceful drain on SIGTERM;
* :mod:`.batcher` — time/size micro-batching with in-flight
  deduplication on the engine's content-addressed job keys;
* :mod:`.ratelimit` — per-connection token buckets, backing the
  fast-reject admission control;
* :mod:`.metrics` — counters/histograms exported in Prometheus text
  format;
* :mod:`.protocol` — the wire format and the canonical verification
  exit-code mapping (shared with the CLI);
* :mod:`.client` — a blocking client with jittered-backoff retries.

Entry points::

    python -m repro serve --port 7341 --jobs 4      # run the server
    python -m repro submit file.opt --addr :7341    # verify against it

    from repro.serve import VerifyClient
    with VerifyClient("127.0.0.1:7341") as client:
        print(client.submit(rule_text))
"""

from .batcher import MicroBatcher
from .breaker import CircuitBreaker
from .client import ClientError, Overloaded, VerifyClient, parse_addr
from .metrics import Metrics
from .protocol import (EXIT_BUDGET, EXIT_OK, EXIT_REFUTED, ProtocolError,
                       exit_code_for_statuses)
from .ratelimit import TokenBucket
from .server import ServeOptions, VerifyServer, serve_until_signalled

__all__ = [
    "CircuitBreaker",
    "ClientError",
    "EXIT_BUDGET",
    "EXIT_OK",
    "EXIT_REFUTED",
    "Metrics",
    "MicroBatcher",
    "Overloaded",
    "ProtocolError",
    "ServeOptions",
    "TokenBucket",
    "VerifyClient",
    "VerifyServer",
    "exit_code_for_statuses",
    "parse_addr",
    "serve_until_signalled",
]
