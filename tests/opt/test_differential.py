"""Differential testing: the optimizer must preserve semantics.

Random modules are optimized by (a) the verified Alive corpus and
(b) the baseline rules, then executed on random inputs before/after.
The optimized result must *refine* the original: equal values, except
that original poison/UB licenses anything.

This is the repository's own translation-validation safety net — the
same idea the paper's tools family applies to LLVM itself.
"""

import random

import pytest

from repro.ir import intops
from repro.ir.interp import POISON, refines, run_function
from repro.opt import PeepholePass, baseline_rules, compile_opts
from repro.suite import load_all_flat
from repro.workload import WorkloadConfig, generate_module


def snapshot(module, rng, samples_per_fn=8):
    out = []
    for fn in module.functions:
        for _ in range(samples_per_fn):
            args = {a.name: rng.randrange(1 << a.width) for a in fn.args}
            try:
                result = run_function(fn, args)
            except intops.UndefinedBehavior:
                result = "UB"
            out.append((fn.name, args, result))
    return out


def check_refinement(module, baseline_results):
    by_name = {f.name: f for f in module.functions}
    for name, args, expected in baseline_results:
        if expected == "UB" or expected is POISON:
            continue  # UB/poison in the original licenses anything
        got = run_function(by_name[name], args)
        assert refines(expected, got), (name, args, expected, got)


@pytest.mark.parametrize("seed", [1, 7, 21, 2015])
def test_alive_corpus_preserves_semantics(seed):
    module = generate_module(WorkloadConfig(seed=seed, functions=25,
                                            instructions=25))
    rng = random.Random(seed * 13 + 1)
    baseline_results = snapshot(module, rng)
    pass_ = PeepholePass(compile_opts(load_all_flat()))
    pass_.run_module(module)
    for fn in module.functions:
        fn.verify()
    check_refinement(module, baseline_results)


@pytest.mark.parametrize("seed", [3, 11])
def test_baseline_rules_preserve_semantics(seed):
    module = generate_module(WorkloadConfig(seed=seed, functions=20,
                                            instructions=25))
    rng = random.Random(seed * 17 + 5)
    baseline_results = snapshot(module, rng)
    pass_ = PeepholePass(baseline_rules())
    pass_.run_module(module)
    for fn in module.functions:
        fn.verify()
    check_refinement(module, baseline_results)


def test_combined_pipeline_and_exhaustive_small_function():
    """One small function, checked over its entire input space."""
    from repro.ir.module import MArg, MConst, MFunction

    fn = MFunction("f", [MArg("%x", 6)])
    x = fn.args[0]
    nx = fn.add("xor", [x, MConst(63, 6)], 6)
    t = fn.add("add", [nx, MConst(9, 6)], 6)
    m = fn.add("mul", [t, MConst(4, 6)], 6)
    d = fn.add("udiv", [m, MConst(2, 6)], 6)
    fn.ret = d
    expected = {v: run_function(fn, {"%x": v}) for v in range(64)}
    pass_ = PeepholePass(compile_opts(load_all_flat()) + baseline_rules())
    pass_.run_function(fn)
    fn.verify()
    for v in range(64):
        assert run_function(fn, {"%x": v}) == expected[v]
