"""Hash-consed SMT term DAG for the Bool + fixed-width BitVec fragment.

This module is the foundation of the reproduction's SMT substrate (the
original Alive delegates to Z3; we build the solver ourselves).  Terms are
immutable and hash-consed: structurally equal terms are the same Python
object, which makes equality checks O(1) and lets the bit-blaster memoize
on identity.

Construction performs light algebraic simplification (constant folding,
neutral/absorbing elements, double negation) so that the formulas shipped
to the SAT backend stay small.  The simplifier is deliberately local; the
heavier rewrites live in :mod:`repro.smt.simplify`.

The semantics of every operation follows SMT-LIB (which is also what Z3
implements), including the totalization of division by zero:
``bvudiv x 0 = all-ones`` and ``bvurem x 0 = x``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple
from zlib import crc32 as _crc32

from .sorts import BOOL, BitVecSort, Sort, is_bool, is_bv

# ---------------------------------------------------------------------------
# Operation tags
# ---------------------------------------------------------------------------

# Nullary
OP_TRUE = "true"
OP_FALSE = "false"
OP_BVCONST = "bvconst"
OP_VAR = "var"

# Boolean connectives
OP_NOT = "not"
OP_AND = "and"
OP_OR = "or"
OP_XOR_BOOL = "xorb"
OP_IMPLIES = "=>"

# Polymorphic
OP_EQ = "="
OP_ITE = "ite"

# Bitvector arithmetic / logic
OP_BVNOT = "bvnot"
OP_BVNEG = "bvneg"
OP_BVADD = "bvadd"
OP_BVSUB = "bvsub"
OP_BVMUL = "bvmul"
OP_BVUDIV = "bvudiv"
OP_BVSDIV = "bvsdiv"
OP_BVUREM = "bvurem"
OP_BVSREM = "bvsrem"
OP_BVSHL = "bvshl"
OP_BVLSHR = "bvlshr"
OP_BVASHR = "bvashr"
OP_BVAND = "bvand"
OP_BVOR = "bvor"
OP_BVXOR = "bvxor"

# Structural
OP_CONCAT = "concat"
OP_EXTRACT = "extract"
OP_ZEXT = "zero_extend"
OP_SEXT = "sign_extend"

# Comparisons (BV -> Bool)
OP_ULT = "bvult"
OP_ULE = "bvule"
OP_SLT = "bvslt"
OP_SLE = "bvsle"

COMMUTATIVE_OPS = frozenset(
    {OP_AND, OP_OR, OP_XOR_BOOL, OP_EQ, OP_BVADD, OP_BVMUL, OP_BVAND, OP_BVOR, OP_BVXOR}
)

# ---------------------------------------------------------------------------
# Content keys.  Commutative constructors put their operands in a canonical
# order so that ``a+b`` and ``b+a`` intern to one node.  The order must be a
# function of term *content* only: anything address- or hash-seed-based
# (``id()``, the built-in ``hash`` of strings) varies with allocation
# history, so a warm worker process whose term table was populated by
# earlier jobs would canonicalize the same rule differently than a cold
# one — semantically equal but structurally different queries, different
# solver trajectories, different counterexample models, and fused/unfused
# parity breaks.  Every term therefore carries a 64-bit key mixed from its
# op, sort, payload and its children's keys via CRC32 (stable across
# processes, unlike seeded string hashes).  Key ties keep the caller's
# operand order, which is itself content-deterministic.
# ---------------------------------------------------------------------------

_CKEY_MASK = (1 << 64) - 1
_CKEY_PRIME = 0x100000001B3
_OP_CKEYS: Dict[str, int] = {}


def _content_key(op, sort, args, data) -> int:
    h = _OP_CKEYS.get(op)
    if h is None:
        h = _crc32(op.encode()) ^ 0x9E3779B97F4A7C15
        _OP_CKEYS[op] = h
    h = (h * _CKEY_PRIME + (sort.width + 2 if sort is not BOOL else 1)) \
        & _CKEY_MASK
    if data is not None:
        if type(data) is int:
            d = data
        elif type(data) is str:
            d = _crc32(data.encode())
        else:  # extract's (hi, lo)
            d = data[0] * 131071 + data[1]
        h = (h * _CKEY_PRIME + (d & _CKEY_MASK) + 1) & _CKEY_MASK
    for a in args:
        h = (h * _CKEY_PRIME + a._ckey) & _CKEY_MASK
    return h


class Term:
    """An immutable, hash-consed SMT term.

    Attributes:
        op: operation tag (one of the ``OP_*`` constants).
        sort: the term's sort.
        args: child terms.
        data: op-specific payload — the value of a constant, the name of a
            variable, or the ``(hi, lo)`` pair of an extract.
    """

    __slots__ = ("op", "sort", "args", "data", "_hash", "_ckey")

    _table: Dict[tuple, "Term"] = {}

    def __new__(cls, op: str, sort: Sort, args: Tuple["Term", ...] = (), data=None):
        key = (op, sort, tuple(id(a) for a in args), data)
        inst = cls._table.get(key)
        if inst is None:
            inst = object.__new__(cls)
            inst.op = op
            inst.sort = sort
            inst.args = tuple(args)
            inst.data = data
            inst._hash = hash(key)
            inst._ckey = _content_key(op, sort, args, data)
            cls._table[key] = inst
        return inst

    def __hash__(self) -> int:
        return self._hash

    # Hash-consing makes structural equality identity; inherit object.__eq__.

    @property
    def width(self) -> int:
        """Width of a bitvector term (raises for Boolean terms)."""
        if not is_bv(self.sort):
            raise TypeError("term %s has no width (sort %s)" % (self, self.sort))
        return self.sort.width

    def is_const(self) -> bool:
        """True for Boolean and bitvector literals."""
        return self.op in (OP_TRUE, OP_FALSE, OP_BVCONST)

    def is_true(self) -> bool:
        return self.op == OP_TRUE

    def is_false(self) -> bool:
        return self.op == OP_FALSE

    def const_value(self) -> int:
        """The integer value of a constant term (Bool maps to 0/1)."""
        if self.op == OP_BVCONST:
            return self.data
        if self.op == OP_TRUE:
            return 1
        if self.op == OP_FALSE:
            return 0
        raise ValueError("not a constant term: %s" % (self,))

    def __str__(self) -> str:
        from .printer import term_to_str

        return term_to_str(self)

    def __repr__(self) -> str:
        return "Term(%s)" % term_brief(self)


def term_brief(t: Term, depth: int = 3) -> str:
    """A short, depth-bounded rendering used in reprs and error messages."""
    if t.op == OP_VAR:
        return t.data
    if t.op == OP_BVCONST:
        return "#x%0*x" % ((t.width + 3) // 4, t.data)
    if t.op in (OP_TRUE, OP_FALSE):
        return t.op
    if depth <= 0:
        return "(%s ...)" % t.op
    inner = " ".join(term_brief(a, depth - 1) for a in t.args)
    return "(%s %s)" % (t.op, inner)


# ---------------------------------------------------------------------------
# Integer helpers (two's complement at a given width)
# ---------------------------------------------------------------------------


def mask(width: int) -> int:
    """All-ones value at *width*."""
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Reduce *value* modulo 2**width into the canonical [0, 2^w) range."""
    return value & mask(width)


def to_signed(value: int, width: int) -> int:
    """Interpret the unsigned *value* as a two's complement signed integer."""
    value = truncate(value, width)
    if value >= 1 << (width - 1):
        return value - (1 << width)
    return value


def min_signed(width: int) -> int:
    """INT_MIN at *width* as an unsigned bit pattern."""
    return 1 << (width - 1)


def max_signed(width: int) -> int:
    """INT_MAX at *width* as an unsigned bit pattern."""
    return (1 << (width - 1)) - 1


# ---------------------------------------------------------------------------
# Leaf constructors
# ---------------------------------------------------------------------------

TRUE = Term(OP_TRUE, BOOL)
FALSE = Term(OP_FALSE, BOOL)


def bool_const(value: bool) -> Term:
    return TRUE if value else FALSE


def bv_const(value: int, width: int) -> Term:
    """A bitvector literal; the value is truncated into range."""
    return Term(OP_BVCONST, BitVecSort(width), (), truncate(value, width))


def bool_var(name: str) -> Term:
    return Term(OP_VAR, BOOL, (), name)


def bv_var(name: str, width: int) -> Term:
    return Term(OP_VAR, BitVecSort(width), (), name)


def var(name: str, sort: Sort) -> Term:
    return Term(OP_VAR, sort, (), name)


def is_var(t: Term) -> bool:
    return t.op == OP_VAR


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def not_(a: Term) -> Term:
    if not is_bool(a.sort):
        raise TypeError("not_ expects Bool, got %s" % a.sort)
    if a.is_true():
        return FALSE
    if a.is_false():
        return TRUE
    if a.op == OP_NOT:
        return a.args[0]
    return Term(OP_NOT, BOOL, (a,))


def _flatten(op: str, terms: Iterable[Term]):
    for t in terms:
        if t.op == op:
            yield from t.args
        else:
            yield t


def and_(*terms: Term) -> Term:
    """N-ary conjunction with flattening, absorption and deduplication."""
    out = []
    seen = set()
    for t in _flatten(OP_AND, terms):
        if not is_bool(t.sort):
            raise TypeError("and_ expects Bool, got %s" % t.sort)
        if t.is_false():
            return FALSE
        if t.is_true() or t in seen:
            continue
        seen.add(t)
        out.append(t)
    for t in out:
        if not_(t) in seen:
            return FALSE
    if not out:
        return TRUE
    if len(out) == 1:
        return out[0]
    return Term(OP_AND, BOOL, tuple(out))


def or_(*terms: Term) -> Term:
    """N-ary disjunction with flattening, absorption and deduplication."""
    out = []
    seen = set()
    for t in _flatten(OP_OR, terms):
        if not is_bool(t.sort):
            raise TypeError("or_ expects Bool, got %s" % t.sort)
        if t.is_true():
            return TRUE
        if t.is_false() or t in seen:
            continue
        seen.add(t)
        out.append(t)
    for t in out:
        if not_(t) in seen:
            return TRUE
    if not out:
        return FALSE
    if len(out) == 1:
        return out[0]
    return Term(OP_OR, BOOL, tuple(out))


def implies(a: Term, b: Term) -> Term:
    return or_(not_(a), b)


def xor_bool(a: Term, b: Term) -> Term:
    if a.is_const() and b.is_const():
        return bool_const(a.const_value() != b.const_value())
    if a.is_false():
        return b
    if b.is_false():
        return a
    if a.is_true():
        return not_(b)
    if b.is_true():
        return not_(a)
    if a is b:
        return FALSE
    if a._ckey > b._ckey:
        a, b = b, a
    return Term(OP_XOR_BOOL, BOOL, (a, b))


def iff(a: Term, b: Term) -> Term:
    return not_(xor_bool(a, b))


# ---------------------------------------------------------------------------
# Polymorphic
# ---------------------------------------------------------------------------


def eq(a: Term, b: Term) -> Term:
    if a.sort is not b.sort:
        raise TypeError("eq between different sorts: %s vs %s" % (a.sort, b.sort))
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return bool_const(a.const_value() == b.const_value())
    if is_bool(a.sort):
        return iff(a, b)
    if a._ckey > b._ckey:
        a, b = b, a
    return Term(OP_EQ, BOOL, (a, b))


def ne(a: Term, b: Term) -> Term:
    return not_(eq(a, b))


def ite(c: Term, a: Term, b: Term) -> Term:
    if not is_bool(c.sort):
        raise TypeError("ite condition must be Bool, got %s" % c.sort)
    if a.sort is not b.sort:
        raise TypeError("ite arms differ in sort: %s vs %s" % (a.sort, b.sort))
    if c.is_true():
        return a
    if c.is_false():
        return b
    if a is b:
        return a
    if is_bool(a.sort):
        if a.is_true() and b.is_false():
            return c
        if a.is_false() and b.is_true():
            return not_(c)
        return or_(and_(c, a), and_(not_(c), b))
    return Term(OP_ITE, a.sort, (c, a, b))


# ---------------------------------------------------------------------------
# Bitvector constructors
# ---------------------------------------------------------------------------


def _bv_binop_check(a: Term, b: Term, opname: str) -> int:
    if not is_bv(a.sort) or not is_bv(b.sort):
        raise TypeError("%s expects bitvectors" % opname)
    if a.sort is not b.sort:
        raise TypeError(
            "%s width mismatch: %d vs %d" % (opname, a.width, b.width)
        )
    return a.width


def bvnot(a: Term) -> Term:
    if a.op == OP_BVCONST:
        return bv_const(~a.data, a.width)
    if a.op == OP_BVNOT:
        return a.args[0]
    return Term(OP_BVNOT, a.sort, (a,))


def bvneg(a: Term) -> Term:
    if a.op == OP_BVCONST:
        return bv_const(-a.data, a.width)
    if a.op == OP_BVNEG:
        return a.args[0]
    return Term(OP_BVNEG, a.sort, (a,))


def _fold2(op: str, a: Term, b: Term, fn) -> Optional[Term]:
    if a.op == OP_BVCONST and b.op == OP_BVCONST:
        return bv_const(fn(a.data, b.data, a.width), a.width)
    return None


def _canon2(a: Term, b: Term) -> Tuple[Term, Term]:
    """Canonical argument order for commutative ops (constants last)."""
    if a.op == OP_BVCONST and b.op != OP_BVCONST:
        return b, a
    if b.op == OP_BVCONST:
        return a, b
    if a._ckey > b._ckey:
        return b, a
    return a, b


def bvadd(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvadd")
    folded = _fold2(OP_BVADD, a, b, lambda x, y, _w: x + y)
    if folded is not None:
        return folded
    a, b = _canon2(a, b)
    if b.op == OP_BVCONST and b.data == 0:
        return a
    return Term(OP_BVADD, BitVecSort(w), (a, b))


def bvsub(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvsub")
    folded = _fold2(OP_BVSUB, a, b, lambda x, y, _w: x - y)
    if folded is not None:
        return folded
    if b.op == OP_BVCONST and b.data == 0:
        return a
    if a is b:
        return bv_const(0, w)
    return Term(OP_BVSUB, BitVecSort(w), (a, b))


def bvmul(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvmul")
    folded = _fold2(OP_BVMUL, a, b, lambda x, y, _w: x * y)
    if folded is not None:
        return folded
    a, b = _canon2(a, b)
    if b.op == OP_BVCONST:
        if b.data == 0:
            return bv_const(0, w)
        if b.data == 1:
            return a
    return Term(OP_BVMUL, BitVecSort(w), (a, b))


def _udiv_val(x: int, y: int, w: int) -> int:
    return mask(w) if y == 0 else x // y


def _urem_val(x: int, y: int, w: int) -> int:
    return x if y == 0 else x % y


def _sdiv_val(x: int, y: int, w: int) -> int:
    # SMT-LIB bvsdiv: truncated (round toward zero) signed division;
    # division by zero yields 1 if dividend negative else -1... per
    # SMT-LIB it is defined via bvudiv on magnitudes: x/0 = -1 for x >= 0
    # and 1 for x < 0.
    sx, sy = to_signed(x, w), to_signed(y, w)
    if sy == 0:
        return truncate(1 if sx < 0 else -1, w)
    q = abs(sx) // abs(sy)
    if (sx < 0) != (sy < 0):
        q = -q
    return truncate(q, w)


def _srem_val(x: int, y: int, w: int) -> int:
    # Remainder has the sign of the dividend; rem by zero yields dividend.
    sx, sy = to_signed(x, w), to_signed(y, w)
    if sy == 0:
        return truncate(sx, w)
    r = abs(sx) % abs(sy)
    if sx < 0:
        r = -r
    return truncate(r, w)


def _shl_val(x: int, y: int, w: int) -> int:
    return 0 if y >= w else truncate(x << y, w)


def _lshr_val(x: int, y: int, w: int) -> int:
    return 0 if y >= w else x >> y


def _ashr_val(x: int, y: int, w: int) -> int:
    sx = to_signed(x, w)
    if y >= w:
        return mask(w) if sx < 0 else 0
    return truncate(sx >> y, w)


def bvudiv(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvudiv")
    folded = _fold2(OP_BVUDIV, a, b, _udiv_val)
    if folded is not None:
        return folded
    if b.op == OP_BVCONST and b.data == 1:
        return a
    return Term(OP_BVUDIV, BitVecSort(w), (a, b))


def bvsdiv(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvsdiv")
    folded = _fold2(OP_BVSDIV, a, b, _sdiv_val)
    if folded is not None:
        return folded
    if b.op == OP_BVCONST and b.data == 1:
        return a
    return Term(OP_BVSDIV, BitVecSort(w), (a, b))


def bvurem(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvurem")
    folded = _fold2(OP_BVUREM, a, b, _urem_val)
    if folded is not None:
        return folded
    return Term(OP_BVUREM, BitVecSort(w), (a, b))


def bvsrem(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvsrem")
    folded = _fold2(OP_BVSREM, a, b, _srem_val)
    if folded is not None:
        return folded
    return Term(OP_BVSREM, BitVecSort(w), (a, b))


def bvshl(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvshl")
    folded = _fold2(OP_BVSHL, a, b, _shl_val)
    if folded is not None:
        return folded
    if b.op == OP_BVCONST and b.data == 0:
        return a
    return Term(OP_BVSHL, BitVecSort(w), (a, b))


def bvlshr(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvlshr")
    folded = _fold2(OP_BVLSHR, a, b, _lshr_val)
    if folded is not None:
        return folded
    if b.op == OP_BVCONST and b.data == 0:
        return a
    return Term(OP_BVLSHR, BitVecSort(w), (a, b))


def bvashr(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvashr")
    folded = _fold2(OP_BVASHR, a, b, _ashr_val)
    if folded is not None:
        return folded
    if b.op == OP_BVCONST and b.data == 0:
        return a
    return Term(OP_BVASHR, BitVecSort(w), (a, b))


def bvand(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvand")
    folded = _fold2(OP_BVAND, a, b, lambda x, y, _w: x & y)
    if folded is not None:
        return folded
    a, b = _canon2(a, b)
    if a is b:
        return a
    if b.op == OP_BVCONST:
        if b.data == 0:
            return bv_const(0, w)
        if b.data == mask(w):
            return a
    return Term(OP_BVAND, BitVecSort(w), (a, b))


def bvor(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvor")
    folded = _fold2(OP_BVOR, a, b, lambda x, y, _w: x | y)
    if folded is not None:
        return folded
    a, b = _canon2(a, b)
    if a is b:
        return a
    if b.op == OP_BVCONST:
        if b.data == 0:
            return a
        if b.data == mask(w):
            return bv_const(mask(w), w)
    return Term(OP_BVOR, BitVecSort(w), (a, b))


def bvxor(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvxor")
    folded = _fold2(OP_BVXOR, a, b, lambda x, y, _w: x ^ y)
    if folded is not None:
        return folded
    a, b = _canon2(a, b)
    if a is b:
        return bv_const(0, w)
    if b.op == OP_BVCONST:
        if b.data == 0:
            return a
        if b.data == mask(w):
            return bvnot(a)
    return Term(OP_BVXOR, BitVecSort(w), (a, b))


# ---------------------------------------------------------------------------
# Structural bitvector ops
# ---------------------------------------------------------------------------


def concat(hi: Term, lo: Term) -> Term:
    """Concatenation; *hi* supplies the most significant bits."""
    if not is_bv(hi.sort) or not is_bv(lo.sort):
        raise TypeError("concat expects bitvectors")
    w = hi.width + lo.width
    if hi.op == OP_BVCONST and lo.op == OP_BVCONST:
        return bv_const((hi.data << lo.width) | lo.data, w)
    return Term(OP_CONCAT, BitVecSort(w), (hi, lo))


def extract(a: Term, hi: int, lo: int) -> Term:
    """Bits ``hi..lo`` inclusive (SMT-LIB ``(_ extract hi lo)``)."""
    if not is_bv(a.sort):
        raise TypeError("extract expects a bitvector")
    if not (0 <= lo <= hi < a.width):
        raise ValueError(
            "bad extract range [%d:%d] on width %d" % (hi, lo, a.width)
        )
    if lo == 0 and hi == a.width - 1:
        return a
    w = hi - lo + 1
    if a.op == OP_BVCONST:
        return bv_const(a.data >> lo, w)
    if a.op == OP_EXTRACT:
        inner_lo = a.data[1]
        return extract(a.args[0], inner_lo + hi, inner_lo + lo)
    return Term(OP_EXTRACT, BitVecSort(w), (a,), (hi, lo))


def zext(a: Term, extra: int) -> Term:
    """Zero-extend by *extra* bits."""
    if extra < 0:
        raise ValueError("negative extension")
    if extra == 0:
        return a
    if a.op == OP_BVCONST:
        return bv_const(a.data, a.width + extra)
    return Term(OP_ZEXT, BitVecSort(a.width + extra), (a,), extra)


def sext(a: Term, extra: int) -> Term:
    """Sign-extend by *extra* bits."""
    if extra < 0:
        raise ValueError("negative extension")
    if extra == 0:
        return a
    if a.op == OP_BVCONST:
        return bv_const(to_signed(a.data, a.width), a.width + extra)
    return Term(OP_SEXT, BitVecSort(a.width + extra), (a,), extra)


def zext_to(a: Term, width: int) -> Term:
    """Zero-extend *a* up to exactly *width* bits."""
    return zext(a, width - a.width)


def sext_to(a: Term, width: int) -> Term:
    """Sign-extend *a* up to exactly *width* bits."""
    return sext(a, width - a.width)


def trunc_to(a: Term, width: int) -> Term:
    """Truncate *a* down to the low *width* bits."""
    return extract(a, width - 1, 0)


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------


def ult(a: Term, b: Term) -> Term:
    _bv_binop_check(a, b, "bvult")
    if a.op == OP_BVCONST and b.op == OP_BVCONST:
        return bool_const(a.data < b.data)
    if a is b:
        return FALSE
    if b.op == OP_BVCONST and b.data == 0:
        return FALSE
    return Term(OP_ULT, BOOL, (a, b))


def ule(a: Term, b: Term) -> Term:
    _bv_binop_check(a, b, "bvule")
    if a.op == OP_BVCONST and b.op == OP_BVCONST:
        return bool_const(a.data <= b.data)
    if a is b:
        return TRUE
    if a.op == OP_BVCONST and a.data == 0:
        return TRUE
    return Term(OP_ULE, BOOL, (a, b))


def ugt(a: Term, b: Term) -> Term:
    return ult(b, a)


def uge(a: Term, b: Term) -> Term:
    return ule(b, a)


def slt(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvslt")
    if a.op == OP_BVCONST and b.op == OP_BVCONST:
        return bool_const(to_signed(a.data, w) < to_signed(b.data, w))
    if a is b:
        return FALSE
    return Term(OP_SLT, BOOL, (a, b))


def sle(a: Term, b: Term) -> Term:
    w = _bv_binop_check(a, b, "bvsle")
    if a.op == OP_BVCONST and b.op == OP_BVCONST:
        return bool_const(to_signed(a.data, w) <= to_signed(b.data, w))
    if a is b:
        return TRUE
    return Term(OP_SLE, BOOL, (a, b))


def sgt(a: Term, b: Term) -> Term:
    return slt(b, a)


def sge(a: Term, b: Term) -> Term:
    return sle(b, a)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def free_vars(term: Term):
    """The set of variable terms occurring in *term* (iterative walk)."""
    out = set()
    seen = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if id(t) in seen:
            continue
        seen.add(id(t))
        if t.op == OP_VAR:
            out.add(t)
        else:
            stack.extend(t.args)
    return out


def dag_size(term: Term, limit: Optional[int] = None) -> int:
    """Number of distinct nodes in *term*'s DAG (iterative walk).

    With *limit*, counting stops at ``limit + 1`` nodes, so callers
    using the size only as a threshold pay O(limit) regardless of how
    large the term really is.
    """
    seen = set()
    stack = [term]
    while stack:
        t = stack.pop()
        i = id(t)
        if i in seen:
            continue
        seen.add(i)
        if limit is not None and len(seen) > limit:
            break
        stack.extend(t.args)
    return len(seen)


#: operations whose bit-blasting is quadratic in the operand width
_WIDE_OPS = frozenset(
    (OP_BVMUL, OP_BVUDIV, OP_BVSDIV, OP_BVUREM, OP_BVSREM)
)


def encoding_weight(term: Term, limit: Optional[int] = None) -> int:
    """A cheap monotone estimate of *term*'s bit-blasted CNF mass.

    Sums, over the distinct nodes of the DAG, the node's bit width
    (squared for the multiplier/divider family, whose circuits are
    quadratic in the width).  Used to predict — before paying for the
    encoding — whether a formula's CNF cone will dwarf an incremental
    session's shared prefix.  With *limit*, the walk stops as soon as
    the running total exceeds it.
    """
    seen = set()
    stack = [term]
    total = 0
    while stack:
        t = stack.pop()
        i = id(t)
        if i in seen:
            continue
        seen.add(i)
        sort = t.sort
        w = sort.width if isinstance(sort, BitVecSort) else 1
        total += w * w if t.op in _WIDE_OPS else w
        if limit is not None and total > limit:
            break
        stack.extend(t.args)
    return total


def substitute(term: Term, mapping: Dict[Term, Term]) -> Term:
    """Simultaneously replace variables (or subterms) per *mapping*.

    Reconstruction goes through the smart constructors, so the result is
    re-simplified — substituting constants usually collapses the term.
    """
    cache: Dict[int, Term] = {}

    def walk(t: Term) -> Term:
        hit = mapping.get(t)
        if hit is not None:
            return hit
        if not t.args:
            return t
        cached = cache.get(id(t))
        if cached is not None:
            return cached
        new_args = tuple(walk(a) for a in t.args)
        if all(n is o for n, o in zip(new_args, t.args)):
            result = t
        else:
            result = rebuild(t.op, new_args, t.data, t.sort)
        cache[id(t)] = result
        return result

    return walk(term)


_REBUILDERS = {}


def _init_rebuilders():
    _REBUILDERS.update(
        {
            OP_NOT: lambda a, d: not_(a[0]),
            OP_AND: lambda a, d: and_(*a),
            OP_OR: lambda a, d: or_(*a),
            OP_XOR_BOOL: lambda a, d: xor_bool(a[0], a[1]),
            OP_EQ: lambda a, d: eq(a[0], a[1]),
            OP_ITE: lambda a, d: ite(a[0], a[1], a[2]),
            OP_BVNOT: lambda a, d: bvnot(a[0]),
            OP_BVNEG: lambda a, d: bvneg(a[0]),
            OP_BVADD: lambda a, d: bvadd(a[0], a[1]),
            OP_BVSUB: lambda a, d: bvsub(a[0], a[1]),
            OP_BVMUL: lambda a, d: bvmul(a[0], a[1]),
            OP_BVUDIV: lambda a, d: bvudiv(a[0], a[1]),
            OP_BVSDIV: lambda a, d: bvsdiv(a[0], a[1]),
            OP_BVUREM: lambda a, d: bvurem(a[0], a[1]),
            OP_BVSREM: lambda a, d: bvsrem(a[0], a[1]),
            OP_BVSHL: lambda a, d: bvshl(a[0], a[1]),
            OP_BVLSHR: lambda a, d: bvlshr(a[0], a[1]),
            OP_BVASHR: lambda a, d: bvashr(a[0], a[1]),
            OP_BVAND: lambda a, d: bvand(a[0], a[1]),
            OP_BVOR: lambda a, d: bvor(a[0], a[1]),
            OP_BVXOR: lambda a, d: bvxor(a[0], a[1]),
            OP_CONCAT: lambda a, d: concat(a[0], a[1]),
            OP_EXTRACT: lambda a, d: extract(a[0], d[0], d[1]),
            OP_ZEXT: lambda a, d: zext(a[0], d),
            OP_SEXT: lambda a, d: sext(a[0], d),
            OP_ULT: lambda a, d: ult(a[0], a[1]),
            OP_ULE: lambda a, d: ule(a[0], a[1]),
            OP_SLT: lambda a, d: slt(a[0], a[1]),
            OP_SLE: lambda a, d: sle(a[0], a[1]),
        }
    )


_init_rebuilders()


def rebuild(op: str, args: Tuple[Term, ...], data, sort: Sort) -> Term:
    """Re-apply the smart constructor for *op* to fresh arguments."""
    builder = _REBUILDERS.get(op)
    if builder is None:
        return Term(op, sort, args, data)
    return builder(args, data)


def term_size(term: Term) -> int:
    """Number of distinct DAG nodes reachable from *term*."""
    seen = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if id(t) in seen:
            continue
        seen.add(id(t))
        stack.extend(t.args)
    return len(seen)
