"""End to end: real ``repro serve`` subprocesses, a real SIGKILL.

One test spawns a 3-node cluster through :class:`NodeSupervisor`, lets
a seeded fault plan SIGKILL the primary shard of the first job key
mid-batch, and checks the acceptance criterion for real: verdicts
byte-identical to a local run, zero jobs lost, exactly one node down.
"""

import pytest

from repro import chaos
from repro.cluster import ClusterCoordinator, ClusterOptions, NodeSupervisor
from repro.engine import run_batch

from .conftest import TEST_CONFIG, corpus
from .test_coordinator import assert_parity, job_keys


@pytest.fixture
def supervisor(tmp_path):
    sup = NodeSupervisor(
        str(tmp_path / "registry.json"), count=3,
        serve_args=["--jobs", "1", "--max-wait-ms", "5",
                    "--cache", str(tmp_path / "{node}-cache.jsonl")],
        stdout_dir=str(tmp_path / "logs"))
    with sup:
        yield sup


class TestKillNodeMidBatch:
    def test_sigkill_one_shard_verdict_parity(self, supervisor):
        ts = corpus()
        baseline = run_batch(ts, TEST_CONFIG, jobs=1)
        supervisor.spawn()
        nodes = supervisor.wait_ready(timeout=60)
        assert len(nodes) == 3
        assert len(set(nodes.values())) == 3  # three distinct ports

        coordinator = ClusterCoordinator(
            nodes, config=TEST_CONFIG,
            options=ClusterOptions(chunk_size=1, hedge_delay=0.5,
                                   request_timeout=30.0, deadline=120.0),
            supervisor=supervisor)
        # the victim is the primary shard of the first key, so the
        # kill is guaranteed to orphan at least one in-flight chunk
        victim = coordinator.ring.owner(job_keys(ts)[0])
        plan = chaos.FaultPlan([
            chaos.FaultSpec("cluster.node.kill", chaos.KIND_KILL,
                            times=[1], args={"node": victim}),
        ], seed=7)
        chaos.install(plan)
        try:
            report = coordinator.verify_batch(ts)
        finally:
            chaos.uninstall()

        # byte-identical verdicts, zero jobs lost
        assert_parity(report.results, baseline)
        assert len(report.provenance) == report.stats.jobs_total
        assert report.stats.local_fallback_jobs == 0

        # the kill really happened, to a real process
        assert report.stats.nodes_killed == 1
        dead = [node for node in supervisor.nodes
                if node.node_id == victim]
        assert dead and not dead[0].alive
        assert dead[0].process.returncode is not None

        # the victim's work was re-homed, not dropped
        assert report.stats.forward_failures >= 1
        assert any(source != victim
                   for source in report.provenance.values())
        assert [event["site"] for event in plan.log] \
            == ["cluster.node.kill"]

        # a second firing against the same (now dead) node is a no-op
        assert supervisor.kill(victim) is None

    def test_survivors_still_answer_healthz(self, supervisor):
        supervisor.spawn()
        nodes = supervisor.wait_ready(timeout=60)
        supervisor.kill(0)
        coordinator = ClusterCoordinator(
            nodes, config=TEST_CONFIG,
            options=ClusterOptions(request_timeout=10.0))
        health = coordinator.probe_nodes()
        assert health[supervisor.nodes[0].node_id] is False
        assert sum(health.values()) == 2
