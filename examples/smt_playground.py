#!/usr/bin/env python3
"""A tour of the SMT substrate that replaces Z3 in this reproduction.

The verifier's decision procedures are ordinary library code; this
example uses them directly: satisfiability, validity, exists-forall
(the quantifier pattern `undef` induces), model enumeration, and
SMT-LIB 2 export for cross-checking with an external solver.

Run:  python examples/smt_playground.py
"""

from repro.smt import terms as T
from repro.smt.smtlib import to_script
from repro.smt.solver import check_sat, enumerate_models, solve_exists_forall

W = 8


def main() -> None:
    x = T.bv_var("x", W)
    y = T.bv_var("y", W)

    # --- satisfiability with a model --------------------------------
    f = T.and_(
        T.eq(T.bvmul(x, y), T.bv_const(143, W)),
        T.ult(x, y),
        T.ugt(x, T.bv_const(1, W)),
    )
    r = check_sat(f)
    print("[1] x*y == 143, 1 < x < y  ->", r.status,
          {v.data: val for v, val in r.model.items()})

    # --- validity via refutation ------------------------------------
    demorgan = T.eq(T.bvnot(T.bvand(x, y)),
                    T.bvor(T.bvnot(x), T.bvnot(y)))
    print("[2] De Morgan at i8 is",
          "valid" if check_sat(T.not_(demorgan)).is_unsat() else "refuted")

    # --- the undef quantifier pattern (paper §3.1.2) -----------------
    # "exists a mask M such that for every undef value u, (u & M) == 0"
    m = T.bv_var("M", W)
    u = T.bv_var("u", W)
    r = solve_exists_forall([m], [u], T.eq(T.bvand(u, m), T.bv_const(0, W)))
    print("[3] ∃M ∀u: u & M == 0  ->", r.status, "M =", r.model.get(m))

    # --- model enumeration (the paper's type-enumeration loop, §3.2) --
    g = T.and_(T.eq(T.bvand(x, T.bv_const(0b11, W)), T.bv_const(0b01, W)),
               T.ult(x, T.bv_const(16, W)))
    models = sorted(model[x] for model in enumerate_models(g, [x]))
    print("[4] x ≡ 1 (mod 4), x < 16  ->", models)

    # --- SMT-LIB 2 export --------------------------------------------
    print("[5] the query from [1] as an SMT-LIB 2 script:\n")
    print(to_script(f, expect="sat"))


if __name__ == "__main__":
    main()
