"""Wire protocol: framing, exit-code mapping, response shapes."""

import pytest

from repro.core.verifier import VerificationResult
from repro.serve.protocol import (EXIT_BUDGET, EXIT_OK, EXIT_REFUTED,
                                  MAX_LINE_BYTES, ProtocolError, decode,
                                  encode, error_response,
                                  exit_code_for_statuses, ok_response,
                                  result_to_wire)


class TestFraming:
    def test_round_trip(self):
        obj = {"id": "r1", "rules": "%r = add %x, 0\n=>\n%r = %x\n"}
        assert decode(encode(obj)) == obj

    def test_one_line_per_frame(self):
        frame = encode({"rules": "a\nb\nc"})
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # newlines inside JSON are escaped

    def test_garbage_raises(self):
        with pytest.raises(ProtocolError):
            decode(b"{not json\n")

    def test_non_object_raises(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2, 3]\n")

    def test_oversized_frame_raises(self):
        with pytest.raises(ProtocolError):
            decode(b"x" * (MAX_LINE_BYTES + 1))


class TestExitCodes:
    """The canonical 0/1/2 mapping that verify/verify-batch/submit share."""

    def test_all_valid(self):
        assert exit_code_for_statuses(["valid", "valid"]) == EXIT_OK

    def test_empty_is_ok(self):
        assert exit_code_for_statuses([]) == EXIT_OK

    @pytest.mark.parametrize("status",
                             ["invalid", "unsupported", "untypeable"])
    def test_refuted_family(self, status):
        assert exit_code_for_statuses(["valid", status]) == EXIT_REFUTED

    def test_unknown_alone_is_budget(self):
        assert exit_code_for_statuses(["valid", "unknown"]) == EXIT_BUDGET

    def test_refuted_beats_unknown(self):
        assert exit_code_for_statuses(["unknown", "invalid"]) == EXIT_REFUTED

    def test_matches_cli(self):
        # the CLI must use this very mapping (no second copy to drift)
        from repro import cli

        assert cli.exit_code_for_statuses is exit_code_for_statuses
        assert (cli.EXIT_OK, cli.EXIT_REFUTED, cli.EXIT_BUDGET) == (0, 1, 2)


class TestResponses:
    def test_result_to_wire(self):
        result = VerificationResult("t", "valid", assignments_checked=3,
                                    queries=9)
        wire = result_to_wire(result)
        assert wire["name"] == "t"
        assert wire["status"] == "valid"
        assert wire["counterexample"] is None
        assert "t: valid" in wire["summary"]

    def test_ok_response_exit_code(self):
        response = ok_response("r1", [{"status": "valid"},
                                      {"status": "invalid"}])
        assert response["ok"] and response["id"] == "r1"
        assert response["exit_code"] == EXIT_REFUTED

    def test_error_response(self):
        response = error_response("r2", "overloaded", detail="queue full",
                                  retry_after=0.25)
        assert not response["ok"]
        assert response["error"] == "overloaded"
        assert response["retry_after"] == 0.25
