"""Hostile clients and injected dispatch failures against a live server.

Uses the raw-socket attackers from :mod:`repro.chaos.clients` (a
hostile client is, by definition, outside the process) plus in-process
``serve.dispatch`` faults for the circuit breaker.  Throughout, the
health endpoints must stay responsive — observability is the one
thing that may never degrade.
"""

import json
import time

import pytest

from repro import chaos
from repro.chaos.clients import send_malformed, send_oversize, slowloris
from repro.serve.client import Overloaded

from tests.serve.conftest import GOOD, GOOD2


class TestMalformedFrames:
    def test_garbage_frame_gets_structured_rejection(self, make_server):
        harness = make_server()
        reply = send_malformed(harness.addr)
        response = json.loads(reply)
        assert response["ok"] is False
        assert response["error"] == "bad_request"
        assert harness.client().metrics()["serve_bad_requests_total"] == 1
        # the server is unharmed: a normal request still verifies
        assert harness.client().submit(GOOD)["exit_code"] == 0

    def test_non_object_json_frame_rejected(self, make_server):
        harness = make_server()
        response = json.loads(send_malformed(harness.addr, b"[1, 2, 3]\n"))
        assert response["error"] == "bad_request"
        assert "not a JSON object" in response["detail"]


class TestOversizeFrames:
    def test_oversize_frame_rejected_in_band(self, make_server):
        harness = make_server(max_frame_bytes=2048)
        reply = send_oversize(harness.addr, size=64 * 1024)
        if reply:  # the server may also just slam the door
            response = json.loads(reply)
            assert response["error"] == "bad_request"
            assert "frame exceeds 2048 bytes" in response["detail"]
        values = harness.client().metrics()
        assert values["serve_oversize_frames_total"] == 1
        assert harness.client().submit(GOOD)["exit_code"] == 0

    def test_oversize_http_body_gets_413(self, make_server):
        import socket

        harness = make_server(max_frame_bytes=2048)
        body = json.dumps({"rules": "x" * 8192}).encode()
        with socket.create_connection(("127.0.0.1", harness.server.port),
                                      timeout=10) as sock:
            sock.sendall(b"POST /v1/verify HTTP/1.1\r\n"
                         b"Content-Length: %d\r\n\r\n" % len(body) + body)
            raw = sock.recv(65536)
        assert b"413" in raw.splitlines()[0]


class TestSlowloris:
    def test_stalled_connection_is_reaped(self, make_server):
        harness = make_server(read_timeout=0.3)
        outcome = slowloris(harness.addr, hold=5.0)
        assert outcome["closed_by_server"]
        assert outcome["held"] < 4.0  # reaped well before we gave up
        values = harness.client().metrics()
        assert values["serve_read_timeouts_total"] == 1

    def test_healthz_stays_responsive_while_being_strangled(
            self, make_server):
        import threading

        harness = make_server(read_timeout=1.0)
        attackers = [
            threading.Thread(target=slowloris,
                             args=(harness.addr,), kwargs={"hold": 3.0})
            for _ in range(4)
        ]
        for t in attackers:
            t.start()
        try:
            start = time.monotonic()
            status, body = harness.client().http_get("/healthz")
            elapsed = time.monotonic() - start
            assert status == 200
            assert json.loads(body)["status"] == "ok"
            assert elapsed < 1.0  # the ISSUE's responsiveness bound
        finally:
            for t in attackers:
                t.join()


class TestCircuitBreaker:
    def test_breaker_opens_after_dispatch_failures_then_recovers(
            self, make_server):
        plan = chaos.FaultPlan([
            chaos.FaultSpec("serve.dispatch", chaos.KIND_ERROR,
                            every=1, max_fires=2),
        ])
        harness = make_server(breaker_threshold=2, breaker_reset=0.4)
        with chaos.active_plan(plan):
            with harness.client(max_retries=0) as client:
                # two poisoned dispatches: each request degrades to
                # transient "unknown" outcomes (exit 2), never a wrong
                # verdict, and each failure feeds the breaker
                assert client.submit(GOOD)["exit_code"] == 2
                assert client.submit(GOOD2)["exit_code"] == 2
                # threshold reached: fast-reject at admission
                with pytest.raises(Overloaded) as excinfo:
                    client.submit(GOOD)
                assert "circuit breaker open" in \
                    excinfo.value.response["detail"]

            time.sleep(0.5)  # past the reset window: probe admitted
            with harness.client(max_retries=0) as client:
                response = client.submit(GOOD)
            assert response["exit_code"] == 0  # chaos exhausted: healed

        values = harness.client().metrics()
        assert values["serve_dispatch_failures_total"] == 2
        assert values["serve_breaker_open_total"] == 1
        assert values["serve_breaker_rejections_total"] >= 1
        assert values["serve_breaker_state"] == 0  # closed again

    def test_health_endpoints_bypass_an_open_breaker(self, make_server):
        harness = make_server(breaker_threshold=1, breaker_reset=60.0)
        harness.server.breaker.record_failure()  # slam it open
        status, body = harness.client().http_get("/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, _ = harness.client().http_get("/metrics")
        assert status == 200


class TestReadFrameDelay:
    def test_injected_frame_delay_slows_but_does_not_break(
            self, make_server):
        plan = chaos.FaultPlan([
            chaos.FaultSpec("serve.read_frame", chaos.KIND_DELAY,
                            times=[0], args={"seconds": 0.1}),
        ])
        harness = make_server()
        with chaos.active_plan(plan):
            assert harness.client().submit(GOOD)["exit_code"] == 0
        assert plan.fired_total() == 1
