"""§5/§6.1 — verification latency and its blowup on mul/div formulas.

Paper: "Alive usually takes a few seconds to verify the correctness of
a transformation ... Unfortunately, for some transformations involving
multiplication and division instructions, Alive can take several hours
or longer to verify the larger bitwidths ... we work around slow
verifications by limiting the bitwidths of operands."

We time (a) a typical bitwise transformation and (b) a multiplication
transformation across growing widths.  Expected shape: the bitwise
query scales gently; the nsw-multiply query grows much faster with
width — the same pathology the paper reports, reproduced in miniature.
"""

from __future__ import annotations

import time

from repro.core import Config, verify
from repro.ir import parse_transformation

EASY = """
%a = xor %x, C1
%r = xor %a, C2
=>
%r = xor %x, C1 ^ C2
"""

# distributivity forces the solver through two genuine multiplier
# circuits — the formula family the paper reports blowing up with width
HARD = """
%a = mul %x, %y
%b = mul %x, %z
%r = add %a, %b
=>
%s = add %y, %z
%r = mul %x, %s
"""

# w=5 already takes tens of seconds for the multiplier query with the
# pure-Python solver; the paper saw the same wall at 20-30 bits with Z3
WIDTHS = (3, 4, 5)


def run_scaling():
    rows = []
    for width in WIDTHS:
        config = Config(max_width=width, prefer_widths=(width,),
                        max_type_assignments=1)
        for label, text in (("xor-chain", EASY), ("mul-nsw", HARD)):
            t = parse_transformation(text, label)
            start = time.perf_counter()
            result = verify(t, config)
            elapsed = time.perf_counter() - start
            rows.append((label, width, elapsed, result.status))
    return rows


def test_verify_scaling(benchmark, report):
    rows = benchmark.pedantic(run_scaling, iterations=1, rounds=1)

    report("§5 — verification latency vs bitwidth")
    report("")
    report("paper: typical transformations verify in seconds; mul/div")
    report("formulas blow up at larger widths (hours at 64 bits),")
    report("worked around by limiting operand widths")
    report("")
    report("%-10s %6s %10s %8s" % ("opt", "width", "seconds", "status"))
    report("-" * 40)
    times = {}
    for label, width, elapsed, status in rows:
        report("%-10s %6d %10.3f %8s" % (label, width, elapsed, status))
        times[(label, width)] = elapsed
        assert status == "valid", (label, width, status)

    easy_growth = times[("xor-chain", WIDTHS[-1])] / max(
        times[("xor-chain", WIDTHS[0])], 1e-9
    )
    hard_growth = times[("mul-nsw", WIDTHS[-1])] / max(
        times[("mul-nsw", WIDTHS[0])], 1e-9
    )
    report("")
    report("growth %d->%d bits: xor-chain x%.1f, mul-nsw x%.1f"
           % (WIDTHS[0], WIDTHS[-1], easy_growth, hard_growth))
    report("shape: multiplication queries grow much faster with width")

    assert hard_growth > easy_growth
