"""Must-analysis proofs over template rules.

This module turns the forward domains of :mod:`repro.absint.domains`
into answers the verification pipeline can act on *without* a solver:

* :func:`prove_refinement` — a sound "yes or unknown" version of
  :func:`repro.core.refinement.check_assignment`.  It discharges the
  same three per-name obligations the encoder emits (target
  definedness, target poison-freedom, value equality) purely
  abstractly.  ``True`` means the target refines the source for this
  type assignment; ``False`` means *unknown* and the caller falls
  through to SAT.  Because the analysis only ever short-circuits the
  "valid" outcome, verdicts are identical with the tier on or off.
* :func:`refuted_pre_atoms` — precondition atoms that are abstractly
  always-false given only the structure of the rule, each validated
  with a concrete witness before being reported (lint tier).
* :func:`refute_candidate` — a discovery pre-filter: a candidate whose
  root values are abstractly disjoint is only dropped after a concrete
  counterexample is found and replayed through the strict
  interpreter-level semantics.

Soundness hinges on three facts, each covered by the test suite:

1. every transfer function over-approximates the total SMT semantics
   (exhaustive + solver self-checks, :mod:`repro.absint.selfcheck`);
2. facts harvested from the precondition are *top-level positive
   conjuncts* only, so they hold under the encoder's ψ (a ``MUST``
   atom's analysis boolean ``p`` comes with the side constraint
   ``p ⇒ s``, hence its semantic condition ``s`` also holds);
3. the δ̄/ρ̄ obligations of the target are skipped only for nodes whose
   own conditions are already implied by ψ's ``δ(src) ∧ ρ(src)`` —
   and because the encoder's select is *lazy* (``δ(select) = δ(c) ∧
   ite(c, δ(a), δ(b))``), that guaranteed set must not descend into
   select arms (:func:`_guaranteed_ids`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..ir import ast, intops
from ..ir.ast import (
    Alloca, BinOp, ConstantSymbol, ConvOp, Copy, GEP, ICmp, Input, Literal,
    Load, Select, Store, UndefValue, Unreachable, _collect_values,
)
from ..ir.constexpr import ConstExpr, eval_constexpr
from ..ir.precond import (
    SYNTACTIC, PredAnd, PredCall, PredCmp, PredNot, PredOr, Predicate,
    PredTrue,
)
from ..typing.types import FloatType
from .domains import AbsValue, KnownBits, SRange, URange, mask, to_signed
from .transfer import (
    icmp_decide, total_binop, total_conv, total_icmp, transfer_binop,
    transfer_constexpr, transfer_conv, transfer_icmp, transfer_select,
)


class AbsintUnsupported(Exception):
    """The rule uses features outside the abstract tier (FP, memory)."""


#: precondition comparison operator -> icmp condition (signed by default)
_CMP_TO_ICMP = {
    "==": "eq", "!=": "ne",
    "<": "slt", "<=": "sle", ">": "sgt", ">=": "sge",
    "u<": "ult", "u<=": "ule", "u>": "ugt", "u>=": "uge",
}

#: ``x cond y``  ⟺  ``y swap(cond) x``
_SWAP = {
    "eq": "eq", "ne": "ne",
    "ult": "ugt", "ule": "uge", "ugt": "ult", "uge": "ule",
    "slt": "sgt", "sle": "sge", "sgt": "slt", "sge": "sle",
}

_MEMORY_INSTS = (Alloca, Load, Store, GEP)

#: conversions the abstract tier understands (FP conversions bail)
_INT_CONVOPS = ("zext", "sext", "trunc", "bitcast", "ptrtoint", "inttoptr")


# ---------------------------------------------------------------------------
# Forward analysis over a typed template
# ---------------------------------------------------------------------------


class Analysis:
    """Forward abstract interpretation of one typed transformation.

    ``env`` maps ``id(value)`` to its :class:`AbsValue`; ``sym`` maps
    ``id(value)`` to a canonical symbolic key with the property that
    equal keys denote equal SMT ι-terms for *every* assignment
    (including every undef choice).  ``infeasible`` is set when the
    harvested precondition facts contradict each other — ψ is then
    unsatisfiable and every proof obligation holds vacuously.
    """

    def __init__(self, t: ast.Transformation, types, config,
                 use_pre: bool = True):
        self.t = t
        self.types = types
        self.config = config
        self.use_pre = use_pre
        self.env: Dict[int, AbsValue] = {}
        self.sym: Dict[int, tuple] = {}
        self.refine: Dict[int, AbsValue] = {}
        self.infeasible = False
        self._order: List[ast.Value] = []

    # -- setup ----------------------------------------------------------

    def run(self) -> "Analysis":
        roots: List[ast.Value] = list(self.t.src.values())
        roots += list(self.t.tgt.values())
        for atom in _all_atoms(self.t.pre):
            roots.extend(_atom_args(atom))
        self._order = _collect_values(roots)
        for v in self._order:
            if isinstance(v, _MEMORY_INSTS + (Unreachable, ast.FPLiteral,
                                              ast.FBinOp, ast.FCmp)):
                raise AbsintUnsupported(type(v).__name__)
            if isinstance(v, ConvOp) and v.opcode not in _INT_CONVOPS:
                raise AbsintUnsupported(v.opcode)
            if isinstance(v, ConvOp) and v.opcode == "inttoptr":
                # inttoptr attaches the memory model in the encoder
                raise AbsintUnsupported("inttoptr")
        # propagate + harvest to a (cheap) local fixpoint: the term DAG
        # is acyclic so two extra rounds settle the refinements
        for _ in range(3):
            self._propagate()
            if not self.use_pre or not self._harvest():
                break
        self._propagate()
        for v in self._order:
            self.sym[id(v)] = self._symbolic(v)
        return self

    def width(self, v: ast.Value) -> int:
        ty = self.types.type_of(v)
        if isinstance(ty, FloatType):
            raise AbsintUnsupported("floating-point value %s" % v.name)
        return self.types.width_of(v, self.config.ptr_width)

    # -- forward value propagation --------------------------------------

    def _propagate(self) -> None:
        for v in self._order:
            av = self._abstract(v)
            constraint = self.refine.get(id(v))
            if constraint is not None:
                av = av.meet(constraint)
            self.env[id(v)] = av
            if av.empty:
                self.infeasible = True

    def _abstract(self, v: ast.Value) -> AbsValue:
        w = self.width(v)
        if isinstance(v, Literal):
            return AbsValue.const(v.value, w)
        if isinstance(v, (Input, ConstantSymbol, UndefValue)):
            return AbsValue.top(w)
        if isinstance(v, ConstExpr):
            if v.op == "width":
                return AbsValue.const(self.width(v.args[0]), w)
            args = [self._at_width(a, w) for a in v.args]
            return transfer_constexpr(v.op, args, w)
        if isinstance(v, BinOp):
            return transfer_binop(v.opcode, self.env[id(v.a)],
                                  self.env[id(v.b)])
        if isinstance(v, ICmp):
            return transfer_icmp(v.cond, self.env[id(v.a)],
                                 self.env[id(v.b)])
        if isinstance(v, Select):
            return transfer_select(self.env[id(v.c)], self.env[id(v.a)],
                                   self.env[id(v.b)])
        if isinstance(v, ConvOp):
            return transfer_conv(v.opcode, self.env[id(v.x)], w)
        if isinstance(v, Copy):
            return self.env[id(v.x)]
        raise AbsintUnsupported(type(v).__name__)

    def _at_width(self, v: ast.Value, w: int) -> AbsValue:
        """Constant-expression operands are evaluated at the parent's
        width (mirroring :func:`eval_constexpr`)."""
        av = self.env[id(v)]
        if av.width == w:
            return av
        if av.is_singleton():
            return AbsValue.const(av.value() & mask(w), w)
        return AbsValue.top(w)

    # -- precondition fact harvesting ------------------------------------

    def _harvest(self) -> bool:
        new: Dict[int, AbsValue] = {}

        def add(vobj: ast.Value, constraint: Optional[AbsValue]) -> None:
            if constraint is None:
                return
            key = id(vobj)
            cur = new.get(key)
            new[key] = constraint if cur is None else cur.meet(constraint)

        for atom in _toplevel_conjuncts(self.t.pre):
            if isinstance(atom, PredCmp):
                self._harvest_cmp(atom, add)
            elif isinstance(atom, PredCall):
                self._harvest_call(atom, add)
        changed = new != self.refine
        self.refine = new
        return changed

    def _harvest_cmp(self, atom: PredCmp, add) -> None:
        av_a = self.env[id(atom.a)]
        av_b = self.env[id(atom.b)]
        if av_a.width != av_b.width:
            return
        cond = _CMP_TO_ICMP[atom.op]
        if av_b.is_singleton():
            add(atom.a, _range_from_cmp(cond, av_b.value(), av_b.width))
        if av_a.is_singleton():
            add(atom.b, _range_from_cmp(_SWAP[cond], av_a.value(),
                                        av_a.width))

    def _harvest_call(self, atom: PredCall, add) -> None:
        if atom.kind == SYNTACTIC:
            return  # no semantic content
        args = atom.args
        a = args[0]
        av_a = self.env[id(a)]
        w = av_a.width
        full = mask(w)
        int_min = -(1 << (w - 1))
        int_max = (1 << (w - 1)) - 1
        fn = atom.fn
        if fn == "isPowerOf2":
            add(a, AbsValue.from_urange(URange(w, 1, max(1, 1 << (w - 1)))))
        elif fn == "isPowerOf2OrZero":
            add(a, AbsValue.from_urange(URange(w, 0, max(1, 1 << (w - 1)))))
        elif fn == "isSignBit":
            add(a, AbsValue.const(1 << (w - 1), w))
        elif fn == "isShiftedMask":
            add(a, AbsValue.from_urange(URange(w, 1, full)))
        elif fn == "MaskedValueIsZero":
            m = args[1]
            av_m = self.env[id(m)]
            if av_m.is_singleton():
                add(a, AbsValue.from_bits(KnownBits(w, av_m.value(), 0)))
            if av_a.is_singleton():
                add(m, AbsValue.from_bits(KnownBits(w, av_a.value(), 0)))
        elif fn == "WillNotOverflowUnsignedAdd":
            b = args[1]
            av_b = self.env[id(b)]
            add(a, AbsValue.from_urange(URange(w, 0, full - av_b.ur.lo)))
            add(b, AbsValue.from_urange(URange(w, 0, full - av_a.ur.lo)))
        elif fn == "WillNotOverflowUnsignedSub":
            b = args[1]
            av_b = self.env[id(b)]
            add(a, AbsValue.from_urange(URange(w, av_b.ur.lo, full)))
            add(b, AbsValue.from_urange(URange(w, 0, av_a.ur.hi)))
        elif fn == "WillNotOverflowUnsignedMul":
            b = args[1]
            av_b = self.env[id(b)]
            if av_b.ur.lo > 1:
                add(a, AbsValue.from_urange(URange(w, 0, full // av_b.ur.lo)))
            if av_a.ur.lo > 1:
                add(b, AbsValue.from_urange(URange(w, 0, full // av_a.ur.lo)))
        elif fn == "WillNotOverflowSignedAdd":
            b = args[1]
            av_b = self.env[id(b)]
            add(a, _srange_clamped(w, int_min - av_b.sr.hi,
                                   int_max - av_b.sr.lo))
            add(b, _srange_clamped(w, int_min - av_a.sr.hi,
                                   int_max - av_a.sr.lo))
        elif fn == "WillNotOverflowSignedSub":
            b = args[1]
            av_b = self.env[id(b)]
            add(a, _srange_clamped(w, int_min + av_b.sr.lo,
                                   int_max + av_b.sr.hi))

    # -- canonical symbolic keys ------------------------------------------

    def _symbolic(self, v: ast.Value) -> tuple:
        av = self.env[id(v)]
        if av.is_singleton():
            return ("lit", av.width, av.value())
        if isinstance(v, (Input, ConstantSymbol)):
            return ("in", v.name)
        if isinstance(v, UndefValue):
            return ("undef", id(v))
        if isinstance(v, Copy):
            return self.sym[id(v.x)]
        if isinstance(v, BinOp):
            return self._sym_binop(v.opcode, v.a, v.b)
        if isinstance(v, ConstExpr):
            if v.op in ast.BINOPS and len(v.args) == 2:
                return self._sym_binop(v.op, v.args[0], v.args[1])
            keys = tuple(self.sym[id(a)] for a in v.args)
            if v.op in ("umax", "umin", "smax", "smin"):
                keys = tuple(sorted(keys, key=repr))
            return ("ce", v.op, keys)
        if isinstance(v, ICmp):
            return self._sym_icmp(v)
        if isinstance(v, Select):
            kc = self.sym[id(v.c)]
            ka = self.sym[id(v.a)]
            kb = self.sym[id(v.b)]
            if ka == kb:
                return ka
            cond = self.env[id(v.c)]
            if cond.is_singleton():
                return ka if cond.value() == 1 else kb
            return ("sel", kc, ka, kb)
        if isinstance(v, ConvOp):
            kx = self.sym[id(v.x)]
            w_in = self.width(v.x)
            w_out = self.width(v)
            if w_out == w_in:
                return kx  # every integer conversion is identity here
            kind = "sext" if v.opcode == "sext" and w_out > w_in else (
                "zext" if w_out > w_in else "trunc")
            return ("conv", kind, w_out, kx)
        raise AbsintUnsupported(type(v).__name__)

    def _sym_binop(self, op: str, a: ast.Value, b: ast.Value) -> tuple:
        ka = self.sym[id(a)]
        kb = self.sym[id(b)]
        av_a = self.env[id(a)]
        av_b = self.env[id(b)]
        w = av_a.width
        ca = av_a.value() if av_a.is_singleton() else None
        cb = av_b.value() if av_b.is_singleton() else None
        full = mask(w)
        # total-semantics identities only (sound for every input,
        # including the SMT totalizations of division and shifts)
        if op == "add":
            if cb == 0:
                return ka
            if ca == 0:
                return kb
        elif op == "sub":
            if cb == 0:
                return ka
            if ka == kb:
                return ("lit", w, 0)
        elif op == "mul":
            if cb == 1:
                return ka
            if ca == 1:
                return kb
        elif op == "and":
            if ka == kb or ca == full:
                return kb if ca == full else ka
            if cb == full:
                return ka
        elif op == "or":
            if ka == kb or cb == 0:
                return ka
            if ca == 0:
                return kb
        elif op == "xor":
            if ka == kb:
                return ("lit", w, 0)
            if cb == 0:
                return ka
            if ca == 0:
                return kb
        elif op in ("udiv", "sdiv"):
            if cb == 1:
                return ka
        elif op == "urem":
            if cb == 1:
                return ("lit", w, 0)
            if cb == 0:
                return ka  # bvurem x 0 = x
        elif op == "srem":
            if cb == 1:
                return ("lit", w, 0)
            if cb == 0:
                return ka  # bvsrem x 0 = x
        elif op in ("shl", "lshr", "ashr"):
            if cb == 0:
                return ka
        if op in ("add", "mul", "and", "or", "xor"):
            ka, kb = sorted((ka, kb), key=repr)
        return ("bin", op, ka, kb)

    def _sym_icmp(self, v: ICmp) -> tuple:
        ka = self.sym[id(v.a)]
        kb = self.sym[id(v.b)]
        cond = v.cond
        if ka == kb:
            reflexive = cond in ("eq", "ule", "uge", "sle", "sge")
            return ("lit", 1, 1 if reflexive else 0)
        if cond in ("ugt", "uge", "sgt", "sge"):
            cond = _SWAP[cond]
            ka, kb = kb, ka
        if cond in ("eq", "ne"):
            ka, kb = sorted((ka, kb), key=repr)
        return ("icmp", cond, ka, kb)


def _srange_clamped(w: int, lo: int, hi: int) -> Optional[AbsValue]:
    int_min = -(1 << (w - 1))
    int_max = (1 << (w - 1)) - 1
    lo = max(lo, int_min)
    hi = min(hi, int_max)
    if lo > hi:
        v = AbsValue.bottom(w)
        return v
    if lo == int_min and hi == int_max:
        return None
    return AbsValue.from_srange(SRange(w, lo, hi))


def _range_from_cmp(cond: str, c: int, w: int) -> Optional[AbsValue]:
    """Abstraction of ``{ x | x cond c }``; None means no constraint."""
    full = mask(w)
    sc = to_signed(c, w)
    int_min = -(1 << (w - 1))
    int_max = (1 << (w - 1)) - 1
    if cond == "eq":
        return AbsValue.const(c, w)
    if cond == "ne":
        return None
    if cond == "ult":
        return AbsValue.bottom(w) if c == 0 else AbsValue.from_urange(
            URange(w, 0, c - 1))
    if cond == "ule":
        return AbsValue.from_urange(URange(w, 0, c))
    if cond == "ugt":
        return AbsValue.bottom(w) if c == full else AbsValue.from_urange(
            URange(w, c + 1, full))
    if cond == "uge":
        return AbsValue.from_urange(URange(w, c, full))
    if cond == "slt":
        return AbsValue.bottom(w) if sc == int_min else AbsValue.from_srange(
            SRange(w, int_min, sc - 1))
    if cond == "sle":
        return AbsValue.from_srange(SRange(w, int_min, sc))
    if cond == "sgt":
        return AbsValue.bottom(w) if sc == int_max else AbsValue.from_srange(
            SRange(w, sc + 1, int_max))
    if cond == "sge":
        return AbsValue.from_srange(SRange(w, sc, int_max))
    raise ValueError("unknown condition %r" % cond)


# ---------------------------------------------------------------------------
# Predicate tree walks
# ---------------------------------------------------------------------------


def _toplevel_conjuncts(p: Predicate) -> List[Predicate]:
    """Positive top-level atoms: the only facts implied by ψ."""
    if isinstance(p, PredAnd):
        out: List[Predicate] = []
        for q in p.ps:
            out.extend(_toplevel_conjuncts(q))
        return out
    if isinstance(p, (PredCmp, PredCall)):
        return [p]
    return []  # PredTrue, PredNot, PredOr contribute no must-facts


def _all_atoms(p: Predicate) -> List[Predicate]:
    if isinstance(p, PredAnd) or isinstance(p, PredOr):
        out: List[Predicate] = []
        for q in p.ps:
            out.extend(_all_atoms(q))
        return out
    if isinstance(p, PredNot):
        return _all_atoms(p.p)
    if isinstance(p, (PredCmp, PredCall)):
        return [p]
    return []


def _atom_args(atom: Predicate) -> List[ast.Value]:
    if isinstance(atom, PredCmp):
        return [atom.a, atom.b]
    if isinstance(atom, PredCall):
        return list(atom.args)
    return []


# ---------------------------------------------------------------------------
# Refinement proof
# ---------------------------------------------------------------------------


def _guaranteed_ids(root: ast.Value) -> set:
    """Nodes whose own δ/ρ conditions are implied by ``δ(root) ∧
    ρ(root)``.  The encoder's select is lazy, so arms of a select are
    *not* guaranteed — only its condition cone is."""
    out: set = set()
    stack = [root]
    while stack:
        v = stack.pop()
        if id(v) in out:
            continue
        out.add(id(v))
        if isinstance(v, Select):
            stack.append(v.c)
        else:
            stack.extend(v.operands())
    return out


def _defined_always(v: BinOp, env: Dict[int, AbsValue]) -> bool:
    """ψ-independent proof of the binop's own definedness condition
    (mirrors :func:`repro.core.semantics.definedness_condition`)."""
    a = env[id(v.a)]
    b = env[id(v.b)]
    w = b.width
    op = v.opcode
    if op in ("udiv", "urem"):
        return not b.contains(0)
    if op in ("sdiv", "srem"):
        if b.contains(0):
            return False
        return not (a.contains(1 << (w - 1)) and b.contains(mask(w)))
    if op in ("shl", "lshr", "ashr"):
        return b.ur.hi < w
    return True


def _flag_sound(op: str, flag: str, a: AbsValue, b: AbsValue) -> bool:
    """ψ-independent proof that the flagged operation never poisons
    (mirrors :data:`repro.core.semantics.POISON_CONDITIONS`)."""
    w = a.width
    full = mask(w)
    int_min = -(1 << (w - 1))
    int_max = (1 << (w - 1)) - 1
    if op == "add":
        if flag == "nsw":
            return (a.sr.lo + b.sr.lo >= int_min
                    and a.sr.hi + b.sr.hi <= int_max)
        if flag == "nuw":
            return a.ur.hi + b.ur.hi <= full
    if op == "sub":
        if flag == "nsw":
            return (a.sr.lo - b.sr.hi >= int_min
                    and a.sr.hi - b.sr.lo <= int_max)
        if flag == "nuw":
            return a.ur.lo >= b.ur.hi
    if op == "mul":
        corners = [a.sr.lo * b.sr.lo, a.sr.lo * b.sr.hi,
                   a.sr.hi * b.sr.lo, a.sr.hi * b.sr.hi]
        if flag == "nsw":
            return int_min <= min(corners) and max(corners) <= int_max
        if flag == "nuw":
            return a.ur.hi * b.ur.hi <= full
    if op == "shl":
        if b.ur.hi >= w:
            return False
        s = b.ur.hi  # the constraint is tightest at the largest shift
        if flag == "nsw":
            return (a.sr.lo >= -(1 << (w - 1 - s))
                    and a.sr.hi <= (1 << (w - 1 - s)) - 1)
        if flag == "nuw":
            return a.ur.hi <= (1 << (w - s)) - 1
    if op in ("udiv", "sdiv") and flag == "exact":
        if not b.is_singleton():
            return False
        p = b.value()
        if p == 0 or p & (p - 1):
            return False
        # a multiple of 2^k divides exactly (signed and unsigned)
        return (a.bits.kz & (p - 1)) == p - 1
    if op in ("lshr", "ashr") and flag == "exact":
        if b.ur.hi >= w:
            return False
        s = b.ur.hi  # zero low bits at the largest shift cover smaller
        return (a.bits.kz & mask(s)) == mask(s)
    return False


def prove_refinement(t: ast.Transformation, types, config) -> bool:
    """True when the target provably refines the source under this type
    assignment; False means *unknown* (fall through to the solver).

    A ``True`` here short-circuits exactly the queries
    :func:`repro.core.refinement.check_assignment` would have proven
    UNSAT, so enabling the tier cannot change any verdict.
    """
    try:
        ana = Analysis(t, types, config, use_pre=True).run()
    except (AbsintUnsupported, ast.AliveError):
        return False
    except Exception:
        return False  # "unknown" is always the safe direction
    if ana.infeasible:
        return True  # harvested ψ-facts contradict: goals hold vacuously
    try:
        for name, tgt_inst in t.tgt.items():
            if name not in t.src:
                continue
            src_inst = t.src[name]
            if isinstance(src_inst, (Store, Unreachable)):
                return False  # memory rules never reach here, be safe
            guaranteed = _guaranteed_ids(src_inst)
            for v in _collect_values([tgt_inst]):
                if id(v) in guaranteed or not isinstance(v, BinOp):
                    continue
                if not _defined_always(v, ana.env):
                    return False
                for flag in v.flags:
                    if not _flag_sound(v.opcode, flag, ana.env[id(v.a)],
                                       ana.env[id(v.b)]):
                        return False
            if ana.sym.get(id(src_inst)) != ana.sym.get(id(tgt_inst)):
                return False
        return True
    except Exception:
        return False


# ---------------------------------------------------------------------------
# Concrete evaluation (witness validation)
# ---------------------------------------------------------------------------


class _Poison(Exception):
    """Internal: strict evaluation produced poison."""


def _concrete_eval(v: ast.Value, assign: Dict[str, int], ana: Analysis,
                   strict: bool) -> int:
    """Evaluate ι(v) concretely.  ``strict`` raises
    :class:`~repro.ir.intops.UndefinedBehavior` / :class:`_Poison`
    exactly where the interpreter would; non-strict follows the total
    SMT semantics (the encoder's ι)."""
    w = ana.width(v)
    if isinstance(v, Literal):
        return v.value & mask(w)
    if isinstance(v, (Input, ConstantSymbol)):
        return assign[v.name] & mask(w)
    if isinstance(v, ConstExpr):
        def lookup(node):
            if isinstance(node, ConstExpr) and node.op == "width":
                return ana.width(node.args[0])
            return assign[node.name]
        return eval_constexpr(v, w, lookup)
    if isinstance(v, BinOp):
        a = _concrete_eval(v.a, assign, ana, strict)
        b = _concrete_eval(v.b, assign, ana, strict)
        if strict:
            out = intops.binop(v.opcode, a, b, w)
            if v.flags and intops.binop_poisons(v.opcode, v.flags, a, b, w):
                raise _Poison(v.name)
            return out
        return total_binop(v.opcode, a, b, w)
    if isinstance(v, ICmp):
        wa = ana.width(v.a)
        a = _concrete_eval(v.a, assign, ana, strict)
        b = _concrete_eval(v.b, assign, ana, strict)
        if strict:
            return intops.icmp(v.cond, a, b, wa)
        return total_icmp(v.cond, a, b, wa)
    if isinstance(v, Select):
        c = _concrete_eval(v.c, assign, ana, strict)
        # lazy select: only the chosen arm is evaluated (matches both
        # the interpreter and the encoder's ite-structured δ/ρ)
        arm = v.a if c == 1 else v.b
        return _concrete_eval(arm, assign, ana, strict)
    if isinstance(v, ConvOp):
        w_in = ana.width(v.x)
        x = _concrete_eval(v.x, assign, ana, strict)
        kind = v.opcode
        if kind not in ("zext", "sext", "trunc"):
            kind = "zext" if w >= w_in else "trunc"
        if strict:
            return intops.convert(kind, x, w_in, w)
        return total_conv(kind, x, w_in, w)
    if isinstance(v, Copy):
        return _concrete_eval(v.x, assign, ana, strict)
    raise AbsintUnsupported(type(v).__name__)


def _atom_concrete(atom: Predicate, assign: Dict[str, int],
                   ana: Analysis) -> Optional[bool]:
    """Concrete truth of a precondition atom's semantic condition;
    None when it cannot be evaluated (syntactic predicates)."""
    if isinstance(atom, PredCmp):
        wa = ana.width(atom.a)
        a = _concrete_eval(atom.a, assign, ana, strict=False)
        b = _concrete_eval(atom.b, assign, ana, strict=False)
        return bool(total_icmp(_CMP_TO_ICMP[atom.op], a, b, wa))
    if not isinstance(atom, PredCall):
        return None
    if atom.kind == SYNTACTIC:
        return None
    vals = [_concrete_eval(a, assign, ana, strict=False)
            for a in atom.args]
    w = ana.width(atom.args[0])
    full = mask(w)
    int_min = -(1 << (w - 1))
    int_max = (1 << (w - 1)) - 1
    a = vals[0]
    fn = atom.fn
    if fn == "isPowerOf2":
        return a != 0 and a & (a - 1) == 0
    if fn == "isPowerOf2OrZero":
        return a == 0 or a & (a - 1) == 0
    if fn == "isSignBit":
        return a == 1 << (w - 1)
    if fn == "isShiftedMask":
        if a == 0:
            return False
        x = a >> ((a & -a).bit_length() - 1)
        return x & (x + 1) == 0
    if fn == "MaskedValueIsZero":
        return (a & vals[1]) == 0
    sa = to_signed(a, w)
    if fn.startswith("WillNotOverflow"):
        b = vals[1]
        sb = to_signed(b, w)
        if fn == "WillNotOverflowUnsignedAdd":
            return a + b <= full
        if fn == "WillNotOverflowUnsignedSub":
            return a >= b
        if fn == "WillNotOverflowUnsignedMul":
            return a * b <= full
        if fn == "WillNotOverflowUnsignedShl":
            return b < w and (a << b) <= full
        if fn == "WillNotOverflowSignedAdd":
            return int_min <= sa + sb <= int_max
        if fn == "WillNotOverflowSignedSub":
            return int_min <= sa - sb <= int_max
        if fn == "WillNotOverflowSignedMul":
            return int_min <= sa * sb <= int_max
        if fn == "WillNotOverflowSignedShl":
            return b < w and int_min <= sa * (1 << b) <= int_max
    return None


def _eval_pred(p: Predicate, assign: Dict[str, int],
               ana: Analysis) -> bool:
    """Concrete truth of the whole precondition (syntactic atoms are
    TRUE, exactly as the encoder treats them)."""
    if isinstance(p, PredTrue):
        return True
    if isinstance(p, PredAnd):
        return all(_eval_pred(q, assign, ana) for q in p.ps)
    if isinstance(p, PredOr):
        return any(_eval_pred(q, assign, ana) for q in p.ps)
    if isinstance(p, PredNot):
        return not _eval_pred(p.p, assign, ana)
    truth = _atom_concrete(p, assign, ana)
    return True if truth is None else truth


def _leaf_names(values: Iterable[ast.Value]) -> List[str]:
    out = []
    seen = set()
    for v in values:
        if isinstance(v, (Input, ConstantSymbol)) and v.name not in seen:
            seen.add(v.name)
            out.append(v.name)
    return out


def _witness_candidates(ana: Analysis,
                        leaves: List[ast.Value]) -> List[Dict[str, int]]:
    """A small deterministic pool of assignments: uniform patterns plus
    abstraction-guided extremes for each leaf."""
    named = [v for v in leaves if isinstance(v, (Input, ConstantSymbol))]
    out: List[Dict[str, int]] = []

    def uniform(pick) -> Dict[str, int]:
        return {v.name: pick(ana.width(v)) & mask(ana.width(v))
                for v in named}

    out.append(uniform(lambda w: 0))
    out.append(uniform(lambda w: 1))
    out.append(uniform(lambda w: mask(w)))
    out.append(uniform(lambda w: 0x5555555555555555))
    out.append(uniform(lambda w: 1 << (w - 1)))
    base = {v.name: ana.env[id(v)].ur.lo for v in named}
    out.append(base)
    for v in named:
        tweaked = dict(base)
        tweaked[v.name] = ana.env[id(v)].ur.hi
        out.append(tweaked)
    return out


# ---------------------------------------------------------------------------
# Lint: abstractly-refuted precondition atoms
# ---------------------------------------------------------------------------


def _atom_always_false(atom: Predicate, ana: Analysis) -> bool:
    env = ana.env
    if isinstance(atom, PredCmp):
        av_a = env[id(atom.a)]
        av_b = env[id(atom.b)]
        if av_a.width != av_b.width:
            return False
        return icmp_decide(_CMP_TO_ICMP[atom.op], av_a, av_b) is False
    if not isinstance(atom, PredCall) or atom.kind == SYNTACTIC:
        return False
    a = env[id(atom.args[0])]
    w = a.width
    full = mask(w)
    int_min = -(1 << (w - 1))
    int_max = (1 << (w - 1)) - 1
    fn = atom.fn
    if fn == "isPowerOf2":
        return not any(a.contains(1 << s) for s in range(w))
    if fn == "isPowerOf2OrZero":
        return (not a.contains(0)
                and not any(a.contains(1 << s) for s in range(w)))
    if fn == "isSignBit":
        return not a.contains(1 << (w - 1))
    if fn == "isShiftedMask":
        for run in range(1, w + 1):
            for shift in range(0, w - run + 1):
                if a.contains(mask(run) << shift):
                    return False
        return True
    if fn == "MaskedValueIsZero":
        m = env[id(atom.args[1])]
        return (a.bits.ko & m.bits.ko) != 0
    if fn.startswith("WillNotOverflow") and len(atom.args) == 2:
        b = env[id(atom.args[1])]
        if fn == "WillNotOverflowUnsignedAdd":
            return a.ur.lo + b.ur.lo > full
        if fn == "WillNotOverflowUnsignedSub":
            return a.ur.hi < b.ur.lo
        if fn == "WillNotOverflowUnsignedMul":
            return a.ur.lo * b.ur.lo > full
        if fn == "WillNotOverflowSignedAdd":
            return (a.sr.lo + b.sr.lo > int_max
                    or a.sr.hi + b.sr.hi < int_min)
        if fn == "WillNotOverflowSignedSub":
            return (a.sr.lo - b.sr.hi > int_max
                    or a.sr.hi - b.sr.lo < int_min)
        if fn == "WillNotOverflowSignedMul":
            corners = [a.sr.lo * b.sr.lo, a.sr.lo * b.sr.hi,
                       a.sr.hi * b.sr.lo, a.sr.hi * b.sr.hi]
            return min(corners) > int_max or max(corners) < int_min
    return False


def refuted_pre_atoms(t: ast.Transformation, types, config) -> List[dict]:
    """Precondition atoms that are abstractly always-false, each with a
    concrete witness revalidated through the interpreter-level
    semantics (a finding is silently dropped if no witness survives —
    the witness is the guard against analysis bugs, not the user)."""
    try:
        ana = Analysis(t, types, config, use_pre=False).run()
    except (AbsintUnsupported, ast.AliveError):
        return []
    except Exception:
        return []
    findings = []
    for atom in _all_atoms(t.pre):
        if any(isinstance(x, UndefValue)
               for a in _atom_args(atom)
               for x in _collect_values([a])):
            continue
        try:
            if not _atom_always_false(atom, ana):
                continue
        except Exception:
            continue
        leaves = [x for a in _atom_args(atom) for x in _collect_values([a])]
        witness = None
        for cand in _witness_candidates(ana, leaves):
            try:
                if _atom_concrete(atom, cand, ana) is False:
                    witness = {n: cand[n] for n in _leaf_names(leaves)}
                    break
            except (intops.UndefinedBehavior, _Poison, ast.AliveError,
                    KeyError):
                continue
        if witness is None:
            continue
        findings.append({
            "atom": str(atom),
            "line": getattr(atom, "line", None),
            "col": getattr(atom, "col", None),
            "witness": witness,
            "types": types.signature(),
        })
    return findings


# ---------------------------------------------------------------------------
# Discovery: validated counterexample pre-filter
# ---------------------------------------------------------------------------


def refute_candidate(t: ast.Transformation, config) -> Optional[dict]:
    """Return a concrete, strictly-validated counterexample for a
    discovery candidate, or None.

    The abstract disjointness of the root values only *nominates* the
    candidate; the drop decision rests entirely on replaying a witness
    through the strict interpreter semantics (source defined,
    poison-free, values differ under the total target semantics)."""
    from ..core.typecheck import TypeAssignment
    from ..core.verifier import decompose

    try:
        early, checker, mappings = decompose(t, config)
    except Exception:
        return None
    if early is not None or not mappings:
        return None
    types = TypeAssignment(checker, mappings[0])
    try:
        ana = Analysis(t, types, config, use_pre=True).run()
    except (AbsintUnsupported, ast.AliveError):
        return None
    except Exception:
        return None
    if ana.infeasible:
        return None
    src_inst = t.src.get(t.root)
    tgt_inst = t.tgt.get(t.root)
    if src_inst is None or tgt_inst is None:
        return None
    if isinstance(src_inst, (Store, Unreachable)):
        return None
    all_values = _collect_values([src_inst, tgt_inst])
    if any(isinstance(v, UndefValue) for v in all_values):
        return None  # witnesses cannot speak for quantified undef
    if not ana.env[id(src_inst)].meet(ana.env[id(tgt_inst)]).empty:
        return None  # not abstractly disjoint: no reason to suspect
    for cand in _witness_candidates(ana, all_values):
        try:
            if not _eval_pred(t.pre, cand, ana):
                continue
            src_val = _concrete_eval(src_inst, cand, ana, strict=True)
            tgt_val = _concrete_eval(tgt_inst, cand, ana, strict=False)
        except (intops.UndefinedBehavior, _Poison, ast.AliveError,
                KeyError, AbsintUnsupported):
            continue
        if src_val != tgt_val:
            return {
                "witness": {n: cand[n] for n in _leaf_names(all_values)},
                "types": types.signature(),
                "src": src_val,
                "tgt": tgt_val,
            }
    return None
