"""repro — a full reproduction of "Provably Correct Peephole
Optimizations with Alive" (Lopes, Menendez, Nagarakatte, Regehr,
PLDI 2015).

Subpackages:

* :mod:`repro.smt` — the SMT substrate (CDCL SAT, bit-blasting, CEGIS
  ∃∀ solving) replacing the paper's use of Z3;
* :mod:`repro.typing` — Alive's polymorphic type system and the
  feasible-type enumeration of §3.2;
* :mod:`repro.ir` — the Alive language (parser, AST, constant
  expressions, predicates) and a concrete mutable IR + interpreter;
* :mod:`repro.core` — the verifier: VC generation with the three kinds
  of undefined behavior (§3.1/§3.3), refinement checking,
  counterexamples (Figure 5), attribute inference (§3.4);
* :mod:`repro.codegen` — InstCombine-style C++ emission (§4);
* :mod:`repro.opt` — the executable peephole pass engine + baseline;
* :mod:`repro.suite` — the bundled corpus (Table 3, Figure 8, §6.2);
* :mod:`repro.workload` — synthetic workloads and the cost model used
  by the §6.4 / Figure 9 benchmarks.

Quickstart::

    from repro.ir import parse_transformation
    from repro.core import verify

    t = parse_transformation('''
    %1 = xor %x, -1
    %2 = add %1, C
    =>
    %2 = sub C-1, %x
    ''')
    print(verify(t).summary())
"""

__version__ = "1.0.0"

from .core import Config, VerificationResult, verify, verify_all
from .ir import parse_transformation, parse_transformations

__all__ = [
    "Config",
    "VerificationResult",
    "verify",
    "verify_all",
    "parse_transformation",
    "parse_transformations",
    "__version__",
]
