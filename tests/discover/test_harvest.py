"""Harvest-stage units: samples, enumeration, fingerprints, pairing."""

from repro.discover.harvest import (
    UB,
    Candidate,
    build_samples,
    binop_expr,
    enumerate_exprs,
    expr_lines,
    leaf_expr,
    lit_expr,
    log2_expr,
    pair_candidates,
)
from repro.ir import parse_transformation


class TestSamples:
    def test_deterministic(self):
        a, b = build_samples(7), build_samples(7)
        assert a.envs == b.envs
        assert a.widths == b.widths

    def test_seeds_differ(self):
        assert build_samples(0).envs != build_samples(1).envs

    def test_constant_subspaces(self):
        samples = build_samples(0)
        for i in samples.subspaces["isPowerOf2(C1)"]:
            c = samples.envs[i]["C1"]
            assert c != 0 and c & (c - 1) == 0
        for i in samples.subspaces["isSignBit(C1)"]:
            assert samples.envs[i]["C1"] == 1 << (samples.widths[i] - 1)
        for i in samples.subspaces["C1 != 0"]:
            assert samples.envs[i]["C1"] != 0
        # proper subspaces: none of them covers every sample
        for idxs in samples.subspaces.values():
            assert 0 < len(idxs) < samples.n


class TestExpressions:
    def test_ub_is_part_of_the_fingerprint(self):
        samples = build_samples(0)
        x = leaf_expr("%x", samples)
        c = leaf_expr("C1", samples)
        div = binop_expr("udiv", x, c, samples)
        # C1 sweeps through zero at width 4, so division must trap there
        assert UB in div.vec
        assert any(v is not UB for v in div.vec)

    def test_log2_is_ub_outside_pow2(self):
        samples = build_samples(0)
        e = log2_expr(samples)
        pow2 = set(samples.subspaces["isPowerOf2(C1)"])
        for i, v in enumerate(e.vec):
            assert (v is UB) == (i not in pow2)

    def test_dag_sharing_counts_once(self):
        samples = build_samples(0)
        x = leaf_expr("%x", samples)
        m = binop_expr("mul", x, x, samples)
        squared_twice = binop_expr("add", m, m, samples)
        assert squared_twice.size == 2  # mul + add, not mul twice

    def test_rendered_lines_parse(self):
        samples = build_samples(0)
        x = leaf_expr("%x", samples)
        two = lit_expr(2, samples)
        src = binop_expr("mul", x, two, samples)
        tgt = binop_expr("shl", x, lit_expr(1, samples), samples)
        text = Candidate(src, tgt, "exact", "", "enumerated").rule_text("t")
        t = parse_transformation(text)
        assert t.name == "t"

    def test_leaf_target_renders_as_copy(self):
        samples = build_samples(0)
        assert expr_lines(leaf_expr("%x", samples), "%t") == ["%r = %x"]
        assert expr_lines(lit_expr(0, samples), "%t") == ["%r = 0"]


class TestEnumeration:
    def test_deterministic(self):
        samples = build_samples(3)
        a = enumerate_exprs(samples, max_insts=2)
        b = enumerate_exprs(samples, max_insts=2)
        assert [e.key for e in a.exprs] == [e.key for e in b.exprs]

    def test_keys_unique(self):
        samples = build_samples(0)
        result = enumerate_exprs(samples, max_insts=2)
        keys = [e.key for e in result.exprs]
        assert len(keys) == len(set(keys))

    def test_ceiling_truncates(self):
        samples = build_samples(0)
        result = enumerate_exprs(samples, max_insts=3, max_exprs=500)
        assert result.truncated
        assert len(result.exprs) <= 500


class TestPairing:
    _cache = {}

    def _pair(self, samples, max_insts=2):
        cached = TestPairing._cache.get(max_insts)
        if cached is None:
            result = enumerate_exprs(samples, max_insts=max_insts)
            stubs = [Candidate(e, None, "stub", "", "enumerated")
                     for e in result.exprs]
            cached = pair_candidates(stubs, result.exprs, samples)
            TestPairing._cache[max_insts] = cached
        return cached

    def test_finds_the_classics(self):
        samples = build_samples(0)
        pairs = {(c.src.key, c.tgt.key): c for c in self._pair(samples)}
        assert ("(sub %x %x)", "0") in pairs
        assert pairs[("(sub %x %x)", "0")].kind == "exact"

    def test_partial_pairs_carry_a_subspace_hint(self):
        samples = build_samples(0)
        partial = [c for c in self._pair(samples) if c.kind == "partial"]
        assert partial
        for c in partial:
            assert c.hint in samples.subspaces
            assert "C1" in c.src.base_leaves

    def test_mul_pow2_pairs_with_shl_log2(self):
        samples = build_samples(0)
        match = [
            c for c in self._pair(samples)
            if c.src.key == "(mul %x C1)"
            and c.tgt.key == "(shl %x log2(C1))"
        ]
        assert match and match[0].kind == "partial"
        assert match[0].hint == "isPowerOf2(C1)"

    def test_targets_never_add_leaves(self):
        samples = build_samples(0)
        for c in self._pair(samples):
            assert c.tgt.base_leaves <= c.src.base_leaves

    def test_savings_are_positive(self):
        samples = build_samples(0)
        for c in self._pair(samples):
            assert c.saving > 0
