"""The paper's primary contribution: the Alive verification engine.

Pipeline: type checking (Figure 3) → feasible-type enumeration (§3.2) →
VC generation with undefined-behavior semantics (§3.1, Tables 1–2, §3.3
for memory) → refinement checking via ∃∀ SMT queries (§3.1.2) →
counterexamples (Figure 5) and attribute inference (§3.4, Figure 6).
"""

from .config import Config, DEFAULT_CONFIG, FAST_CONFIG, PAPER_CONFIG
from .counterexample import Counterexample
from .refinement import CheckOutcome
from .semantics import Unsupported
from .verifier import (
    INVALID,
    UNKNOWN,
    UNSUPPORTED,
    UNTYPEABLE,
    VALID,
    ResultBuilder,
    VerificationResult,
    decompose,
    verify,
    verify_all,
)

__all__ = [
    "Config",
    "DEFAULT_CONFIG",
    "FAST_CONFIG",
    "PAPER_CONFIG",
    "CheckOutcome",
    "Counterexample",
    "Unsupported",
    "ResultBuilder",
    "VerificationResult",
    "decompose",
    "verify",
    "verify_all",
    "VALID",
    "INVALID",
    "UNKNOWN",
    "UNSUPPORTED",
    "UNTYPEABLE",
]
