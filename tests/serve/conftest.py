"""Fixtures for the serving-layer tests.

The end-to-end tests run a real :class:`VerifyServer` on a real TCP
port — but inside this process, on an event loop owned by a background
thread, so the blocking :class:`VerifyClient` can talk to it from the
test thread exactly the way an external client would.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.core import Config
from repro.serve import ServeOptions, VerifyClient, VerifyServer

#: small widths keep refinement checks fast; identical to the engine
#: test config so verdicts are well known
TEST_CONFIG = Config(max_width=4, prefer_widths=(4,),
                     max_type_assignments=2)

GOOD = "Name: good\n%r = add %x, 0\n=>\n%r = %x\n"
BAD = "Name: bad\n%r = add %x, 1\n=>\n%r = add %x, 2\n"
GOOD2 = "Name: good2\n%r = sub %x, 0\n=>\n%r = %x\n"


class ServerHarness:
    """A live server plus the machinery to reach into its loop."""

    def __init__(self, server: VerifyServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def addr(self) -> str:
        return "127.0.0.1:%d" % self.server.port

    def run_coro(self, coro, timeout: float = 30.0):
        """Run *coro* on the server's loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(
            coro, self.loop).result(timeout)

    def client(self, **kwargs) -> VerifyClient:
        return VerifyClient(self.addr, timeout=30.0, **kwargs)

    def drain(self) -> None:
        self.run_coro(self.server.drain())

    def stop(self) -> None:
        if not self.server.draining:
            self.drain()
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)


@pytest.fixture
def make_server():
    """Factory fixture: start a server with custom options; auto-stop."""
    harnesses = []

    def start(config: Config = TEST_CONFIG, cache=None,
              **option_kwargs) -> ServerHarness:
        option_kwargs.setdefault("port", 0)
        option_kwargs.setdefault("max_wait_ms", 5.0)
        server = VerifyServer(config, cache=cache,
                              options=ServeOptions(**option_kwargs))
        loop = asyncio.new_event_loop()
        started = threading.Event()

        def target():
            asyncio.set_event_loop(loop)

            async def boot():
                await server.start()
                started.set()

            # run_forever (not server.run()) so the loop stays usable
            # for run_coro() even after a drain stopped the server
            loop.run_until_complete(boot())
            loop.run_forever()

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        assert started.wait(timeout=10), "server failed to start"
        harness = ServerHarness(server, loop, thread)
        harnesses.append(harness)
        return harness

    yield start
    for harness in harnesses:
        harness.stop()
