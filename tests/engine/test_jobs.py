"""Job decomposition and content-addressed keys."""

import pytest

from repro.core import Config
from repro.engine.jobs import (
    assignment_signature,
    job_key,
    normalized_text,
    plan_transformation,
)
from repro.ir import parse_transformation

CONFIG = Config(max_width=4, prefer_widths=(4,), max_type_assignments=4)

ADD = """
%r = add %x, 0
=>
%r = %x
"""

ADD_PRE = """
Pre: isPowerOf2(C)
%r = mul %x, C
=>
%r = shl %x, log2(C)
"""


def plan(text, name="t", config=CONFIG, fingerprint="fp"):
    return plan_transformation(parse_transformation(text, name), config,
                               fingerprint)


class TestJobKeys:
    def test_keys_are_stable(self):
        a = plan(ADD)
        b = plan(ADD)
        assert [j.key for j in a.jobs] == [j.key for j in b.jobs]
        assert len(a.jobs) == 4  # one per feasible width

    def test_key_ignores_transformation_name(self):
        a = plan(ADD, name="first")
        b = plan(ADD, name="renamed")
        assert [j.key for j in a.jobs] == [j.key for j in b.jobs]
        assert a.jobs[0].name == "first" and b.jobs[0].name == "renamed"

    def test_key_distinguishes_assignments(self):
        keys = {j.key for j in plan(ADD).jobs}
        assert len(keys) == 4

    def test_key_depends_on_body(self):
        other = ADD.replace("add %x, 0", "add %x, 1")
        assert plan(ADD).jobs[0].key != plan(other).jobs[0].key

    def test_key_depends_on_precondition(self):
        weaker = ADD_PRE.replace("Pre: isPowerOf2(C)\n", "")
        assert plan(ADD_PRE).jobs[0].key != plan(weaker).jobs[0].key

    def test_key_depends_on_config_knobs(self):
        other = Config(max_width=4, prefer_widths=(4,),
                       max_type_assignments=4, conflict_limit=7)
        assert plan(ADD).jobs[0].key != plan(ADD, config=other).jobs[0].key

    def test_key_depends_on_fingerprint(self):
        assert (plan(ADD, fingerprint="v1").jobs[0].key
                != plan(ADD, fingerprint="v2").jobs[0].key)

    def test_job_key_function_is_deterministic(self):
        assert job_key("b", "s", {"k": 1}, "f") == job_key("b", "s", {"k": 1}, "f")
        assert job_key("b", "s", {"k": 1}, "f") != job_key("b", "s", {"k": 2}, "f")


class TestNormalization:
    def test_name_header_is_normalized(self):
        t = parse_transformation(ADD, "whatever")
        assert normalized_text(t).startswith("Name: _\n")

    def test_signature_is_sorted_and_canonical(self):
        sig = assignment_signature({"b": "i8", "a": "i4"})
        assert sig == "a=i4,b=i8"


class TestPlan:
    def test_early_result_for_scope_error(self):
        # %a is neither used later nor overwritten: §2.1 rejects it
        bad = "%a = add %x, 1\n%r = add %x, 2\n=>\n%r = %x\n"
        p = plan(bad)
        assert p.early is not None
        assert p.early.status == "unsupported"
        assert p.jobs == []

    def test_payload_is_plain_data(self):
        import pickle

        payload = plan(ADD).jobs[0].payload()
        assert set(payload) == {"key", "text", "index", "knobs"}
        assert pickle.loads(pickle.dumps(payload)) == payload
