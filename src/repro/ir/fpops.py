"""Concrete IEEE-754 evaluation on bit patterns (repro.fp ground truth).

Operands and results are *bit patterns* (Python ints of the format's
width), exactly like :mod:`repro.ir.intops` works on two's-complement
bit patterns.  All arithmetic routes through the host's binary64
hardware: for half (p=11) and float (p=24) a single binary64 operation
followed by one rounding to the narrow format is exact because
53 >= 2p + 2 holds for both — the classic double-rounding-safety bound
(Figueroa, 1995) — so ``struct``-based round-trips implement correct
round-to-nearest-even without any soft-float loop.

Every NaN result is canonicalized to the format's quiet NaN with a zero
payload and positive sign.  The symbolic soft-float encoder
(:mod:`repro.smt.softfloat`) follows the same convention, which makes
the two directly diffable in the fuzz cross-check; refinement never
depends on NaN payloads (see DESIGN.md).
"""

from __future__ import annotations

import math
import struct
from typing import Tuple

#: kind -> (width, exponent bits, mantissa bits); mirrors
#: :data:`repro.typing.types.FP_FORMATS` (duplicated to keep the ir
#: package free of a typing dependency)
FORMATS = {
    "half": (16, 5, 10),
    "float": (32, 8, 23),
    "double": (64, 11, 52),
}

_STRUCT = {"half": "e", "float": "f", "double": "d"}

WIDTH_TO_KIND = {16: "half", 32: "float", 64: "double"}

FBINOPS = ("fadd", "fsub", "fmul", "fdiv", "frem")


def kind_for_width(width: int) -> str:
    try:
        return WIDTH_TO_KIND[width]
    except KeyError:
        raise ValueError("no floating-point format of width %d" % width)


def qnan_bits(kind: str) -> int:
    """The canonical quiet NaN: positive sign, exponent all ones,
    mantissa MSB set, zero payload."""
    _w, exp, man = FORMATS[kind]
    return ((1 << exp) - 1) << man | (1 << (man - 1))


def inf_bits(kind: str, sign: int = 0) -> int:
    w, exp, man = FORMATS[kind]
    return (sign << (w - 1)) | (((1 << exp) - 1) << man)


def _fields(bits: int, kind: str) -> Tuple[int, int, int]:
    w, exp, man = FORMATS[kind]
    return (bits >> (w - 1)) & 1, (bits >> man) & ((1 << exp) - 1), bits & ((1 << man) - 1)


def is_nan(bits: int, kind: str) -> bool:
    _s, e, m = _fields(bits, kind)
    _w, exp, _man = FORMATS[kind]
    return e == (1 << exp) - 1 and m != 0


def is_inf(bits: int, kind: str) -> bool:
    _s, e, m = _fields(bits, kind)
    _w, exp, _man = FORMATS[kind]
    return e == (1 << exp) - 1 and m == 0


def is_zero(bits: int, kind: str) -> bool:
    _s, e, m = _fields(bits, kind)
    return e == 0 and m == 0


def is_negative(bits: int, kind: str) -> bool:
    w, _e, _m = FORMATS[kind]
    return bool((bits >> (w - 1)) & 1)


def to_float(bits: int, kind: str) -> float:
    """Decode a bit pattern to a Python float (binary64 is a superset of
    all three formats, so this is exact)."""
    w = FORMATS[kind][0]
    raw = bits.to_bytes(w // 8, "little")
    return struct.unpack("<" + _STRUCT[kind], raw)[0]


def from_float(value: float, kind: str) -> int:
    """Encode a Python float, rounding to nearest-even; NaN canonical."""
    if math.isnan(value):
        return qnan_bits(kind)
    try:
        raw = struct.pack("<" + _STRUCT[kind], value)
    except OverflowError:
        # struct refuses out-of-range for 'e'/'f'; IEEE rounds to ±inf
        return inf_bits(kind, 1 if value < 0 else 0)
    return int.from_bytes(raw, "little")


def encode_literal(value: float, kind: str) -> int:
    """Bit pattern of a source-level FP literal at the given format."""
    return from_float(value, kind)


def fbinop(op: str, a: int, b: int, kind: str) -> int:
    """One IEEE-754 binary operation on bit patterns, RNE, canonical
    quiet-NaN results.  ``frem`` is C ``fmod`` (LLVM's frem semantics):
    exact, sign of the dividend."""
    x, y = to_float(a, kind), to_float(b, kind)
    if op == "fadd":
        r = x + y
    elif op == "fsub":
        r = x - y
    elif op == "fmul":
        r = x * y
    elif op == "fdiv":
        if y == 0.0:
            if math.isnan(x) or x == 0.0:
                return qnan_bits(kind)
            sign = 1 if (math.copysign(1.0, x) < 0) != (math.copysign(1.0, y) < 0) else 0
            return inf_bits(kind, sign)
        r = x / y
    elif op == "frem":
        if math.isnan(x) or math.isnan(y) or math.isinf(x) or y == 0.0:
            return qnan_bits(kind)
        # fmod is always exact: the result's exponent never exceeds the
        # dividend's, so no double rounding is possible either
        r = math.fmod(x, y)
    else:
        raise ValueError("unknown fp opcode %r" % op)
    return from_float(r, kind)


def fbinop_poisons(op: str, flags: Tuple[str, ...], a: int, b: int,
                   result: int, kind: str) -> bool:
    """Fast-math flags as poison (LLVM LangRef): ``nnan`` poisons NaN
    operands/results, ``ninf`` poisons infinities; ``fast`` implies
    both.  ``nsz``/``arcp`` grant rewrite freedom only and never poison."""
    nnan = "nnan" in flags or "fast" in flags
    ninf = "ninf" in flags or "fast" in flags
    if nnan and (is_nan(a, kind) or is_nan(b, kind) or is_nan(result, kind)):
        return True
    if ninf and (is_inf(a, kind) or is_inf(b, kind) or is_inf(result, kind)):
        return True
    return False


def fcmp(cond: str, a: int, b: int, kind: str) -> int:
    """One fcmp condition on bit patterns; returns 0 or 1."""
    if cond == "true":
        return 1
    if cond == "false":
        return 0
    x, y = to_float(a, kind), to_float(b, kind)
    unordered = math.isnan(x) or math.isnan(y)
    base = cond[1:]
    if cond == "ord":
        return 0 if unordered else 1
    if cond == "uno":
        return 1 if unordered else 0
    if base == "eq":
        ordered_result = x == y
    elif base == "ne":
        ordered_result = x != y
    elif base == "gt":
        ordered_result = x > y
    elif base == "ge":
        ordered_result = x >= y
    elif base == "lt":
        ordered_result = x < y
    elif base == "le":
        ordered_result = x <= y
    else:
        raise ValueError("unknown fcmp condition %r" % cond)
    if cond[0] == "o":
        return 1 if (not unordered and ordered_result) else 0
    if cond[0] == "u":
        return 1 if (unordered or ordered_result) else 0
    raise ValueError("unknown fcmp condition %r" % cond)


def fcmp_poisons(flags: Tuple[str, ...], a: int, b: int, kind: str) -> bool:
    nnan = "nnan" in flags or "fast" in flags
    ninf = "ninf" in flags or "fast" in flags
    if nnan and (is_nan(a, kind) or is_nan(b, kind)):
        return True
    if ninf and (is_inf(a, kind) or is_inf(b, kind)):
        return True
    return False


def fpconvert(op: str, x: int, from_kind_or_width, to_kind_or_width):
    """FP conversions on bit patterns.

    * ``fpext``/``fptrunc``: kind -> kind (fpext exact, fptrunc RNE);
    * ``sitofp``/``uitofp``: integer width -> kind (RNE);
    * ``fptosi``/``fptoui``: kind -> integer width, truncation toward
      zero; returns ``None`` for the poison cases (NaN or out of range).
    """
    if op in ("fpext", "fptrunc"):
        return from_float(to_float(x, from_kind_or_width), to_kind_or_width)
    if op in ("sitofp", "uitofp"):
        width = from_kind_or_width
        value = x & ((1 << width) - 1)
        if op == "sitofp" and value >= (1 << (width - 1)):
            value -= 1 << width
        return from_float(float(value), to_kind_or_width)
    if op in ("fptosi", "fptoui"):
        kind, width = from_kind_or_width, to_kind_or_width
        if is_nan(x, kind) or is_inf(x, kind):
            return None
        value = math.trunc(to_float(x, kind))
        if op == "fptoui":
            if value < 0 or value > (1 << width) - 1:
                return None
            return value
        if value < -(1 << (width - 1)) or value > (1 << (width - 1)) - 1:
            return None
        return value & ((1 << width) - 1)
    raise ValueError("unknown fp conversion %r" % op)
