"""The constant-expression language (paper §2.2).

Preconditions and target templates may compute new compile-time
constants from abstract ones: ``C-1``, ``C2 / (1 << C1)``, ``log2(C1)``,
``C1 ^ C2`` and so on.  A :class:`ConstExpr` node is a
:class:`~repro.ir.ast.Value`, so it can appear anywhere an operand can.

Binary operators are signed by default (``/`` and ``%`` are ``sdiv`` /
``srem``); unsigned variants are spelled ``/u`` and ``%u`` as in the
original Alive.  ``>>`` is a logical shift right (``u>>`` is accepted as
an alias); ``>>a`` selects the arithmetic shift.

Built-in functions (a subset of the original's, covering the corpus):

====================  =====================================================
``abs(a)``            two's-complement absolute value
``log2(a)``           floor of the base-2 logarithm (0 for input 0)
``width(v)``          bit width of *v*'s type (a literal after typing)
``umax/umin(a, b)``   unsigned maximum / minimum
``smax/smin(a, b)``   signed maximum / minimum
====================  =====================================================

The SMT encoding of these expressions lives in
:mod:`repro.core.semantics`; concrete evaluation (for the optimizer's
rewriter) in :func:`eval_constexpr`.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

from .ast import AliveError, ConstantSymbol, Literal, Value

# Binary operator surface syntax -> canonical op tag
BINOP_TOKENS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "sdiv",
    "/u": "udiv",
    "%": "srem",
    "%u": "urem",
    "<<": "shl",
    ">>": "lshr",
    "u>>": "lshr",
    ">>a": "ashr",
    "&": "and",
    "|": "or",
    "^": "xor",
}

UNOP_TOKENS = {"-": "neg", "~": "not"}

FUNCTIONS: Dict[str, int] = {
    "abs": 1,
    "log2": 1,
    "width": 1,
    "umax": 2,
    "umin": 2,
    "smax": 2,
    "smin": 2,
}


class ConstExpr(Value):
    """An operator or function applied to constant expressions."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Sequence[Value]):
        super().__init__("(%s %s)" % (op, " ".join(a.name for a in args)), None)
        self.op = op
        self.args = tuple(args)

    def operands(self) -> Tuple[Value, ...]:
        return self.args


def is_constant_value(v: Value) -> bool:
    """True if *v* is a compile-time constant expression.

    ``width`` applied to any value is compile-time too, since the width
    is fixed once types are assigned.
    """
    if isinstance(v, (Literal, ConstantSymbol)):
        return True
    if isinstance(v, ConstExpr):
        if v.op == "width":
            return True
        return all(is_constant_value(a) for a in v.args)
    return False


# ---------------------------------------------------------------------------
# Concrete evaluation (used by the rewriting engine)
# ---------------------------------------------------------------------------


def _mask(w: int) -> int:
    return (1 << w) - 1


def _signed(x: int, w: int) -> int:
    x &= _mask(w)
    return x - (1 << w) if x >= 1 << (w - 1) else x


def _floor_log2(x: int) -> int:
    return x.bit_length() - 1 if x > 0 else 0


def eval_constexpr(expr: Value, width: int,
                   lookup: Callable[[Value], int]) -> int:
    """Evaluate a constant expression to an unsigned value at *width*.

    *lookup* resolves :class:`ConstantSymbol` leaves (and, for ``width``,
    the bit width of an arbitrary value's type).
    """
    if isinstance(expr, Literal):
        return expr.value & _mask(width)
    if isinstance(expr, ConstantSymbol):
        return lookup(expr) & _mask(width)
    if not isinstance(expr, ConstExpr):
        raise AliveError("not a constant expression: %r" % (expr,))

    op = expr.op
    if op == "width":
        return lookup(expr) & _mask(width)  # resolved by the caller

    vals = [eval_constexpr(a, width, lookup) for a in expr.args]
    if op == "neg":
        return (-vals[0]) & _mask(width)
    if op == "not":
        return (~vals[0]) & _mask(width)
    if op == "add":
        return (vals[0] + vals[1]) & _mask(width)
    if op == "sub":
        return (vals[0] - vals[1]) & _mask(width)
    if op == "mul":
        return (vals[0] * vals[1]) & _mask(width)
    if op == "udiv":
        return _mask(width) if vals[1] == 0 else vals[0] // vals[1]
    if op == "sdiv":
        a, b = _signed(vals[0], width), _signed(vals[1], width)
        if b == 0:
            return (1 if a < 0 else -1) & _mask(width)
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return q & _mask(width)
    if op == "urem":
        return vals[0] if vals[1] == 0 else vals[0] % vals[1]
    if op == "srem":
        a, b = _signed(vals[0], width), _signed(vals[1], width)
        if b == 0:
            return a & _mask(width)
        r = abs(a) % abs(b)
        return (-r if a < 0 else r) & _mask(width)
    if op == "shl":
        return 0 if vals[1] >= width else (vals[0] << vals[1]) & _mask(width)
    if op == "lshr":
        return 0 if vals[1] >= width else vals[0] >> vals[1]
    if op == "ashr":
        s = _signed(vals[0], width)
        if vals[1] >= width:
            return _mask(width) if s < 0 else 0
        return (s >> vals[1]) & _mask(width)
    if op == "and":
        return vals[0] & vals[1]
    if op == "or":
        return vals[0] | vals[1]
    if op == "xor":
        return vals[0] ^ vals[1]
    if op == "abs":
        s = _signed(vals[0], width)
        return (-s if s < 0 else s) & _mask(width)
    if op == "log2":
        return _floor_log2(vals[0]) & _mask(width)
    if op == "umax":
        return max(vals[0], vals[1])
    if op == "umin":
        return min(vals[0], vals[1])
    if op == "smax":
        return max(vals, key=lambda v: _signed(v, width))
    if op == "smin":
        return min(vals, key=lambda v: _signed(v, width))
    raise AliveError("unknown constant-expression op %r" % op)
