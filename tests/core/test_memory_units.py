"""Unit tests for the memory model internals (byte slicing, chains,
alloca constraints) — complementing the end-to-end tests in
``test_memory.py``."""

import pytest

from repro.core import Config
from repro.core.memory import MemoryModel, TemplateMemory
from repro.core.semantics import EncodeContext
from repro.core.typecheck import TypeAssignment, TypeChecker
from repro.ir import parse_transformation
from repro.smt import terms as T
from repro.smt.eval import evaluate
from repro.typing.enumerate import enumerate_assignments

CFG = Config(max_width=4, prefer_widths=(4,), ptr_width=8)


def make_model():
    """A MemoryModel over a token context (no instructions needed)."""
    t = parse_transformation("%r = load %p\n=>\n%r = load %p")
    checker = TypeChecker()
    system = checker.check_transformation(t)
    mapping = next(enumerate_assignments(system, max_width=4))
    ctx = EncodeContext(TypeAssignment(checker, mapping), CFG)
    return MemoryModel(ctx)


class TestWriteChain:
    def test_read_of_fresh_memory_is_initial(self):
        model = make_model()
        state = model.template_state(is_target=False)
        addr = T.bv_const(0x10, 8)
        byte = state.read_byte(addr)
        assert byte is model.initial_byte(addr)

    def test_initial_bytes_shared_across_templates(self):
        model = make_model()
        src = model.template_state(False)
        tgt = model.template_state(True)
        addr = T.bv_const(0x20, 8)
        assert src.read_byte(addr) is tgt.read_byte(addr)

    def test_last_write_wins(self):
        model = make_model()
        state = model.template_state(False)
        p = T.bv_const(0x30, 8)
        state.write_bytes(T.TRUE, p, T.bv_const(0xAA, 8), 1)
        state.write_bytes(T.TRUE, p, T.bv_const(0xBB, 8), 1)
        value = state.read_byte(p)
        assert evaluate(value, {}) == 0xBB

    def test_guarded_write_respects_guard(self):
        model = make_model()
        state = model.template_state(False)
        p = T.bv_const(0x40, 8)
        g = T.bool_var("g")
        state.write_bytes(g, p, T.bv_const(0x55, 8), 1)
        value = state.read_byte(p)
        init = model.initial_byte(p)
        assert evaluate(value, {g: 1, init: 3}) == 0x55
        assert evaluate(value, {g: 0, init: 3}) == 3

    def test_multibyte_little_endian(self):
        model = make_model()
        state = model.template_state(False)
        p = T.bv_const(0x50, 8)
        state.write_bytes(T.TRUE, p, T.bv_const(0xBEEF, 16), 2)
        low = state.read_byte(p)
        high = state.read_byte(T.bvadd(p, T.bv_const(1, 8)))
        assert evaluate(low, {}) == 0xEF
        assert evaluate(high, {}) == 0xBE
        roundtrip = state.read_value(p, 16)
        assert evaluate(roundtrip, {}) == 0xBEEF

    def test_subbyte_value_zero_extended(self):
        model = make_model()
        state = model.template_state(False)
        p = T.bv_const(0x60, 8)
        state.write_bytes(T.TRUE, p, T.bv_const(0b101, 3), 1)
        assert evaluate(state.read_byte(p), {}) == 0b101
        assert evaluate(state.read_value(p, 3), {}) == 0b101

    def test_symbolic_aliasing(self):
        model = make_model()
        state = model.template_state(False)
        p = T.bv_var("p", 8)
        q = T.bv_var("q", 8)
        state.write_bytes(T.TRUE, p, T.bv_const(1, 8), 1)
        state.write_bytes(T.TRUE, q, T.bv_const(2, 8), 1)
        value = state.read_byte(p)
        # if q == p the later store shadows; else the earlier one shows
        assert evaluate(value, {p: 7, q: 7}) == 2
        init = model.initial_byte(p)
        assert evaluate(value, {p: 7, q: 9, init: 0}) == 1


class TestProbeAndVars:
    def test_probe_is_stable(self):
        model = make_model()
        assert model.probe_address() is model.probe_address()

    def test_outer_vars_include_initial_bytes(self):
        model = make_model()
        state = model.template_state(False)
        addr = T.bv_const(0x70, 8)
        init = model.initial_byte(addr)
        assert init in model.outer_vars()
