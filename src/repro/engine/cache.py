"""Persistent verdict cache for the batch-verification engine.

Alive-style pipelines re-verify near-identical queries constantly: the
same InstCombine rule is checked after every edit to an unrelated rule
in the same file, every CI run re-verifies the whole corpus, and
attribute/precondition inference issues families of queries that differ
only in one flag.  The cache makes all of those warm: a verdict
(status, kind, counterexample, query count, timing) is stored under the
job's content-addressed key and replayed instead of re-running the
refinement check.

Storage is a JSON-lines file (one entry per line, append-only) under
``~/.cache/alive-repro/`` by default; the location can be overridden
with the ``ALIVE_REPRO_CACHE_DIR`` environment variable or the
``--cache`` CLI flag.  The file is *crash-only*: there is no clean
shutdown it depends on, and any prefix of any write sequence must load
to a correct (if smaller) cache.  Concretely:

* every record carries a **CRC32** over its canonical JSON, so a
  corrupted-but-parseable line is detected, skipped and counted
  (``skipped_corrupt``) instead of replaying a wrong verdict;
* a **torn tail** (crash mid-append) is skipped and counted, and the
  next append first restores the line terminator so the torn fragment
  can never splice itself onto a good record;
* **compaction writes a temp file and atomically renames** it, so a
  crash mid-compaction leaves the old file intact;
* appends and compactions take an **advisory lock**
  (``<path>.lock``, ``flock``) so two engine processes sharing a cache
  cannot interleave partial lines;
* an unreadable file means an empty cache, and a failed write degrades
  to in-memory caching — the engine must never crash or wrongly answer
  because of cache state.

Soundness of reuse rests on the *semantics fingerprint*: a hash of the
source text of every module that can influence a verdict (IR parsing,
typing, semantics encoding, refinement, the whole SMT stack).  The
fingerprint is part of every job key, so editing the verifier — even a
one-line change to a definedness constraint — invalidates every cached
verdict at once.  Entries are self-describing (they store their
fingerprint) so a cache file shared across tool versions simply misses
instead of lying.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from contextlib import contextmanager
from typing import Dict, Optional

from .. import chaos

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: bump when the cache entry layout (not the verifier) changes
#: (2: per-record CRC32 for torn/corrupt-write detection)
ENGINE_SCHEMA_VERSION = 2

#: packages whose source defines the meaning of a verdict
_SEMANTIC_PACKAGES = ("core", "smt", "typing", "ir", "absint")

_fingerprint_memo: Optional[str] = None


def default_cache_dir() -> str:
    """Resolve the cache directory (env override > XDG > ``~/.cache``)."""
    env = os.environ.get("ALIVE_REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "alive-repro")


def semantics_fingerprint() -> str:
    """Hash of every source file that can influence a verdict.

    Memoized per process: the source tree does not change underneath a
    running engine.  ``ALIVE_REPRO_FINGERPRINT`` overrides the computed
    value (used by tests to simulate a semantics change).
    """
    global _fingerprint_memo
    env = os.environ.get("ALIVE_REPRO_FINGERPRINT")
    if env:
        return env
    if _fingerprint_memo is not None:
        return _fingerprint_memo
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    digest.update(b"schema:%d\n" % ENGINE_SCHEMA_VERSION)
    for package in _SEMANTIC_PACKAGES:
        pkg_dir = os.path.join(root, package)
        for name in sorted(os.listdir(pkg_dir)):
            if not name.endswith(".py"):
                continue
            path = os.path.join(pkg_dir, name)
            digest.update(("%s/%s\n" % (package, name)).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    _fingerprint_memo = digest.hexdigest()
    return _fingerprint_memo


def record_crc(entry: dict) -> int:
    """CRC32 over the canonical JSON of *entry*, minus its ``crc`` field.

    Computed from the parsed dict (not the stored bytes) so it is
    independent of on-disk whitespace and key order.
    """
    body = {k: v for k, v in entry.items() if k != "crc"}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(blob.encode("utf-8")) & 0xFFFFFFFF


class ResultCache:
    """Persistent key → outcome store with versioned invalidation.

    Entries are dicts of plain data::

        {"key": ..., "fingerprint": ..., "outcome": CheckOutcome.to_dict(),
         "elapsed": ..., "name": ..., "crc": ...}

    Only entries whose fingerprint matches this cache's fingerprint are
    served; stale ones are ignored on load (and rewritten as the batch
    re-runs their jobs under fresh keys).  Entries whose CRC32 does not
    match their content are *corrupt* — skipped and counted, never
    served.  Pre-CRC entries (no ``crc`` field) are accepted for
    backward compatibility; the schema-version bump already invalidates
    them through the fingerprint in normal operation.
    """

    FILENAME = "results.jsonl"

    #: auto-compact on load when dead lines (stale fingerprint,
    #: corruption, duplicates, evictions) exceed this fraction of the file
    COMPACT_DEAD_FRACTION = 0.5

    def __init__(self, path: Optional[str] = None,
                 fingerprint: Optional[str] = None,
                 max_entries: Optional[int] = None):
        if path is None:
            path = os.path.join(default_cache_dir(), self.FILENAME)
        else:
            path = os.fspath(path)
            if os.path.isdir(path):
                path = os.path.join(path, self.FILENAME)
        self.path = path
        self.lock_path = path + ".lock"
        self.fingerprint = fingerprint or semantics_fingerprint()
        self.max_entries = max_entries if max_entries and max_entries > 0 \
            else None
        self._entries: Dict[str, dict] = {}
        self._writable = True
        self.loaded_lines = 0
        #: lines dropped on load because they were torn, unparseable,
        #: structurally wrong, or failed their CRC — recomputed, never
        #: served
        self.skipped_corrupt = 0
        #: lines dropped on load because their fingerprint is stale
        self.skipped_stale = 0
        self.auto_compacted = False
        #: True when the file's final record lacks its terminator (a
        #: torn append); the next append repairs it first so the torn
        #: fragment cannot splice onto a good record
        self._needs_newline = False
        self._load()

    @contextmanager
    def _locked(self):
        """Advisory exclusive lock around one write burst.

        Best effort: if the lock file cannot be opened (unwritable
        location) the write proceeds unlocked and the subsequent write
        failure degrades the cache to in-memory as usual.
        """
        handle = None
        if fcntl is not None:
            try:
                handle = open(self.lock_path, "a")
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            except OSError:
                handle = None
        try:
            yield
        finally:
            if handle is not None:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:  # pragma: no cover
                    pass
                handle.close()

    # ------------------------------------------------------------------
    # Loading / recovery
    # ------------------------------------------------------------------

    def _load(self) -> None:
        """Read the JSONL file, tolerating any form of corruption.

        The file is append-only, so across runs it accumulates *dead*
        lines: stale-fingerprint entries, superseded duplicates of a
        rewritten key, evicted entries, corrupt tails.  When more than
        :data:`COMPACT_DEAD_FRACTION` of the file is dead, it is
        compacted in place right after loading so the cache cannot
        grow without bound under a workload that keeps rewriting it.
        """
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return
        if not raw:
            return
        # a file not ending in "\n" has a torn final append; remember to
        # restore the terminator before the next append
        self._needs_newline = not raw.endswith(b"\n")
        for line in raw.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            self.loaded_lines += 1
            try:
                entry = json.loads(line.decode("utf-8"))
                key = entry["key"]
                outcome = entry["outcome"]
            except (ValueError, TypeError, KeyError, UnicodeDecodeError):
                # torn or corrupt line: recompute rather than crash
                self.skipped_corrupt += 1
                continue
            if not isinstance(outcome, dict) or "status" not in outcome \
                    or not isinstance(key, str):
                self.skipped_corrupt += 1
                continue
            if "crc" in entry and entry["crc"] != record_crc(entry):
                self.skipped_corrupt += 1
                continue  # bit rot / in-place corruption: never serve
            if entry.get("fingerprint") != self.fingerprint:
                self.skipped_stale += 1
                continue  # verifier semantics changed: entry is stale
            # re-insert so dict order is last-write order (oldest first)
            self._entries.pop(key, None)
            self._entries[key] = entry
        self._evict_over_limit()
        dead = self.loaded_lines - len(self._entries)
        if (self.loaded_lines > 0
                and dead > self.COMPACT_DEAD_FRACTION * self.loaded_lines):
            self.compact()
            self.auto_compacted = True

    def _evict_over_limit(self) -> None:
        """Drop oldest-written entries beyond ``max_entries``."""
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        """The cached entry for *key*, or None."""
        return self._entries.get(key)

    def keys(self):
        """All cached job keys, oldest-written first."""
        return list(self._entries)

    def put(self, key: str, outcome: dict, elapsed: float = 0.0,
            name: str = "") -> None:
        """Record one verdict; persists unless the file is unwritable."""
        entry = {
            "key": key,
            "fingerprint": self.fingerprint,
            "outcome": outcome,
            "elapsed": elapsed,
            "name": name,
        }
        entry["crc"] = record_crc(entry)
        self._entries.pop(key, None)  # keep dict order == last-write order
        self._entries[key] = entry
        self._evict_over_limit()
        if not self._writable:
            return
        data = (json.dumps(entry, sort_keys=True) + "\n").encode("utf-8")
        try:
            spec = chaos.fire("cache.append", key=key)
            if spec is not None:
                if spec.kind == chaos.KIND_ERROR:
                    raise OSError("chaos: injected cache write error")
                data = chaos.mangle_record(spec, data)
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with self._locked():
                with open(self.path, "ab") as handle:
                    if self._needs_newline:
                        handle.write(b"\n")
                    handle.write(data)
            self._needs_newline = not data.endswith(b"\n")
        except OSError:
            self._writable = False  # degrade to in-memory caching

    def install(self, entry) -> bool:
        """Adopt one complete entry replicated from a peer cache.

        The write-through path of the cluster's replicated cache tier:
        a coordinator ships whole entries (with fingerprint and CRC) to
        a key's ring successors.  Unlike :meth:`put`, which trusts its
        caller, ``install`` re-validates everything — shape, CRC,
        fingerprint, non-transience — because the entry crossed a
        network and a chaos plan may have corrupted it in flight.
        Returns True when the entry is (or already was) cached.
        """
        if not isinstance(entry, dict):
            return False
        key = entry.get("key")
        outcome = entry.get("outcome")
        if not isinstance(key, str) or not isinstance(outcome, dict) \
                or "status" not in outcome:
            return False
        if outcome.get("transient"):
            return False  # an abandoned job is not a verdict
        if entry.get("crc") != record_crc(entry):
            return False  # corrupted in flight: never adopt
        if entry.get("fingerprint") != self.fingerprint:
            return False  # peer runs different semantics: not ours
        if key in self._entries:
            return True  # already warm; no duplicate append
        self.put(key, outcome, elapsed=entry.get("elapsed", 0.0),
                 name=entry.get("name", ""))
        return True

    def compact(self) -> None:
        """Rewrite the file with only live (current-fingerprint) entries.

        Crash-safe by construction: the new contents go to a temp file
        which is atomically renamed over the old one, so an interrupted
        compaction (or an injected ``cache.compact`` fault) leaves the
        previous file byte-for-byte intact.
        """
        if not self._writable:
            return
        tmp = self.path + ".tmp"
        try:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            spec = chaos.fire("cache.compact")
            with self._locked():
                with open(tmp, "w") as handle:
                    for entry in self._entries.values():
                        handle.write(json.dumps(entry, sort_keys=True)
                                     + "\n")
                    if spec is not None \
                            and spec.kind == chaos.KIND_ERROR:
                        raise OSError("chaos: injected compaction failure")
                os.replace(tmp, self.path)
            self._needs_newline = False
        except OSError:
            self._writable = False
            try:
                os.unlink(tmp)
            except OSError:
                pass
