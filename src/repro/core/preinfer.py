"""Precondition inference: synthesize the weakest precondition that
makes a transformation correct.

The paper's attribute inference (§3.4) synthesizes weakest preconditions
*in terms of instruction attributes*; the authors' companion work
(Lopes & Monteiro, VMCAI'14 [19], later grown into Alive-Infer,
PLDI'17) generalizes this to full predicate preconditions.  This module
implements that extension over a candidate grammar:

* unary predicates on each abstract constant: ``C != 0``, ``C > 0``,
  ``C >= 0``, ``C != -1``, ``isPowerOf2(C)``, ``isPowerOf2OrZero(C)``,
  ``isSignBit(C)``, ``!isSignBit(C)``;
* binary comparisons between constants: ``C1 u>= C2``, ``C1 u< C2``,
  ``C1 == C2``, ``C1 != C2``.

Search strategy: enumerate conjunctions up to ``max_conjuncts``
candidates, keep those under which the transformation verifies, and
return the *weakest* — the one accepting the largest number of concrete
constant assignments at the sample width (the acceptance measure
Alive-Infer optimizes).  ``Pre: true`` is tried first, so an already
correct transformation gets the trivial precondition.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir import ast
from ..ir.constexpr import ConstExpr, eval_constexpr
from ..ir.precond import (
    PredAnd,
    PredCall,
    PredCmp,
    PredNot,
    PredTrue,
    Predicate,
)
from .config import Config, DEFAULT_CONFIG
from .verifier import VALID, verify


def _signed(x: int, w: int) -> int:
    x &= (1 << w) - 1
    return x - (1 << w) if x >= 1 << (w - 1) else x


def _eval_candidate(pred: Predicate, env: Dict[str, int], width: int) -> bool:
    """Concrete evaluation of a candidate predicate over constants."""
    if isinstance(pred, PredTrue):
        return True
    if isinstance(pred, PredNot):
        return not _eval_candidate(pred.p, env, width)
    if isinstance(pred, PredAnd):
        return all(_eval_candidate(p, env, width) for p in pred.ps)
    if isinstance(pred, PredCmp):
        a = _leaf_value(pred.a, env, width)
        b = _leaf_value(pred.b, env, width)
        op = pred.op
        if op.startswith("u"):
            table = {"u<": a < b, "u<=": a <= b, "u>": a > b, "u>=": a >= b}
            return table[op]
        sa, sb = _signed(a, width), _signed(b, width)
        table = {"==": a == b, "!=": a != b, "<": sa < sb, "<=": sa <= sb,
                 ">": sa > sb, ">=": sa >= sb}
        return table[op]
    if isinstance(pred, PredCall):
        v = _leaf_value(pred.args[0], env, width)
        if pred.fn == "isPowerOf2":
            return v != 0 and v & (v - 1) == 0
        if pred.fn == "isPowerOf2OrZero":
            return v & (v - 1) == 0
        if pred.fn == "isSignBit":
            return v == 1 << (width - 1)
        raise ast.AliveError("cannot evaluate candidate %s" % pred)
    raise ast.AliveError("cannot evaluate candidate %r" % pred)


def _leaf_value(v: ast.Value, env: Dict[str, int], width: int) -> int:
    if isinstance(v, ConstExpr):
        if v.op == "width":
            return width & ((1 << width) - 1)
        return eval_constexpr(v, width, lambda sym: _width_aware(sym, env, width))
    if isinstance(v, ast.Literal):
        return v.value & ((1 << width) - 1)
    if isinstance(v, ast.ConstantSymbol):
        return env[v.name]
    raise ast.AliveError("non-constant leaf in candidate: %r" % v)


def _width_aware(sym: ast.Value, env: Dict[str, int], width: int) -> int:
    if isinstance(sym, ConstExpr) and sym.op == "width":
        return width
    return env[sym.name]


def candidate_predicates(t: ast.Transformation) -> List[Predicate]:
    """The candidate grammar instantiated for *t*'s abstract constants."""
    constants = [v for v in t.inputs() if isinstance(v, ast.ConstantSymbol)]
    out: List[Predicate] = []
    zero = ast.Literal(0)
    one = ast.Literal(1)
    minus1 = ast.Literal(-1)
    for c in constants:
        out.append(PredCmp("!=", c, zero))
        out.append(PredCmp(">", c, zero))
        out.append(PredCmp(">=", c, zero))
        out.append(PredCmp("!=", c, one))
        out.append(PredCmp("!=", c, minus1))
        out.append(PredCall("isPowerOf2", [c]))
        out.append(PredCall("isPowerOf2OrZero", [c]))
        out.append(PredCall("isSignBit", [c]))
        out.append(PredNot(PredCall("isSignBit", [c])))
    for c in constants:
        out.append(PredCmp("u<", c, ConstExpr("width", (c,))))
    for c1, c2 in itertools.combinations(constants, 2):
        out.append(PredCmp("u>=", c1, c2))
        out.append(PredCmp("u<", c1, c2))
        out.append(PredCmp("==", c1, c2))
        out.append(PredCmp("!=", c1, c2))
        out.append(
            PredCmp("u<", ConstExpr("add", (c1, c2)),
                    ConstExpr("width", (c1,)))
        )
    return out


def acceptance_count(pred: Predicate, constants: Sequence[str],
                     width: int = 4) -> int:
    """How many concrete constant assignments satisfy *pred* at *width*.

    This is the weakness measure: a weaker precondition accepts more
    assignments, so the optimization fires more often.
    """
    total = 0
    for values in itertools.product(range(1 << width), repeat=len(constants)):
        env = dict(zip(constants, values))
        if _eval_candidate(pred, env, width):
            total += 1
    return total


class PreconditionResult:
    """Outcome of precondition inference.

    Attributes:
        name: transformation name.
        precondition: the weakest valid predicate found (None if even the
            candidate grammar cannot repair the transformation).
        acceptance: fraction of constant assignments accepted (1.0 means
            ``Pre: true`` suffices).
        tried: number of verifier calls made.
    """

    def __init__(self, name: str, precondition: Optional[Predicate],
                 acceptance: float, tried: int):
        self.name = name
        self.precondition = precondition
        self.acceptance = acceptance
        self.tried = tried

    def describe(self) -> str:
        if self.precondition is None:
            return "%s: no precondition in the grammar makes this correct" % self.name
        return "%s: weakest precondition: %s  (accepts %.0f%% of constants)" % (
            self.name, self.precondition, self.acceptance * 100.0
        )


def _psi_satisfiable(t: ast.Transformation, config: Config) -> bool:
    """Is φ ∧ δ ∧ ρ satisfiable for some feasible type assignment?

    Guards against vacuous preconditions that "fix" a transformation by
    making its source template always undefined."""
    from ..smt.solver import check_sat
    from ..typing.enumerate import enumerate_assignments
    from .semantics import EncodeContext, TemplateEncoder, encode_precondition
    from .typecheck import TypeAssignment, TypeChecker
    from ..smt import terms as T

    checker = TypeChecker()
    system = checker.check_transformation(t)
    for mapping in enumerate_assignments(
        system, max_width=config.max_width, prefer=config.prefer_widths,
        limit=config.max_type_assignments,
    ):
        ctx = EncodeContext(TypeAssignment(checker, mapping), config)
        src = TemplateEncoder(ctx, is_target=False)
        src.encode_template(t.src.values())
        phi = encode_precondition(t.pre, src)
        root = t.src[t.root]
        psi = T.and_(phi, src.defined(root), src.poison_free(root),
                     *ctx.side_constraints)
        if check_sat(psi, conflict_limit=config.conflict_limit).is_sat():
            return True
    return False


def infer_precondition(
    t: ast.Transformation,
    config: Config = DEFAULT_CONFIG,
    max_conjuncts: int = 2,
) -> PreconditionResult:
    """Find the weakest precondition (from the candidate grammar) under
    which *t* verifies.  The transformation's own precondition is
    ignored during the search and restored afterwards."""
    constants = [
        v.name for v in t.inputs() if isinstance(v, ast.ConstantSymbol)
    ]
    original = t.pre
    tried = 0

    def valid_with(pred: Predicate) -> bool:
        """Correct under *pred*, and not vacuously so: there must exist
        defined, poison-free source executions satisfying it (real
        Alive-Infer enforces this with positive examples)."""
        nonlocal tried
        tried += 1
        t.pre = pred
        try:
            if verify(t, config).status != VALID:
                return False
            return _psi_satisfiable(t, config)
        finally:
            t.pre = original

    try:
        if valid_with(PredTrue()):
            return PreconditionResult(t.name, PredTrue(), 1.0, tried)

        candidates = candidate_predicates(t)
        total_space = (1 << 4) ** max(1, len(constants))

        # order conjunctions by decreasing acceptance so that the first
        # valid one found is the weakest
        conjunctions: List[Tuple[int, Predicate]] = []
        for size in range(1, max_conjuncts + 1):
            for combo in itertools.combinations(candidates, size):
                pred = combo[0] if size == 1 else PredAnd(*combo)
                count = acceptance_count(pred, constants)
                if count:
                    conjunctions.append((count, pred))
        conjunctions.sort(key=lambda kv: -kv[0])

        for count, pred in conjunctions:
            if valid_with(pred):
                return PreconditionResult(
                    t.name, pred, count / total_space, tried
                )
        return PreconditionResult(t.name, None, 0.0, tried)
    finally:
        t.pre = original
