"""A static cost model estimating the execution time of optimized IR.

§6.4 of the paper measures SPEC run times; we cannot execute SPEC, so
the reproduction compares optimizers through a per-instruction latency
model (cycles on a generic out-of-order x86, the usual compiler
textbook numbers).  The model only needs to *rank* code versions — the
paper's claim is directional (the Alive subset optimizes less, so its
output is a few percent slower) — and a latency-weighted instruction
count preserves exactly that ranking.
"""

from __future__ import annotations

from typing import Dict

from ..ir.module import MFunction, MInstr, Module

#: estimated latency in cycles per instruction
OPCODE_COST: Dict[str, float] = {
    "add": 1, "sub": 1, "and": 1, "or": 1, "xor": 1,
    "shl": 1, "lshr": 1, "ashr": 1,
    "icmp": 1, "select": 1,
    "zext": 0.5, "sext": 0.5, "trunc": 0.5,
    "mul": 3,
    "udiv": 22, "sdiv": 24, "urem": 22, "srem": 24,
}


def instruction_cost(inst: MInstr) -> float:
    return OPCODE_COST[inst.opcode]


def function_cost(fn: MFunction) -> float:
    """Estimated cycles for one execution of the (straight-line) body."""
    return sum(instruction_cost(i) for i in fn.instrs)


def module_cost(module: Module) -> float:
    return sum(function_cost(f) for f in module.functions)


def speedup(before: float, after: float) -> float:
    """Relative improvement of *after* over *before* (positive=faster)."""
    if before == 0:
        return 0.0
    return (before - after) / before
