"""Tests for the known-bits dataflow analysis and friends."""

import pytest

from repro.ir.module import MArg, MConst, MFunction
from repro.opt import Analyses
from repro.opt.analysis import KnownBitsAnalysis


def fn8():
    return MFunction("f", [MArg("%x", 8), MArg("%y", 8)])


class TestKnownBits:
    def test_constant_fully_known(self):
        fn = fn8()
        kb = KnownBitsAnalysis(fn)
        kz, ko = kb.known(MConst(0b1010, 8))
        assert ko == 0b1010
        assert kz == 0b11110101

    def test_argument_unknown(self):
        fn = fn8()
        kb = KnownBitsAnalysis(fn)
        assert kb.known(fn.args[0]) == (0, 0)

    def test_and_clears(self):
        fn = fn8()
        a = fn.add("and", [fn.args[0], MConst(0x0F, 8)], 8)
        kz, ko = KnownBitsAnalysis(fn).known(a)
        assert kz & 0xF0 == 0xF0
        assert ko == 0

    def test_or_sets(self):
        fn = fn8()
        a = fn.add("or", [fn.args[0], MConst(0xF0, 8)], 8)
        kz, ko = KnownBitsAnalysis(fn).known(a)
        assert ko == 0xF0

    def test_xor_with_known(self):
        fn = fn8()
        a = fn.add("and", [fn.args[0], MConst(0x0F, 8)], 8)
        b = fn.add("xor", [a, MConst(0xFF, 8)], 8)
        kz, ko = KnownBitsAnalysis(fn).known(b)
        assert ko & 0xF0 == 0xF0  # known-zero bits flip to known-one

    def test_shl_by_constant(self):
        fn = fn8()
        a = fn.add("shl", [fn.args[0], MConst(4, 8)], 8)
        kz, ko = KnownBitsAnalysis(fn).known(a)
        assert kz & 0x0F == 0x0F

    def test_lshr_by_constant(self):
        fn = fn8()
        a = fn.add("lshr", [fn.args[0], MConst(4, 8)], 8)
        kz, ko = KnownBitsAnalysis(fn).known(a)
        assert kz & 0xF0 == 0xF0

    def test_zext_high_bits_zero(self):
        fn = MFunction("g", [MArg("%x", 4)])
        a = fn.add("zext", [fn.args[0]], 8)
        kz, ko = KnownBitsAnalysis(fn).known(a)
        assert kz & 0xF0 == 0xF0

    def test_add_with_fully_known_operands(self):
        fn = fn8()
        a = fn.add("add", [MConst(3, 8), MConst(4, 8)], 8)
        kz, ko = KnownBitsAnalysis(fn).known(a)
        assert ko == 7
        assert kz == 0xF8

    def test_select_intersects(self):
        fn = fn8()
        c = fn.add("icmp", [fn.args[0], fn.args[1]], 1, cond="ult")
        a = fn.add("and", [fn.args[0], MConst(0x0F, 8)], 8)
        b = fn.add("and", [fn.args[1], MConst(0x3F, 8)], 8)
        s = fn.add("select", [c, a, b], 8)
        kz, ko = KnownBitsAnalysis(fn).known(s)
        assert kz & 0xC0 == 0xC0  # both arms have top two bits zero

    def test_soundness_random(self):
        """Property: known bits are always consistent with execution."""
        import random

        from repro.ir.interp import run_function

        rng = random.Random(3)
        fn = fn8()
        a = fn.add("and", [fn.args[0], MConst(0x3C, 8)], 8)
        b = fn.add("or", [a, MConst(0x81, 8)], 8)
        c = fn.add("lshr", [b, MConst(1, 8)], 8)
        d = fn.add("xor", [c, MConst(0x55, 8)], 8)
        fn.ret = d
        kb = KnownBitsAnalysis(fn)
        for inst in fn.instrs:
            kz, ko = kb.known(inst)
            sub = MFunction("sub", fn.args)
            sub.instrs = fn.instrs[: fn.instrs.index(inst) + 1]
            sub.ret = inst
            for _ in range(50):
                x, y = rng.randrange(256), rng.randrange(256)
                value = run_function(sub, {"%x": x, "%y": y})
                assert value & kz == 0
                assert value & ko == ko


class TestFacadePredicates:
    def test_masked_value_is_zero(self):
        fn = fn8()
        a = fn.add("and", [fn.args[0], MConst(0x0F, 8)], 8)
        analyses = Analyses(fn)
        assert analyses.masked_value_is_zero(a, 0xF0)
        assert not analyses.masked_value_is_zero(a, 0x01)

    def test_is_power_of_2(self):
        fn = fn8()
        analyses = Analyses(fn)
        assert analyses.is_power_of_2(MConst(64, 8))
        assert not analyses.is_power_of_2(MConst(0, 8))
        assert not analyses.is_power_of_2(MConst(66, 8))
        # 1 << x is a power of two whenever defined
        shl = fn.add("shl", [MConst(1, 8), fn.args[0]], 8)
        assert analyses.is_power_of_2(shl)

    def test_has_one_use(self):
        fn = fn8()
        a = fn.add("add", [fn.args[0], fn.args[1]], 8)
        b = fn.add("mul", [a, a], 8)
        fn.ret = b
        analyses = Analyses(fn)
        assert analyses.has_one_use(b)
        assert not analyses.has_one_use(a)  # two uses in %b

    def test_sign_bit_known_zero(self):
        fn = fn8()
        a = fn.add("lshr", [fn.args[0], MConst(1, 8)], 8)
        assert Analyses(fn).sign_bit_known_zero(a)
        assert not Analyses(fn).sign_bit_known_zero(fn.args[0])


class TestBruteForceCrossCheck:
    """Satellite soundness sweep: every claim the analysis makes must
    hold on every *defined* execution, checked exhaustively over all
    argument values at widths up to 6.  Executions that raise
    ``UndefinedBehavior`` (division by zero, oversized shifts) are
    exempt — the pass engine never observes them."""

    BINOPS = ("add", "sub", "mul", "and", "or", "xor",
              "shl", "lshr", "ashr", "udiv", "sdiv", "urem", "srem")

    def _check_fn(self, fn, width):
        from itertools import product

        from repro.ir.interp import POISON, run_function
        from repro.ir.intops import UndefinedBehavior

        kb = KnownBitsAnalysis(fn)
        names = [a.name for a in fn.args]
        for idx, inst in enumerate(fn.instrs):
            av = kb.abstract(inst)
            kz, ko = av.bits.kz, av.bits.ko
            sub = MFunction("sub", fn.args)
            sub.instrs = fn.instrs[: idx + 1]
            sub.ret = inst
            for vals in product(range(1 << width), repeat=len(names)):
                try:
                    value = run_function(sub, dict(zip(names, vals)))
                except UndefinedBehavior:
                    continue
                if value is POISON:
                    continue
                ctx = (inst.opcode, width, vals)
                assert value & kz == 0, ctx
                assert value & ko == ko, ctx
                assert av.ur.lo <= value <= av.ur.hi, ctx
                assert av.sr.contains(value), ctx

    @pytest.mark.parametrize("width", (2, 3, 4))
    def test_binops_exhaustive(self, width):
        half = (1 << width) // 2
        for op in self.BINOPS:
            fn = MFunction("f", [MArg("%x", width), MArg("%y", width)])
            a = fn.add("or", [fn.args[0], MConst(1, width)], width)
            v = fn.add(op, [a, fn.args[1]], width)
            u = fn.add(op, [fn.args[1], MConst(half, width)], width)
            fn.ret = u
            self._check_fn(fn, width)

    def test_binops_width6(self):
        for op in self.BINOPS:
            fn = MFunction("f", [MArg("%x", 6), MArg("%y", 6)])
            v = fn.add(op, [fn.args[0], fn.args[1]], 6)
            fn.ret = v
            self._check_fn(fn, 6)

    @pytest.mark.parametrize("width", (2, 3, 4, 6))
    def test_convs_select_icmp_exhaustive(self, width):
        fn = MFunction("f", [MArg("%x", width), MArg("%y", width)])
        z = fn.add("zext", [fn.args[0]], width + 2)
        s = fn.add("sext", [fn.args[0]], width + 2)
        t = fn.add("trunc", [fn.args[0]], width - 1)
        c = fn.add("icmp", [fn.args[0], fn.args[1]], 1, cond="slt")
        a = fn.add("and", [fn.args[0], MConst(3, width)], width)
        b = fn.add("or", [fn.args[1], MConst(1, width)], width)
        sel = fn.add("select", [c, a, b], width)
        fn.ret = sel
        self._check_fn(fn, width)

    @pytest.mark.parametrize("width", (3, 4, 6))
    def test_deep_expression_exhaustive(self, width):
        mask_c = (1 << width) - 2
        fn = MFunction("f", [MArg("%x", width), MArg("%y", width)])
        a = fn.add("and", [fn.args[0], MConst(mask_c, width)], width)
        b = fn.add("lshr", [a, MConst(1, width)], width)
        c = fn.add("mul", [b, MConst(3, width)], width)
        d = fn.add("sub", [c, fn.args[1]], width)
        e = fn.add("xor", [d, MConst(1, width)], width)
        fn.ret = e
        self._check_fn(fn, width)


class TestPinnedRegressions:
    """Counterexamples for bugs the brute-force sweep flushed out."""

    def test_shl_pow2_base_not_claimed(self):
        # the old analysis claimed `shl C, %s` stayed a power of two for
        # any power-of-two constant C; 2 << 3 at i4 wraps to 0
        from repro.ir.interp import run_function

        fn = MFunction("f", [MArg("%s", 4)])
        shl = fn.add("shl", [MConst(2, 4), fn.args[0]], 4)
        fn.ret = shl
        assert run_function(fn, {"%s": 3}) == 0  # the witness
        assert not Analyses(fn).is_power_of_2(shl)

    def test_shl_one_base_claimed_and_sound(self):
        from repro.ir.interp import run_function
        from repro.ir.intops import UndefinedBehavior

        fn = MFunction("f", [MArg("%s", 4)])
        shl = fn.add("shl", [MConst(1, 4), fn.args[0]], 4)
        fn.ret = shl
        assert Analyses(fn).is_power_of_2(shl)
        for s in range(16):
            try:
                value = run_function(fn, {"%s": s})
            except UndefinedBehavior:
                continue
            assert value != 0 and value & (value - 1) == 0

    def test_signed_add_overflow_via_ranges(self):
        fn = fn8()
        a = fn.add("lshr", [fn.args[0], MConst(1, 8)], 8)  # [0, 127]
        z = fn.add("and", [fn.args[1], MConst(0, 8)], 8)   # exactly 0
        b = fn.add("lshr", [fn.args[1], MConst(2, 8)], 8)  # [0, 63]
        analyses = Analyses(fn)
        # 127 + 0 fits; the old two-top-bits rule could not see it
        assert analyses.will_not_overflow_signed_add(a, z)
        # 127 + 63 = 190 overflows i8 and must stay rejected
        assert not analyses.will_not_overflow_signed_add(a, b)

    def test_sub_and_udiv_no_longer_top(self):
        # the hand-written analysis returned top for sub and udiv; the
        # delegated transfers track ranges through both
        fn = fn8()
        a = fn.add("or", [fn.args[0], MConst(0x80, 8)], 8)  # [128, 255]
        d = fn.add("sub", [a, MConst(1, 8)], 8)             # [127, 254]
        q = fn.add("udiv", [fn.args[1], MConst(4, 8)], 8)   # [0, 63]
        kb = KnownBitsAnalysis(fn)
        assert kb.abstract(d).ur.lo == 127
        assert kb.abstract(d).ur.hi == 254
        assert kb.abstract(q).ur.hi == 63
