"""Greedy delta-debugging shrinkers for disagreeing terms and rules.

Both shrinkers take an *interestingness predicate* — "does this smaller
candidate still expose the disagreement?" — and greedily apply
reductions until a fixpoint, restarting from the first improvement so
every accepted candidate re-opens all reduction opportunities (the
classic ddmin refinement for structured inputs).  Predicates are
treated as black boxes; any exception they raise counts as "not
interesting", so a candidate that fails to parse, type or verify is
simply skipped.

Terms are reduced over their DAG structure (replace any node by a
constant or by a same-sorted subterm); rules are reduced over their
surface syntax (drop precondition conjuncts, drop flags, splice
operands, dead-code-eliminate), re-parsing the rule for each edit so
candidate generation can never corrupt the original.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from ..ir import ast, parse_transformations
from ..ir.precond import PredAnd, PredTrue
from ..ir.printer import transformation_str
from ..smt import terms as T
from ..smt.terms import Term

TermPredicate = Callable[[Term], bool]
TextPredicate = Callable[[str], bool]


def _safe(predicate, candidate) -> bool:
    try:
        return bool(predicate(candidate))
    except Exception:
        return False


# ---------------------------------------------------------------------------
# Term shrinking
# ---------------------------------------------------------------------------


def _paths(term: Term) -> List[Tuple[int, ...]]:
    """All occurrence paths in pre-order (the root path first)."""
    out: List[Tuple[int, ...]] = []

    def walk(t: Term, path: Tuple[int, ...]) -> None:
        out.append(path)
        for i, a in enumerate(t.args):
            walk(a, path + (i,))

    walk(term, ())
    return out


def _at(term: Term, path: Tuple[int, ...]) -> Term:
    for i in path:
        term = term.args[i]
    return term


def _replace(term: Term, path: Tuple[int, ...], repl: Term) -> Term:
    if not path:
        return repl
    args = list(term.args)
    args[path[0]] = _replace(args[path[0]], path[1:], repl)
    return T.rebuild(term.op, tuple(args), term.data, term.sort)


def _replacements(node: Term) -> Iterator[Term]:
    """Smaller same-sorted candidates for one node, simplest first."""
    from ..smt.sorts import is_bool

    if is_bool(node.sort):
        consts = [T.FALSE, T.TRUE]
    else:
        w = node.sort.width
        consts = [T.bv_const(0, w), T.bv_const(1, w),
                  T.bv_const(T.mask(w), w)]
    for c in consts:
        if c is not node:
            yield c
    # hoist any same-sorted descendant over this node
    seen = {id(c) for c in consts}
    stack = list(node.args)
    while stack:
        sub = stack.pop()
        if sub.sort == node.sort and id(sub) not in seen:
            seen.add(id(sub))
            yield sub
        stack.extend(sub.args)


def shrink_term(term: Term, predicate: TermPredicate,
                max_steps: int = 10_000) -> Term:
    """Greedily minimize *term* while *predicate* stays true.

    The result is a local minimum: no single node replacement keeps the
    predicate true with a smaller DAG.  The original term is returned
    unchanged if the predicate does not hold for it.
    """
    if not _safe(predicate, term):
        return term
    best = term
    steps = 0
    improved = True
    while improved and steps < max_steps:
        improved = False
        for path in _paths(best):
            node = _at(best, path)
            for repl in _replacements(node):
                steps += 1
                candidate = _replace(best, path, repl)
                if candidate is best:
                    continue
                if T.term_size(candidate) >= T.term_size(best):
                    continue
                if _safe(predicate, candidate):
                    best = candidate
                    improved = True
                    break
            if improved or steps >= max_steps:
                break
    return best


# ---------------------------------------------------------------------------
# Rule shrinking
# ---------------------------------------------------------------------------

_OPERAND_SLOTS = {
    ast.BinOp: ("a", "b"),
    ast.ICmp: ("a", "b"),
    ast.Select: ("c", "a", "b"),
    ast.ConvOp: ("x",),
    ast.Copy: ("x",),
}


def _rule_metric(text: str) -> Tuple[int, int]:
    try:
        t = parse_transformations(text)[0]
    except Exception:
        return (1 << 30, len(text))
    return (len(t.src) + len(t.tgt), len(text))


def rule_size(text: str) -> int:
    """Total instruction count of a rule, the shrinker's main metric."""
    return _rule_metric(text)[0]


def _dce(t: ast.Transformation) -> ast.Transformation:
    """Drop instructions no longer reachable from the templates' roots."""
    tgt_root = t.tgt.get(t.root)
    tgt_live = {
        id(v) for v in ast._collect_values([tgt_root] if tgt_root else
                                           list(t.tgt.values()))
    }
    new_tgt = {n: i for n, i in t.tgt.items() if id(i) in tgt_live}

    # source liveness: the source root plus anything a kept target
    # instruction references
    src_roots: List[ast.Value] = []
    if t.root in t.src:
        src_roots.append(t.src[t.root])
    for inst in new_tgt.values():
        src_roots.append(inst)
    src_live = {id(v) for v in ast._collect_values(src_roots)}
    new_src = {n: i for n, i in t.src.items() if id(i) in src_live}
    return ast.Transformation(t.name, t.pre, new_src, new_tgt)


def _fresh(text: str) -> Optional[ast.Transformation]:
    try:
        return parse_transformations(text)[0]
    except Exception:
        return None


def _render(t: ast.Transformation) -> Optional[str]:
    try:
        return transformation_str(_dce(t))
    except Exception:
        return None


def _rule_candidates(text: str) -> Iterator[str]:
    """One-edit reductions of a rule, each from a fresh parse."""
    base = _fresh(text)
    if base is None:
        return

    # 1. weaken or drop the precondition
    if not isinstance(base.pre, PredTrue):
        t = _fresh(text)
        t.pre = PredTrue()
        rendered = _render(t)
        if rendered:
            yield rendered
        if isinstance(base.pre, PredAnd) and len(base.pre.ps) > 1:
            for drop in range(len(base.pre.ps)):
                t = _fresh(text)
                kept = [p for i, p in enumerate(t.pre.ps) if i != drop]
                t.pre = kept[0] if len(kept) == 1 else PredAnd(*kept)
                rendered = _render(t)
                if rendered:
                    yield rendered

    # 2. drop instruction flags
    for side in ("src", "tgt"):
        for name, inst in getattr(base, side).items():
            if isinstance(inst, ast.BinOp) and inst.flags:
                t = _fresh(text)
                getattr(t, side)[name].flags = ()
                rendered = _render(t)
                if rendered:
                    yield rendered

    # 3. splice operands: replace an operand with one of its own
    #    operands (collapsing a def-use edge) or with a tiny literal
    for side in ("src", "tgt"):
        for name, inst in getattr(base, side).items():
            slots = _OPERAND_SLOTS.get(type(inst), ())
            for slot in slots:
                operand = getattr(inst, slot)
                edits: List[Tuple[str, int]] = []
                if isinstance(operand, ast.Instruction):
                    edits += [("sub", k)
                              for k in range(len(operand.operands()))]
                if not isinstance(operand, ast.Literal):
                    edits += [("lit", 0), ("lit", 1)]
                for action, k in edits:
                    t = _fresh(text)
                    fresh_inst = getattr(t, side)[name]
                    if action == "sub":
                        fresh_op = getattr(fresh_inst, slot)
                        if not isinstance(fresh_op, ast.Instruction):
                            continue
                        replacement = fresh_op.operands()[k]
                    else:
                        replacement = ast.Literal(k)
                    setattr(fresh_inst, slot, replacement)
                    rendered = _render(t)
                    if rendered:
                        yield rendered


def shrink_rule_text(text: str, predicate: TextPredicate,
                     max_rounds: int = 200) -> str:
    """Greedily minimize a rule's surface text under *predicate*.

    Candidates are one-edit reductions; each accepted candidate restarts
    generation, so chains of edits compose.  Returns the original text
    if the predicate does not hold for it (after normalization through
    one print/parse cycle, so the caller can rely on a canonical form).
    """
    base = _fresh(text)
    if base is not None:
        normalized = _render(base)
        if normalized and _safe(predicate, normalized):
            text = normalized
    if not _safe(predicate, text):
        return text
    best = text
    for _ in range(max_rounds):
        improved = False
        for candidate in _rule_candidates(best):
            if _rule_metric(candidate) >= _rule_metric(best):
                continue
            if _safe(predicate, candidate):
                best = candidate
                improved = True
                break
        if not improved:
            break
    return best
