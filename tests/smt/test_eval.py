"""Unit tests for the concrete term evaluator (the ground-truth
semantics every other component is checked against)."""

import pytest

from repro.smt import terms as T
from repro.smt.eval import EvalError, evaluate, holds


def bv(v, w=8):
    return T.bv_const(v, w)


class TestLeafEvaluation:
    def test_constants(self):
        assert evaluate(bv(42), {}) == 42
        assert evaluate(T.TRUE, {}) == 1
        assert evaluate(T.FALSE, {}) == 0

    def test_variables(self):
        x = T.bv_var("x", 8)
        assert evaluate(x, {x: 99}) == 99

    def test_variable_masked_to_width(self):
        x = T.bv_var("x", 4)
        assert evaluate(x, {x: 0xFF}) == 0xF

    def test_bool_variable_masked(self):
        p = T.bool_var("p")
        assert evaluate(p, {p: 3}) == 1

    def test_missing_variable(self):
        x = T.bv_var("x", 8)
        with pytest.raises(EvalError):
            evaluate(x, {})


class TestArithmetic:
    def test_add_wraps(self):
        x = T.bv_var("x", 8)
        t = T.bvadd(x, bv(200))
        assert evaluate(t, {x: 100}) == 44

    def test_sub_wraps(self):
        x = T.bv_var("x", 8)
        assert evaluate(T.bvsub(x, bv(1)), {x: 0}) == 255

    def test_mul(self):
        x = T.bv_var("x", 8)
        assert evaluate(T.bvmul(x, bv(3)), {x: 100}) == 44

    def test_udiv_and_by_zero(self):
        x = T.bv_var("x", 8)
        y = T.bv_var("y", 8)
        t = T.bvudiv(x, y)
        assert evaluate(t, {x: 14, y: 4}) == 3
        assert evaluate(t, {x: 14, y: 0}) == 255

    def test_sdiv_truncates(self):
        x = T.bv_var("x", 8)
        y = T.bv_var("y", 8)
        t = T.bvsdiv(x, y)
        assert evaluate(t, {x: 0xF9, y: 2}) == T.truncate(-3, 8)  # -7/2
        assert evaluate(t, {x: 7, y: 0xFE}) == T.truncate(-3, 8)  # 7/-2

    def test_srem_sign_of_dividend(self):
        x = T.bv_var("x", 8)
        y = T.bv_var("y", 8)
        t = T.bvsrem(x, y)
        assert evaluate(t, {x: T.truncate(-7, 8), y: 2}) == T.truncate(-1, 8)
        assert evaluate(t, {x: 7, y: T.truncate(-2, 8)}) == 1

    def test_shifts(self):
        x = T.bv_var("x", 8)
        s = T.bv_var("s", 8)
        assert evaluate(T.bvshl(x, s), {x: 3, s: 2}) == 12
        assert evaluate(T.bvshl(x, s), {x: 3, s: 8}) == 0
        assert evaluate(T.bvlshr(x, s), {x: 0x80, s: 3}) == 0x10
        assert evaluate(T.bvashr(x, s), {x: 0x80, s: 3}) == 0xF0
        assert evaluate(T.bvashr(x, s), {x: 0x80, s: 99}) == 0xFF


class TestStructural:
    def test_concat_extract(self):
        x = T.bv_var("x", 4)
        y = T.bv_var("y", 4)
        t = T.concat(x, y)
        assert evaluate(t, {x: 0xA, y: 0xB}) == 0xAB
        assert evaluate(T.extract(t, 7, 4), {x: 0xA, y: 0xB}) == 0xA

    def test_extensions(self):
        x = T.bv_var("x", 4)
        assert evaluate(T.zext(x, 4), {x: 0x8}) == 0x08
        assert evaluate(T.sext(x, 4), {x: 0x8}) == 0xF8

    def test_ite(self):
        c = T.bool_var("c")
        t = T.ite(c, bv(1), bv(2))
        assert evaluate(t, {c: 1}) == 1
        assert evaluate(t, {c: 0}) == 2


class TestBooleans:
    def test_connectives(self):
        p, q = T.bool_var("p"), T.bool_var("q")
        assert holds(T.and_(p, q), {p: 1, q: 1})
        assert not holds(T.and_(p, q), {p: 1, q: 0})
        assert holds(T.or_(p, q), {p: 0, q: 1})
        assert holds(T.implies(p, q), {p: 0, q: 0})
        assert not holds(T.implies(p, q), {p: 1, q: 0})
        assert holds(T.xor_bool(p, q), {p: 1, q: 0})

    def test_comparisons(self):
        x, y = T.bv_var("x", 4), T.bv_var("y", 4)
        model = {x: 0xF, y: 1}  # x = -1 signed
        assert holds(T.ugt(x, y), model)
        assert holds(T.slt(x, y), model)
        assert not holds(T.sgt(x, y), model)
        assert holds(T.ule(y, x), model)


class TestDeepDags:
    def test_no_recursion_limit(self):
        # a 10k-deep chain would break a naive recursive evaluator
        x = T.bv_var("x", 8)
        t = x
        for i in range(10_000):
            t = T.bvadd(t, bv(1))
        assert evaluate(t, {x: 0}) == 10_000 % 256

    def test_shared_nodes_evaluated_once(self):
        x = T.bv_var("x", 8)
        t = T.bvmul(x, x)
        for _ in range(64):
            t = T.bvxor(t, t)  # collapses via simplifier to 0
        assert evaluate(t, {x: 3}) == 0
