"""Managed local verifier nodes (``repro cluster ... --spawn N``).

The supervisor launches N ``repro serve`` subprocesses on ephemeral
ports, each joined to a shared :class:`~repro.cluster.registry.
FileRegistry` so their bound addresses become discoverable, and owns
their lifecycle: readiness wait, SIGTERM drain on exit, and — the
reason this module exists — **abrupt death on demand**.  The chaos
site ``cluster.node.kill`` routes through :meth:`NodeSupervisor.kill`
so a seeded :class:`~repro.chaos.FaultPlan` can SIGKILL a shard at an
exact point mid-batch and the coordinator's failover is exercised
against a genuinely dead process, not a simulation of one.

Nodes inherit the parent's environment minus the chaos variables: a
fault plan installed to kill *nodes* must not also fire *inside* them
(the per-site invocation counters would desynchronize across
processes and the run would stop being reproducible).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence

from .. import chaos
from .registry import FileRegistry


class NodeStartupError(RuntimeError):
    """A spawned node failed to come up inside the readiness window."""


class ManagedNode:
    """One supervised ``repro serve`` subprocess."""

    def __init__(self, node_id: str, process: subprocess.Popen):
        self.node_id = node_id
        self.process = process
        self.addr: Optional[str] = None  # filled in once registered
        self.killed = False

    @property
    def alive(self) -> bool:
        return not self.killed and self.process.poll() is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ManagedNode(%s, %s, pid=%d)" % (
            self.node_id, self.addr, self.process.pid)


class NodeSupervisor:
    """Spawn, watch and kill a set of local verifier nodes."""

    def __init__(self, registry_path: str, count: int = 3,
                 serve_args: Sequence[str] = (), python: str = sys.executable,
                 node_prefix: str = "node", stdout_dir: Optional[str] = None):
        self.registry = FileRegistry(registry_path)
        self.count = max(1, count)
        self.serve_args = list(serve_args)
        self.python = python
        self.node_prefix = node_prefix
        self.stdout_dir = stdout_dir
        self.nodes: List[ManagedNode] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def spawn(self) -> List[ManagedNode]:
        """Launch the nodes (``--port 0`` + ``--join`` the registry).

        A literal ``{node}`` in any serve arg is replaced with the
        node's id, so per-node paths (e.g. each node's own cache file)
        can be templated in one shared argument list.
        """
        env = dict(os.environ)
        env.pop(chaos.CHAOS_ENV, None)
        env.pop(chaos.CHAOS_LOG_ENV, None)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = src_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        for i in range(self.count):
            node_id = "%s%d" % (self.node_prefix, i)
            cmd = [self.python, "-m", "repro", "serve",
                   "--port", "0",
                   "--join", self.registry.path,
                   "--node-id", node_id]
            cmd.extend(arg.replace("{node}", node_id)
                       for arg in self.serve_args)
            if self.stdout_dir:
                os.makedirs(self.stdout_dir, exist_ok=True)
                out = open(os.path.join(self.stdout_dir,
                                        node_id + ".log"), "w")
            else:
                out = open(os.devnull, "w")
            process = subprocess.Popen(cmd, stdout=out, stderr=out,
                                       env=env)
            out.close()
            self.nodes.append(ManagedNode(node_id, process))
        return self.nodes

    def wait_ready(self, timeout: float = 30.0) -> Dict[str, str]:
        """Block until every node registered; returns id → addr.

        A node that exits before registering fails the wait
        immediately — a cluster that silently started smaller than
        requested would invalidate any failover experiment run on it.
        """
        deadline = time.monotonic() + timeout
        want = {node.node_id for node in self.nodes}
        while time.monotonic() < deadline:
            for node in self.nodes:
                if node.addr is None and node.process.poll() is not None:
                    raise NodeStartupError(
                        "node %s exited with %s before registering"
                        % (node.node_id, node.process.returncode))
            data = self.registry.load()
            addrs = {node_id: record["addr"]
                     for node_id, record in data["nodes"].items()}
            if want <= set(addrs):
                for node in self.nodes:
                    node.addr = addrs[node.node_id]
                return {node.node_id: node.addr for node in self.nodes}
            time.sleep(0.05)
        raise NodeStartupError(
            "nodes %s not registered within %.1fs"
            % (sorted(want - set(self.registry.load()["nodes"])), timeout))

    # ------------------------------------------------------------------
    # Faults
    # ------------------------------------------------------------------

    def kill(self, which, sig: int = signal.SIGKILL) -> Optional[str]:
        """SIGKILL (by default) one node, by index or node id.

        Returns the killed node's id, or None when *which* names no
        live node (a second firing of the same fault is a no-op, not
        an error — fault plans may be reused across differently sized
        clusters).
        """
        node = self._find(which)
        if node is None or not node.alive:
            return None
        node.killed = True
        try:
            node.process.send_signal(sig)
        except OSError:  # pragma: no cover - already gone
            pass
        node.process.wait()
        return node.node_id

    def chaos_kill_hook(self, **ctx) -> Optional[str]:
        """Fire the ``cluster.node.kill`` site; act on it if it hits.

        The spec's ``args["node"]`` picks the victim (index or id,
        default 0); ``crash``/``oom``/``kill`` kinds all mean abrupt
        death (SIGKILL — the OOM-killer's signature), which is the
        point: no drain, no goodbye, in-flight requests cut mid-frame.
        """
        spec = chaos.fire("cluster.node.kill", **ctx)
        if spec is None:
            return None
        if spec.kind not in (chaos.KIND_CRASH, chaos.KIND_OOM,
                             chaos.KIND_KILL):
            return None
        return self.kill(spec.args.get("node", 0))

    def _find(self, which) -> Optional[ManagedNode]:
        if isinstance(which, int):
            if 0 <= which < len(self.nodes):
                return self.nodes[which]
            return None
        for node in self.nodes:
            if node.node_id == which:
                return node
        return None

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def stop_all(self, grace: float = 5.0) -> None:
        """SIGTERM everything still alive; escalate to SIGKILL."""
        for node in self.nodes:
            if node.alive:
                try:
                    node.process.send_signal(signal.SIGTERM)
                except OSError:  # pragma: no cover
                    pass
        deadline = time.monotonic() + grace
        for node in self.nodes:
            if node.killed:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                node.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - slow drain
                node.process.kill()
                node.process.wait()

    def __enter__(self) -> "NodeSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop_all()
