"""Figure 8 — the eight incorrect InstCombine transformations.

Every transformation the paper reported as an LLVM bug must be refuted
by the verifier, and the *kind* of refutation must match the paper's
categorization (§6.1): four introduce undefined behavior, two produce
wrong values, two introduce poison.
"""

from __future__ import annotations

from repro.core import verify
from repro.suite import load_bugs

# paper §6.1: "four bugs [introduced undefined behavior] ... two bugs
# where the value was incorrect ... two bugs where a transformation
# would generate a poison value"
EXPECTED_KINDS = {
    "PR20186": "domain",
    "PR20189": "poison",
    "PR21242": "poison",
    "PR21243": "value",
    "PR21245": "value",
    "PR21255": "domain",
    "PR21256": "domain",
    "PR21274": "domain",
}


def run_figure8(config):
    out = []
    for t in load_bugs():
        result = verify(t, config)
        kind = result.detail.split()[0] if result.detail else "?"
        out.append((t.name, result.status, kind, result.counterexample))
    return out


def test_figure8(benchmark, bench_config, report):
    rows = benchmark.pedantic(
        run_figure8, args=(bench_config,), iterations=1, rounds=1
    )
    report("Figure 8 — the eight wrong InstCombine transformations")
    report("")
    report("%-10s %-9s %-8s %s" % ("Bug", "verdict", "kind", "expected kind"))
    report("-" * 48)
    kinds = {}
    for name, status, kind, _cex in rows:
        kinds[name] = (status, kind)
        report("%-10s %-9s %-8s %s" % (name, status, kind,
                                       EXPECTED_KINDS[name]))
    domain = sum(1 for _, k in kinds.values() if k == "domain")
    poison = sum(1 for _, k in kinds.values() if k == "poison")
    value = sum(1 for _, k in kinds.values() if k == "value")
    report("")
    report("category totals: %d undefined-behavior, %d value, %d poison"
           % (domain, value, poison))
    report("paper (§6.1):    4 undefined-behavior, 2 value, 2 poison")

    for name, (status, kind) in kinds.items():
        assert status == "invalid", "%s must be refuted" % name
        assert kind == EXPECTED_KINDS[name], (name, kind)
    assert (domain, value, poison) == (4, 2, 2)
