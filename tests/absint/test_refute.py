"""Witness-validated refutation for discovery candidates.

``refute_candidate`` nominates a candidate whose source and target
root values are abstractly disjoint, then *replays* a concrete witness
through the strict interpreter semantics before declaring it invalid —
an abstract miss alone never drops anything, so the discovery
pre-filter cannot lose a sound candidate.
"""

from repro.absint.prove import refute_candidate
from repro.core import Config
from repro.ir import parse_transformation

FAST = Config(max_width=4, prefer_widths=(4,), max_type_assignments=2)


class TestRefuteCandidate:
    def test_disjoint_roots_yield_witness(self):
        # or .., 1 is always odd; and .., -2 is always even
        t = parse_transformation(
            "%r = or %x, 1\n=>\n%r = and %x, -2\n", "bad-cand")
        out = refute_candidate(t, FAST)
        assert out is not None
        assert out["src"] != out["tgt"]
        assert "%x" in out["witness"]
        # the recorded values really disagree on parity
        assert out["src"] % 2 == 1 and out["tgt"] % 2 == 0
        assert out["types"]

    def test_valid_rule_never_refuted(self):
        t = parse_transformation("%r = or %x, 0\n=>\n%r = %x\n", "good")
        assert refute_candidate(t, FAST) is None

    def test_overlapping_but_wrong_rule_not_nominated(self):
        # add %x, 1 vs add %x, 2 overlap abstractly (both top): the
        # pre-filter must pass it through to the engine, not guess
        t = parse_transformation(
            "%r = add %x, 1\n=>\n%r = add %x, 2\n", "subtle")
        assert refute_candidate(t, FAST) is None
