"""§6.2 — preventing new bugs: the three-revision patch review.

Paper: "in August 2014 a developer submitted a patch that improved the
performance of one of the SPEC CPU 2000 benchmarks by 3.8% ... We used
Alive to find bugs in the developer's initial and second proposed
patches, and we proved that the third one was correct."

The bundled ``patches.opt`` reproduces the trajectory: revision 1 is
refuted on values, revision 2 is refuted on poison, revision 3 is
proved correct.
"""

from __future__ import annotations

from repro.core import verify
from repro.suite import load_patches

EXPECTED = {
    "patch-v1": ("invalid", "value"),
    "patch-v2": ("invalid", "poison"),
    "patch-v3": ("valid", None),
}


def run_patch_review(config):
    out = []
    for t in load_patches():
        result = verify(t, config)
        kind = result.detail.split()[0] if result.counterexample else None
        out.append((t.name, result.status, kind, result))
    return out


def test_patch_review(benchmark, bench_config, report):
    rows = benchmark.pedantic(
        run_patch_review, args=(bench_config,), iterations=1, rounds=1
    )
    report("§6.2 — the three-revision patch review")
    report("")
    report("paper: v1 refuted, v2 refuted, v3 proved correct")
    report("")
    for name, status, kind, result in rows:
        expected_status, expected_kind = EXPECTED[name]
        line = "%-9s %-8s" % (name, status)
        if kind:
            line += " (%s bug)" % kind
        report(line)
        if result.counterexample is not None:
            report("  " + result.counterexample.format().replace("\n", "\n  "))
        assert status == expected_status, name
        if expected_kind is not None:
            assert kind == expected_kind, (name, kind)
