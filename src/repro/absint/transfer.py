"""Abstract transfer functions over :class:`~repro.absint.domains.AbsValue`.

Every function here abstracts the *total* SMT-LIB semantics used by the
encoder (:mod:`repro.core.semantics` via :mod:`repro.smt.terms`):
``bvudiv x 0 = all-ones``, ``bvsdiv x 0 = ±1``, ``bvurem/bvsrem x 0 =
x``, shifts saturate at ``amount ≥ width``.  Definedness and poison are
*not* part of the value abstraction — they are separate obligations
discharged by :mod:`repro.absint.prove`, exactly mirroring the ι/δ/ρ
split of the encoder.

The soundness contract, checked by :mod:`repro.absint.selfcheck`:

    for all abstract A, B and concrete x ∈ γ(A), y ∈ γ(B):
        total_binop(op, x, y, w) ∈ γ(transfer_binop(op, A, B))

:func:`total_binop` is the executable reference semantics; it delegates
to the same helpers the term constructors fold constants with, so the
abstraction and the solver cannot disagree about corner cases.

The backward demanded-bits transfer :func:`demanded_operands` obeys a
different contract (also self-checked): if two operand vectors agree on
the demanded operand bits, the results agree on the demanded result
bits.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..smt import terms as T
from .domains import AbsValue, KnownBits, SRange, URange, mask, to_signed

# ---------------------------------------------------------------------------
# Reference semantics (total, SMT-LIB): single source of truth shared
# with the term constructors' constant folding.
# ---------------------------------------------------------------------------

_TOTAL = {
    "add": lambda x, y, w: (x + y) & mask(w),
    "sub": lambda x, y, w: (x - y) & mask(w),
    "mul": lambda x, y, w: (x * y) & mask(w),
    "udiv": T._udiv_val,
    "sdiv": T._sdiv_val,
    "urem": T._urem_val,
    "srem": T._srem_val,
    "shl": T._shl_val,
    "lshr": T._lshr_val,
    "ashr": T._ashr_val,
    "and": lambda x, y, w: x & y,
    "or": lambda x, y, w: x | y,
    "xor": lambda x, y, w: x ^ y,
}

_ICMP_CONCRETE = {
    "eq": lambda x, y, w: x == y,
    "ne": lambda x, y, w: x != y,
    "ugt": lambda x, y, w: x > y,
    "uge": lambda x, y, w: x >= y,
    "ult": lambda x, y, w: x < y,
    "ule": lambda x, y, w: x <= y,
    "sgt": lambda x, y, w: to_signed(x, w) > to_signed(y, w),
    "sge": lambda x, y, w: to_signed(x, w) >= to_signed(y, w),
    "slt": lambda x, y, w: to_signed(x, w) < to_signed(y, w),
    "sle": lambda x, y, w: to_signed(x, w) <= to_signed(y, w),
}


def total_binop(opcode: str, x: int, y: int, width: int) -> int:
    """Concrete total semantics of a binop (SMT-LIB totalization)."""
    return _TOTAL[opcode](x & mask(width), y & mask(width), width)


def total_icmp(cond: str, x: int, y: int, width: int) -> int:
    """Concrete icmp over unsigned bit patterns; returns 0/1."""
    return 1 if _ICMP_CONCRETE[cond](x & mask(width), y & mask(width), width) else 0


def total_conv(opcode: str, x: int, w_in: int, w_out: int) -> int:
    """Concrete zext/sext/trunc (and the width-changing pointer casts)."""
    x &= mask(w_in)
    if opcode == "sext":
        return to_signed(x, w_in) & mask(w_out)
    # zext / trunc / bitcast / ptrtoint / inttoptr: plain re-masking
    return x & mask(w_out)


# ---------------------------------------------------------------------------
# Known-bits helpers
# ---------------------------------------------------------------------------


def _bit_choices(kb: KnownBits, i: int) -> Tuple[int, ...]:
    if (kb.kz >> i) & 1:
        return (0,)
    if (kb.ko >> i) & 1:
        return (1,)
    return (0, 1)


def _bits_add(a: KnownBits, b: KnownBits, carry_in: int) -> KnownBits:
    """Ripple-carry known-bits addition (exact per-bit propagation)."""
    w = a.width
    carries = {carry_in}
    kz = ko = 0
    for i in range(w):
        sums = set()
        outs = set()
        for x in _bit_choices(a, i):
            for y in _bit_choices(b, i):
                for c in carries:
                    s = x + y + c
                    sums.add(s & 1)
                    outs.add(s >> 1)
        if sums == {0}:
            kz |= 1 << i
        elif sums == {1}:
            ko |= 1 << i
        carries = outs
    return KnownBits(w, kz, ko)


def _bits_not(a: KnownBits) -> KnownBits:
    return KnownBits(a.width, a.ko, a.kz)


# ---------------------------------------------------------------------------
# Binary operations
# ---------------------------------------------------------------------------


def transfer_binop(opcode: str, a: AbsValue, b: AbsValue) -> AbsValue:
    """Abstract a binop under the total SMT semantics."""
    w = a.width
    if a.empty or b.empty:
        return AbsValue.bottom(w)
    if a.is_singleton() and b.is_singleton():
        return AbsValue.const(total_binop(opcode, a.value(), b.value(), w), w)
    handler = _BINOP_TRANSFERS[opcode]
    return handler(a, b, w)


def _t_add(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    bits = _bits_add(a.bits, b.bits, 0)
    full = mask(w)
    if a.ur.hi + b.ur.hi <= full:
        ur = URange(w, a.ur.lo + b.ur.lo, a.ur.hi + b.ur.hi)
    else:
        ur = URange.top(w)
    slo = a.sr.lo + b.sr.lo
    shi = a.sr.hi + b.sr.hi
    if -(1 << (w - 1)) <= slo and shi <= (1 << (w - 1)) - 1:
        sr = SRange(w, slo, shi)
    else:
        sr = SRange.top(w)
    return AbsValue(bits, ur, sr)


def _t_sub(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    bits = _bits_add(a.bits, _bits_not(b.bits), 1)
    if a.ur.lo >= b.ur.hi:
        ur = URange(w, a.ur.lo - b.ur.hi, a.ur.hi - b.ur.lo)
    else:
        ur = URange.top(w)
    slo = a.sr.lo - b.sr.hi
    shi = a.sr.hi - b.sr.lo
    if -(1 << (w - 1)) <= slo and shi <= (1 << (w - 1)) - 1:
        sr = SRange(w, slo, shi)
    else:
        sr = SRange.top(w)
    return AbsValue(bits, ur, sr)


def _t_mul(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    full = mask(w)
    # low bits: the low k bits of a product depend only on the low k
    # bits of the operands; trailing zeros of the operands add up
    ka = a.bits.trailing_known()
    kb = b.bits.trailing_known()
    k = min(ka, kb)
    kz = ko = 0
    if k:
        low = (a.bits.ko & mask(k)) * (b.bits.ko & mask(k)) & mask(k)
        kz = mask(k) & ~low
        ko = low
    tz = min(a.bits.trailing_zeros() + b.bits.trailing_zeros(), w)
    kz |= mask(tz) & ~ko
    bits = KnownBits(w, kz & full, ko & full)
    if a.ur.hi * b.ur.hi <= full:
        ur = URange(w, a.ur.lo * b.ur.lo, a.ur.hi * b.ur.hi)
    else:
        ur = URange.top(w)
    # signed: a bilinear form attains its extrema at box corners
    corners = [a.sr.lo * b.sr.lo, a.sr.lo * b.sr.hi,
               a.sr.hi * b.sr.lo, a.sr.hi * b.sr.hi]
    if -(1 << (w - 1)) <= min(corners) and max(corners) <= (1 << (w - 1)) - 1:
        sr = SRange(w, min(corners), max(corners))
    else:
        sr = SRange.top(w)
    return AbsValue(bits, ur, sr)


def _t_udiv(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    full = mask(w)
    out = AbsValue.bottom(w)
    if b.contains(0):
        out = out.join(AbsValue.const(full, w))  # bvudiv x 0 = all-ones
    if b.ur.hi >= 1:
        ylo = max(1, b.ur.lo)
        out = out.join(AbsValue.from_urange(
            URange(w, a.ur.lo // b.ur.hi, a.ur.hi // ylo)))
    return out


def _t_sdiv(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    if b.is_singleton() and b.value() == 1:
        return a
    int_min = -(1 << (w - 1))
    int_max = (1 << (w - 1)) - 1
    out = AbsValue.bottom(w)
    if b.contains(0):
        # bvsdiv x 0 = 1 for negative x, -1 otherwise
        out = out.join(AbsValue.from_srange(SRange(w, -1, min(1, int_max))))
    # |q| <= |x| for y != 0 (INT_MIN / -1 truncates back to INT_MIN)
    m = max(-a.sr.lo, a.sr.hi, 0)
    out = out.join(AbsValue.from_srange(
        SRange(w, max(int_min, -m), min(int_max, m))))
    return out


def _t_urem(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    out = AbsValue.bottom(w)
    if b.contains(0):
        out = out.join(a)  # bvurem x 0 = x
    if b.ur.hi >= 1:
        cand = AbsValue.from_urange(
            URange(w, 0, min(a.ur.hi, b.ur.hi - 1)))
        if b.is_singleton():
            p = b.value()
            if p and p & (p - 1) == 0:
                # power-of-two modulus is a bitwise and with p-1
                bits = KnownBits(
                    w,
                    (a.bits.kz & (p - 1)) | (mask(w) & ~(p - 1)),
                    a.bits.ko & (p - 1),
                )
                cand = cand.meet(AbsValue.from_bits(bits))
        out = out.join(cand)
    return out


def _t_srem(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    int_max = (1 << (w - 1)) - 1
    out = AbsValue.bottom(w)
    if b.contains(0):
        out = out.join(a)  # bvsrem x 0 = x
    # y != 0: |r| < |y| and |r| <= |x|; sign follows the dividend
    big = max(-b.sr.lo, b.sr.hi, 1)
    m = min(max(-a.sr.lo, a.sr.hi, 0), big - 1, int_max)
    lo = -m if a.sr.lo < 0 else 0
    hi = m if a.sr.hi > 0 else 0
    out = out.join(AbsValue.from_srange(SRange(w, lo, hi)))
    return out


def _shift_saturated(opcode: str, a: AbsValue, w: int) -> AbsValue:
    """The ``amount >= width`` case: 0 for shl/lshr, sign-fill for ashr."""
    if opcode != "ashr":
        return AbsValue.const(0, w)
    sign = 1 << (w - 1)
    if a.bits.kz & sign or a.sr.lo >= 0:
        return AbsValue.const(0, w)
    if a.bits.ko & sign or a.sr.hi < 0:
        return AbsValue.const(mask(w), w)
    return AbsValue.const(0, w).join(AbsValue.const(mask(w), w))


def _shift_const(opcode: str, a: AbsValue, s: int, w: int) -> AbsValue:
    """Shift by the known in-range amount ``s`` (0 <= s < w)."""
    if s == 0:
        return a
    full = mask(w)
    if opcode == "shl":
        bits = KnownBits(w, ((a.bits.kz << s) | mask(s)) & full,
                         (a.bits.ko << s) & full)
        if a.ur.hi << s <= full:
            ur = URange(w, a.ur.lo << s, a.ur.hi << s)
        else:
            ur = URange.top(w)
        return AbsValue(bits, ur, SRange.top(w))
    if opcode == "lshr":
        bits = KnownBits(w, (a.bits.kz >> s) | (full & ~mask(w - s)),
                         a.bits.ko >> s)
        ur = URange(w, a.ur.lo >> s, a.ur.hi >> s)
        return AbsValue(bits, ur, SRange.top(w))
    # ashr: bit i of the result is bit min(i+s, w-1) of the operand
    kz = ko = 0
    for i in range(w):
        j = min(i + s, w - 1)
        if (a.bits.kz >> j) & 1:
            kz |= 1 << i
        elif (a.bits.ko >> j) & 1:
            ko |= 1 << i
    sr = SRange(w, a.sr.lo >> s, a.sr.hi >> s)
    return AbsValue(KnownBits(w, kz, ko), URange.top(w), sr)


def _t_shift(opcode: str):
    def transfer(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
        out = AbsValue.bottom(w)
        for s in range(max(0, b.ur.lo), min(w - 1, b.ur.hi) + 1):
            if b.contains(s):
                out = out.join(_shift_const(opcode, a, s, w))
        if b.ur.hi >= w:
            out = out.join(_shift_saturated(opcode, a, w))
        return out

    return transfer


def _t_and(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    bits = KnownBits(w, a.bits.kz | b.bits.kz, a.bits.ko & b.bits.ko)
    ur = URange(w, 0, min(a.ur.hi, b.ur.hi))
    return AbsValue(bits, ur, SRange.top(w))


def _t_or(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    bits = KnownBits(w, a.bits.kz & b.bits.kz, a.bits.ko | b.bits.ko)
    hi = min(mask(w), (1 << max(a.ur.hi.bit_length(), b.ur.hi.bit_length())) - 1)
    ur = URange(w, max(a.ur.lo, b.ur.lo), max(hi, max(a.ur.lo, b.ur.lo)))
    return AbsValue(bits, ur, SRange.top(w))


def _t_xor(a: AbsValue, b: AbsValue, w: int) -> AbsValue:
    bits = KnownBits(
        w,
        (a.bits.kz & b.bits.kz) | (a.bits.ko & b.bits.ko),
        (a.bits.kz & b.bits.ko) | (a.bits.ko & b.bits.kz),
    )
    hi = min(mask(w), (1 << max(a.ur.hi.bit_length(), b.ur.hi.bit_length())) - 1)
    ur = URange(w, 0, hi)
    return AbsValue(bits, ur, SRange.top(w))


_BINOP_TRANSFERS = {
    "add": _t_add,
    "sub": _t_sub,
    "mul": _t_mul,
    "udiv": _t_udiv,
    "sdiv": _t_sdiv,
    "urem": _t_urem,
    "srem": _t_srem,
    "shl": _t_shift("shl"),
    "lshr": _t_shift("lshr"),
    "ashr": _t_shift("ashr"),
    "and": _t_and,
    "or": _t_or,
    "xor": _t_xor,
}


# ---------------------------------------------------------------------------
# Comparisons, selects, conversions
# ---------------------------------------------------------------------------


def icmp_decide(cond: str, a: AbsValue, b: AbsValue) -> Optional[bool]:
    """True/False when the comparison is abstractly decided, else None."""
    if a.empty or b.empty:
        return None
    if cond == "eq":
        if a.is_singleton() and b.is_singleton():
            return a.value() == b.value()
        if a.meet(b).empty:
            return False
        return None
    if cond == "ne":
        decided = icmp_decide("eq", a, b)
        return None if decided is None else not decided
    if cond in ("ugt", "uge", "sgt", "sge"):
        flipped = {"ugt": "ult", "uge": "ule", "sgt": "slt", "sge": "sle"}
        return icmp_decide(flipped[cond], b, a)
    if cond == "ult":
        if a.ur.hi < b.ur.lo:
            return True
        if a.ur.lo >= b.ur.hi:
            return False
        return None
    if cond == "ule":
        if a.ur.hi <= b.ur.lo:
            return True
        if a.ur.lo > b.ur.hi:
            return False
        return None
    if cond == "slt":
        if a.sr.hi < b.sr.lo:
            return True
        if a.sr.lo >= b.sr.hi:
            return False
        return None
    if cond == "sle":
        if a.sr.hi <= b.sr.lo:
            return True
        if a.sr.lo > b.sr.hi:
            return False
        return None
    raise ValueError("unknown icmp condition %r" % cond)


def transfer_icmp(cond: str, a: AbsValue, b: AbsValue) -> AbsValue:
    decided = icmp_decide(cond, a, b)
    if decided is None:
        return AbsValue.top(1)
    return AbsValue.const(1 if decided else 0, 1)


def transfer_select(c: AbsValue, a: AbsValue, b: AbsValue) -> AbsValue:
    if c.is_singleton():
        return a if c.value() == 1 else b
    return a.join(b)


def transfer_conv(opcode: str, a: AbsValue, w_out: int) -> AbsValue:
    """zext / sext / trunc plus the width-adjusting pointer casts
    (``bitcast``/``ptrtoint``/``inttoptr`` reduce to these by width)."""
    w_in = a.width
    if a.empty:
        return AbsValue.bottom(w_out)
    if w_out == w_in:
        return a
    if a.is_singleton():
        kind = "sext" if opcode == "sext" else "zext"
        return AbsValue.const(total_conv(kind, a.value(), w_in, w_out), w_out)
    if w_out > w_in and opcode == "sext":
        high = mask(w_out) & ~mask(w_in)
        sign = 1 << (w_in - 1)
        kz, ko = a.bits.kz, a.bits.ko
        if kz & sign:
            kz |= high
        elif ko & sign:
            ko |= high
        bits = KnownBits(w_out, kz, ko)
        sr = SRange(w_out, a.sr.lo, a.sr.hi)
        return AbsValue(bits, URange.top(w_out), sr)
    if w_out > w_in:
        # zext (and the widening pointer casts: zero-extension by width)
        full_out = mask(w_out)
        bits = KnownBits(w_out, a.bits.kz | (full_out & ~mask(w_in)), a.bits.ko)
        ur = URange(w_out, a.ur.lo, a.ur.hi)
        sr = SRange(w_out, a.ur.lo, a.ur.hi)
        return AbsValue(bits, ur, sr)
    # narrowing: trunc (and the narrowing pointer casts)
    low = mask(w_out)
    bits = KnownBits(w_out, a.bits.kz & low, a.bits.ko & low)
    if a.ur.hi <= low:
        ur = URange(w_out, a.ur.lo, a.ur.hi)
    else:
        ur = URange.top(w_out)
    int_min = -(1 << (w_out - 1))
    int_max = (1 << (w_out - 1)) - 1
    if int_min <= a.sr.lo and a.sr.hi <= int_max:
        sr = SRange(w_out, a.sr.lo, a.sr.hi)
    else:
        sr = SRange.top(w_out)
    return AbsValue(bits, ur, sr)


# ---------------------------------------------------------------------------
# Constant-expression operators (beyond the shared binops)
# ---------------------------------------------------------------------------


def transfer_constexpr(op: str, args, width: int) -> AbsValue:
    """Abstract the unary/function constant-expression operators."""
    w = width
    if any(a.empty for a in args):
        return AbsValue.bottom(w)
    if op == "neg":
        return transfer_binop("sub", AbsValue.const(0, w), args[0])
    if op == "not":
        return transfer_binop("xor", AbsValue.const(mask(w), w), args[0])
    if op in _BINOP_TRANSFERS:
        return transfer_binop(op, args[0], args[1])
    a = args[0]
    int_min = -(1 << (w - 1))
    int_max = (1 << (w - 1)) - 1
    if op == "abs":
        if a.is_singleton():
            s = to_signed(a.value(), w)
            return AbsValue.const(-s if s < 0 else s, w)
        if a.sr.lo > int_min:
            m = max(-a.sr.lo, a.sr.hi, 0)
            return AbsValue.from_srange(SRange(w, 0, min(m, int_max)))
        return AbsValue.top(w)
    if op == "log2":
        hi = max(0, a.ur.hi.bit_length() - 1)
        return AbsValue.from_urange(URange(w, 0, min(hi, mask(w))))
    if op == "umax":
        b = args[1]
        return AbsValue.from_urange(
            URange(w, max(a.ur.lo, b.ur.lo), max(a.ur.hi, b.ur.hi)))
    if op == "umin":
        b = args[1]
        return AbsValue.from_urange(
            URange(w, min(a.ur.lo, b.ur.lo), min(a.ur.hi, b.ur.hi)))
    if op == "smax":
        b = args[1]
        return AbsValue.from_srange(
            SRange(w, max(a.sr.lo, b.sr.lo), max(a.sr.hi, b.sr.hi)))
    if op == "smin":
        b = args[1]
        return AbsValue.from_srange(
            SRange(w, min(a.sr.lo, b.sr.lo), min(a.sr.hi, b.sr.hi)))
    raise ValueError("unknown constant-expression op %r" % op)


# ---------------------------------------------------------------------------
# Demanded bits (backward)
# ---------------------------------------------------------------------------


def _up_to_highest(demanded: int, width: int) -> int:
    """All bits at or below the highest demanded bit (carries only
    propagate upward)."""
    if demanded == 0:
        return 0
    return mask(min(demanded.bit_length(), width))


def _at_or_above_lowest(demanded: int, width: int) -> int:
    if demanded == 0:
        return 0
    low = (demanded & -demanded).bit_length() - 1
    return mask(width) & ~mask(low)


def demanded_operands(opcode: str, demanded: int, width: int,
                      shift: Optional[int] = None) -> Tuple[int, int]:
    """Backward transfer: which operand bits can influence the demanded
    result bits?  For shifts, ``shift`` is the concrete amount when the
    second operand is a known constant (the returned mask for ``b`` is
    then irrelevant — the caller holds it fixed).

    Contract (self-checked): if ``x ≡ x'`` on the first mask and
    ``y ≡ y'`` on the second, then ``op(x,y) ≡ op(x',y')`` on
    *demanded*.
    """
    w = width
    full = mask(w)
    if demanded == 0:
        return 0, 0
    demanded &= full
    if opcode in ("and", "or", "xor"):
        return demanded, demanded
    if opcode in ("add", "sub", "mul"):
        m = _up_to_highest(demanded, w)
        return m, m
    if opcode == "shl":
        if shift is not None:
            return (demanded >> shift) & full, full
        return _up_to_highest(demanded, w), full
    if opcode == "lshr":
        if shift is not None:
            return (demanded << shift) & full, full
        return _at_or_above_lowest(demanded, w), full
    if opcode == "ashr":
        if shift is not None:
            da = 0
            for i in range(w):
                if (demanded >> i) & 1:
                    da |= 1 << min(i + shift, w - 1)
            return da, full
        return _at_or_above_lowest(demanded, w) | (1 << (w - 1)), full
    # division/remainder: every bit of both operands can matter
    return full, full


def demanded_conv(opcode: str, demanded: int, w_in: int, w_out: int) -> int:
    """Backward transfer through a conversion: demanded input bits."""
    if demanded == 0:
        return 0
    demanded &= mask(w_out)
    if opcode in ("zext", "ptrtoint", "inttoptr", "bitcast"):
        return demanded & mask(w_in)
    if opcode == "sext":
        dx = demanded & mask(w_in)
        if demanded & ~mask(w_in - 1):
            dx |= 1 << (w_in - 1)
        return dx
    if opcode == "trunc":
        return demanded  # low bits map through unchanged
    raise ValueError("unsupported conversion %r" % opcode)
