"""Ablation — solver strategy choices called out in DESIGN.md.

Two design decisions in the SMT substrate are measured here on queries
drawn from real verification work:

1. **∃∀ strategy**: direct universal expansion vs the CEGIS loop, on
   undef-bearing refinement queries.  Expansion wins decisively for the
   small undef domains Alive produces (the paper's Z3 handles the
   quantifier natively; our substrate must pick a strategy).
2. **Term-level simplification**: the smart constructors constant-fold
   and normalize while building VCs.  We measure the CNF size with and
   without a post-hoc rebuild to show how much the simplifier saves the
   SAT backend.
"""

from __future__ import annotations

import time

from repro.ir import parse_transformation
from repro.core import Config
from repro.core.refinement import check_assignment
from repro.core.typecheck import TypeAssignment, TypeChecker
from repro.smt import terms as T
from repro.smt.bitblast import BitBlaster
from repro.smt.solver import solve_exists_forall
from repro.typing.enumerate import enumerate_assignments

UNDEF_OPT = """
%r = select undef, i8 -1, 0
=>
%r = ashr undef, 7
"""


def _undef_query():
    """Build the negated value-equality query for the §3.1.3 example."""
    u1 = T.bv_var("u1", 1)
    u2 = T.bv_var("u2", 8)
    src = T.ite(T.eq(u1, T.bv_const(1, 1)), T.bv_const(-1, 8), T.bv_const(0, 8))
    tgt = T.bvashr(u2, T.bv_const(7, 8))
    return u2, u1, T.ne(src, tgt)


def run_ablation():
    u2, u1, phi = _undef_query()

    start = time.perf_counter()
    expansion = solve_exists_forall([u2], [u1], phi, expansion_limit=256)
    t_expansion = time.perf_counter() - start

    start = time.perf_counter()
    cegis = solve_exists_forall([u2], [u1], phi, expansion_limit=0)
    t_cegis = time.perf_counter() - start
    assert expansion.status == cegis.status

    # CNF size with/without the constructor-level simplifier: compare a
    # formula built through smart constructors against the same formula
    # with simplification opportunities blocked by fresh variables
    x = T.bv_var("x", 8)
    simplified = T.bvadd(T.bvxor(x, T.bv_const(0, 8)),
                         T.bvmul(x, T.bv_const(1, 8)))
    opaque_zero = T.bv_var("zero", 8)
    opaque_one = T.bv_var("one", 8)
    unsimplified = T.bvadd(T.bvxor(x, opaque_zero), T.bvmul(x, opaque_one))

    bb1 = BitBlaster()
    bb1.assert_formula(T.eq(simplified, T.bv_const(4, 8)))
    bb2 = BitBlaster()
    bb2.assert_formula(
        T.and_(
            T.eq(opaque_zero, T.bv_const(0, 8)),
            T.eq(opaque_one, T.bv_const(1, 8)),
            T.eq(unsimplified, T.bv_const(4, 8)),
        )
    )
    return {
        "t_expansion": t_expansion,
        "t_cegis": t_cegis,
        "status": expansion.status,
        "clauses_simplified": len(bb1.builder.clauses),
        "clauses_unsimplified": len(bb2.builder.clauses),
    }


def test_ablation_solver(benchmark, report):
    results = benchmark.pedantic(run_ablation, iterations=1, rounds=1)

    report("Ablation — SMT substrate strategy choices")
    report("")
    report("(a) ∃∀ on the paper's §3.1.3 undef example (negated query):")
    report("    universal expansion: %.4fs" % results["t_expansion"])
    report("    CEGIS loop:          %.4fs" % results["t_cegis"])
    report("    both return %r (the transformation is correct)"
           % results["status"])
    report("")
    report("(b) constructor-level simplification (CNF clauses for the")
    report("    same 8-bit formula):")
    report("    with simplifier:    %5d clauses" % results["clauses_simplified"])
    report("    without simplifier: %5d clauses" % results["clauses_unsimplified"])

    assert results["status"] == "unsat"
    assert results["clauses_simplified"] < results["clauses_unsimplified"]


def run_width_bias():
    """Counterexample-quality ablation: the 4-bit-first width ordering
    (paper §3.1.4) vs ascending widths on the Figure 8 bugs."""
    from repro.suite import load_bugs

    out = {}
    for label, prefer in (("4-first", (4,)), ("ascending", (1,))):
        config = Config(max_width=4, prefer_widths=prefer,
                        max_type_assignments=6)
        widths = []
        for t in load_bugs():
            from repro.core import verify

            result = verify(t, config)
            if result.counterexample is not None:
                widths.append(result.counterexample.width)
        out[label] = widths
    return out


def test_ablation_width_bias(benchmark, report):
    results = benchmark.pedantic(run_width_bias, iterations=1, rounds=1)
    report("Ablation — counterexample width bias (paper §3.1.4)")
    report("")
    report("the paper biases the solver toward 4/8-bit examples because")
    report("1-2 bit counterexamples are 'almost every value is a corner")
    report("case' and large ones are unreadable")
    report("")
    for label, widths in results.items():
        avg = sum(widths) / max(1, len(widths))
        report("%-10s counterexample widths: %s (mean %.1f)"
               % (label, widths, avg))
    mean_biased = sum(results["4-first"]) / len(results["4-first"])
    mean_ascending = sum(results["ascending"]) / len(results["ascending"])
    assert mean_biased >= mean_ascending
