"""FP surface syntax and concrete semantics: parser, printer, fpops.

Three layers, no solver:

* parsing of FP types, instructions, literals and fast-math flags,
  including the span-carrying error for a misspelled flag;
* print → parse stability for FP constructs;
* :mod:`repro.ir.fpops` — the concrete IEEE-754 ground truth the
  symbolic encoder is differentially tested against.
"""

import math

import pytest

from repro.ir import ParseError, parse_transformation, transformation_str
from repro.ir import fpops
from repro.ir.ast import FBinOp, FCmp, FPLiteral

HALF = "half"


def parse_one(text):
    return parse_transformation(text)


class TestFPParsing:
    def test_fadd_with_flags(self):
        t = parse_one("Name: t\n%r = fadd nnan ninf half %x, 0.0\n"
                      "=>\n%r = %x\n")
        r = t.src["%r"]
        assert isinstance(r, FBinOp)
        assert r.opcode == "fadd"
        assert r.flags == ("nnan", "ninf")
        assert r.ty.kind == "half"

    def test_fcmp_predicate(self):
        t = parse_one("Name: t\n%r = fcmp ole half %x, %y\n=>\n"
                      "%r = fcmp olt half %x, %y\n")
        r = t.src["%r"]
        assert isinstance(r, FCmp)
        assert r.cond == "ole"

    def test_fp_literal_negative_zero(self):
        t = parse_one("Name: t\n%r = fadd half %x, -0.0\n=>\n%r = %x\n")
        lit = t.src["%r"].operands()[1]
        assert isinstance(lit, FPLiteral)
        assert math.copysign(1.0, lit.value) == -1.0

    def test_conversions_parse(self):
        t = parse_one(
            "Name: t\n"
            "%e = fpext half %x to float\n"
            "%r = fptrunc float %e to half\n"
            "=>\n%r = %x\n"
        )
        assert t.src["%e"].opcode == "fpext"
        assert t.src["%r"].opcode == "fptrunc"

    def test_misspelled_flag_reports_span(self):
        # satellite regression: `nszz` must fail with the line:col of
        # the offending token and the list of allowed flags, not a
        # generic "unexpected identifier"
        with pytest.raises(ParseError) as exc:
            parse_one("Name: t\n%r = fadd nszz half %x, 0.0\n=>\n%r = %x\n")
        msg = str(exc.value)
        assert "nszz" in msg
        assert "line 2:11" in msg
        assert "nnan" in msg and "fast" in msg  # the allowed list

    def test_flag_on_integer_op_rejected(self):
        with pytest.raises(ParseError):
            parse_one("Name: t\n%r = add nnan %x, 1\n=>\n%r = %x\n")


class TestFPPrinting:
    def test_flags_and_literals_roundtrip(self):
        text = ("Name: t\n%r = fadd nnan nsz half %x, -0.0\n"
                "=>\n%r = %x\n")
        t = parse_one(text)
        printed = transformation_str(t)
        assert "fadd nnan nsz half" in printed
        assert "-0.0" in printed
        again = parse_one(printed)
        assert transformation_str(again) == printed

    def test_fast_flag_roundtrip(self):
        t = parse_one("Name: t\n%r = fmul fast float %x, %y\n"
                      "=>\n%r = fmul fast float %y, %x\n")
        printed = transformation_str(t)
        assert "fmul fast float" in printed
        assert parse_one(printed).src["%r"].flags == ("fast",)


class TestFpopsValues:
    def test_float_roundtrip_specials(self):
        for value in (0.0, -0.0, 1.0, -2.5, float("inf"), float("-inf")):
            bits = fpops.from_float(value, HALF)
            back = fpops.to_float(bits, HALF)
            assert back == value
            assert math.copysign(1.0, back) == math.copysign(1.0, value)

    def test_nan_roundtrip(self):
        bits = fpops.from_float(float("nan"), HALF)
        assert fpops.is_nan(bits, HALF)
        assert bits == fpops.qnan_bits(HALF)

    def test_signed_zero_addition(self):
        # RNE: (-0.0) + (+0.0) == +0.0 — the fact behind fadd-zero-wrong
        neg = fpops.from_float(-0.0, HALF)
        pos = fpops.from_float(0.0, HALF)
        assert fpops.fbinop("fadd", neg, pos, HALF) == pos
        # ... while (-0.0) + (-0.0) == -0.0
        assert fpops.fbinop("fadd", neg, neg, HALF) == neg

    def test_inf_minus_inf_is_nan(self):
        inf = fpops.inf_bits(HALF)
        assert fpops.is_nan(fpops.fbinop("fsub", inf, inf, HALF), HALF)

    def test_zero_div_zero_is_nan(self):
        z = fpops.from_float(0.0, HALF)
        assert fpops.is_nan(fpops.fbinop("fdiv", z, z, HALF), HALF)

    def test_half_rounding(self):
        # 1 + 2^-11 rounds to 1.0 at half (10 mantissa bits, RNE ties
        # to even); 1 + 2^-10 is exactly representable
        one = fpops.from_float(1.0, HALF)
        tiny = fpops.fbinop("fadd", one, fpops.from_float(2.0 ** -11, HALF),
                            HALF)
        assert tiny == one
        ulp = fpops.fbinop("fadd", one, fpops.from_float(2.0 ** -10, HALF),
                           HALF)
        assert fpops.to_float(ulp, HALF) == 1.0 + 2.0 ** -10


class TestFpopsComparisons:
    def test_nan_is_unordered(self):
        nan = fpops.qnan_bits(HALF)
        one = fpops.from_float(1.0, HALF)
        assert not fpops.fcmp("oeq", nan, one, HALF)
        assert not fpops.fcmp("olt", nan, one, HALF)
        assert fpops.fcmp("une", nan, one, HALF)
        assert fpops.fcmp("uno", nan, nan, HALF)
        assert not fpops.fcmp("ord", nan, one, HALF)

    def test_zeros_compare_equal(self):
        neg = fpops.from_float(-0.0, HALF)
        pos = fpops.from_float(0.0, HALF)
        assert fpops.fcmp("oeq", neg, pos, HALF)
        assert not fpops.fcmp("olt", neg, pos, HALF)


class TestFpopsPoison:
    def test_nnan_poisons_nan_operand(self):
        nan = fpops.qnan_bits(HALF)
        one = fpops.from_float(1.0, HALF)
        res = fpops.fbinop("fadd", nan, one, HALF)
        assert fpops.fbinop_poisons("fadd", ("nnan",), nan, one, res, HALF)
        assert not fpops.fbinop_poisons("fadd", (), nan, one, res, HALF)

    def test_ninf_poisons_inf_result(self):
        big = fpops.from_float(65504.0, HALF)  # half max finite
        res = fpops.fbinop("fadd", big, big, HALF)
        assert fpops.is_inf(res, HALF)
        assert fpops.fbinop_poisons("fadd", ("ninf",), big, big, res, HALF)

    def test_fast_implies_nnan(self):
        nan = fpops.qnan_bits(HALF)
        one = fpops.from_float(1.0, HALF)
        res = fpops.fbinop("fmul", nan, one, HALF)
        assert fpops.fbinop_poisons("fmul", ("fast",), nan, one, res, HALF)

    def test_nsz_and_arcp_never_poison(self):
        neg = fpops.from_float(-0.0, HALF)
        res = fpops.fbinop("fadd", neg, neg, HALF)
        for flags in (("nsz",), ("arcp",)):
            assert not fpops.fbinop_poisons("fadd", flags, neg, neg, res,
                                            HALF)


class TestFpopsConversions:
    def test_fpext_is_exact(self):
        for value in (1.5, -2.5, 65504.0, float("inf")):
            half_bits = fpops.from_float(value, HALF)
            float_bits = fpops.fpconvert("fpext", half_bits, HALF, "float")
            assert fpops.to_float(float_bits, "float") == value

    def test_fptrunc_overflow_to_inf(self):
        # 65520 is the first double that rounds beyond half's range
        src = fpops.from_float(65520.0, "double")
        out = fpops.fpconvert("fptrunc", src, "double", HALF)
        assert fpops.is_inf(out, HALF) and not fpops.is_negative(out, HALF)

    def test_fptosi_truncates_toward_zero(self):
        bits = fpops.from_float(-2.7, HALF)
        assert fpops.fpconvert("fptosi", bits, HALF, 16) == (-2) & 0xFFFF

    def test_fptosi_nan_and_overflow_are_poison(self):
        assert fpops.fpconvert("fptosi", fpops.qnan_bits(HALF), HALF,
                               16) is None
        big = fpops.from_float(65504.0, HALF)
        assert fpops.fpconvert("fptosi", big, HALF, 8) is None
        assert fpops.fpconvert("fptoui", fpops.from_float(-1.0, HALF),
                               HALF, 8) is None

    def test_sitofp_rounds(self):
        # 2049 is not representable at half (11 significant bits):
        # RNE rounds to 2048
        out = fpops.fpconvert("sitofp", 2049, 16, HALF)
        assert fpops.to_float(out, HALF) == 2048.0
