"""The fp.opt corpus: shape, annotations, and engine verdict identity.

Full verification of fp.opt costs minutes through the pure-Python
solver (two rules are general-circuit proofs), so exhaustive verdict
checks live in the CI ``fp-corpus`` job and ``benchmarks/bench_fp.py``.
Tier-1 pins the cheap half: corpus shape against ``FP_EXPECTED``, and
— for the fast-path subset — that direct ``verify``, the batch engine,
and a warm cache replay hand back identical verdicts.
"""

import os

from repro.core import Config, verify
from repro.engine import EngineStats, ResultCache, run_batch
from repro.ir.ast import FBinOp, FCmp, FPLiteral
from repro.suite import FP_EXPECTED, load_fp

CFG = Config()

#: the literal-fast-path / small-circuit subset (milliseconds each);
#: the general-circuit rules are exercised by CI and the benchmark
CHEAP = [
    "FP:fadd-zero-wrong",
    "FP:fadd-neg-zero",
    "FP:fadd-zero-nsz",
    "FP:fsub-zero",
    "FP:fmul-one",
    "FP:fmul-neg-one",
    "FP:fneg-fneg",
    "FP:fcmp-ord-self",
    "FP:fcmp-ole-to-olt-wrong",
    "FP:sitofp-uitofp-wrong",
    "FP:fpext-lit",
    "FP:fptrunc-lit",
    "FP:fmul-one-float",
    "FP:fadd-neg-zero-double",
    "FP:fdiv-recip-arcp",
    "FP:fdiv-recip-pow2-arcp",
]


class TestCorpusShape:
    def test_loads_and_matches_expected(self):
        rules = load_fp()
        assert len(rules) >= 15
        assert {t.name for t in rules} == set(FP_EXPECTED)
        assert set(FP_EXPECTED.values()) == {"valid", "invalid"}

    def test_mixes_verdicts(self):
        # the file must keep at least one deliberately wrong rule per
        # family: arithmetic, comparison, conversion
        invalid = {n for n, s in FP_EXPECTED.items() if s == "invalid"}
        assert "FP:fadd-zero-wrong" in invalid
        assert "FP:fcmp-ole-to-olt-wrong" in invalid
        assert "FP:fptosi-sitofp-wrong" in invalid

    def test_every_rule_is_fp(self):
        # guard: nothing in fp.opt accidentally degenerates to an
        # integer-only rule (the point of the file is the FP encoder)
        for t in load_fp():
            nodes = list(t.src.values()) + list(t.tgt.values())
            ops = [v for n in nodes for v in (n,) + tuple(n.operands())]
            assert any(
                isinstance(v, (FBinOp, FCmp, FPLiteral))
                or getattr(getattr(v, "ty", None), "kind", None)
                in ("half", "float", "double")
                for v in ops
            ), t.name


class TestVerdictIdentity:
    def test_verify_engine_and_cache_agree(self, tmp_path):
        rules = [t for t in load_fp() if t.name in CHEAP]
        assert len(rules) == len(CHEAP)

        direct = {t.name: verify(t, CFG).status for t in rules}
        assert direct == {n: FP_EXPECTED[n] for n in CHEAP}

        cache = ResultCache(os.path.join(str(tmp_path), "fp.jsonl"))
        cold = {r.name: r.status
                for r in run_batch(rules, CFG, jobs=1, cache=cache)}
        warm_stats = EngineStats()
        warm = {r.name: r.status
                for r in run_batch(rules, CFG, jobs=1, cache=cache,
                                   stats=warm_stats)}
        assert cold == direct
        assert warm == direct
        assert warm_stats.to_dict()["jobs_executed"] == 0

    def test_refutation_decodes_special_value(self):
        (rule,) = [t for t in load_fp() if t.name == "FP:fadd-zero-wrong"]
        result = verify(rule, CFG)
        assert result.status == "invalid"
        assert "-0.0" in result.counterexample.format()
