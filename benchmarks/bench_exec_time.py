"""§6.4 execution time — code quality of LLVM+Alive vs full InstCombine.

Paper: "Code compiled with LLVM+Alive is (averaged across all SPEC
benchmarks) 3% slower than code compiled with LLVM 3.6 -O3 ... a
speedup of 7% with gcc, and ... a slowdown of 10% in the equake
benchmark.  The code generated with LLVM+Alive is slower with some
benchmarks because we have only translated a third of the InstCombine
optimizations."

We optimize the same synthetic modules with both rule sets and compare
the cost-model estimate per function (each function plays the role of
one SPEC benchmark).  Expected shape: LLVM+Alive code is a few percent
slower on average, with per-function deltas spanning both signs.
"""

from __future__ import annotations

import copy

from repro.opt import PeepholePass, baseline_rules, compile_opts, folding_rules
from repro.suite import load_all_flat
from repro.workload import WorkloadConfig, generate_module, module_cost
from repro.workload.costmodel import function_cost


def run_exec_time():
    # LLVM keeps folding outside InstCombine, so both pipelines fold
    alive_opts = folding_rules() + compile_opts(load_all_flat())
    full_rules = baseline_rules() + compile_opts(load_all_flat())

    cfg = WorkloadConfig(seed=99, functions=120, instructions=45)
    module_a = generate_module(cfg)
    module_b = generate_module(cfg)  # identical (deterministic seed)

    PeepholePass(alive_opts).run_module(module_a)
    PeepholePass(full_rules).run_module(module_b)

    per_function = []
    for fa, fb in zip(module_a.functions, module_b.functions):
        ca, cb = function_cost(fa), function_cost(fb)
        if cb > 0:
            per_function.append((fa.name, (ca - cb) / cb * 100.0))
    total_a, total_b = module_cost(module_a), module_cost(module_b)
    return total_a, total_b, per_function


def test_exec_time(benchmark, report):
    cost_alive, cost_full, per_function = benchmark.pedantic(
        run_exec_time, iterations=1, rounds=1
    )
    avg = (cost_alive - cost_full) / cost_full * 100.0
    worst = max(per_function, key=lambda kv: kv[1])
    best = min(per_function, key=lambda kv: kv[1])

    report("§6.4 execution time — cost-model estimate of optimized code")
    report("")
    report("paper: LLVM+Alive code averages 3%% slower; gcc 7%% faster,")
    report("equake 10%% slower (per-benchmark deltas span both signs)")
    report("")
    report("full-optimizer code cost:   %.0f" % cost_full)
    report("LLVM+Alive code cost:       %.0f" % cost_alive)
    report("average slowdown:           %.1f%%" % avg)
    report("worst function:             %s (%.1f%% slower)" % (worst[0], worst[1]))
    report("best function:              %s (%.1f%% faster)" % (best[0], -best[1]))
    slower = sum(1 for _, d in per_function if d > 0.5)
    equal = sum(1 for _, d in per_function if abs(d) <= 0.5)
    report("functions slower/equal/faster: %d/%d/%d"
           % (slower, equal, len(per_function) - slower - equal))

    # shape: subset-optimized code is somewhat slower on average but not
    # dramatically, and the distribution has a tail on the slow side
    assert 0.0 <= avg <= 25.0
    assert worst[1] > 0.0
