"""Tests for template matching against concrete IR (paper §4's match
semantics, hosted in Python)."""

import pytest

from repro.ir import parse_transformation
from repro.ir.module import MArg, MConst, MFunction
from repro.opt import Analyses, TemplateMatcher


def fn8(nargs=2):
    return MFunction("f", [MArg("%%a%d" % i, 8) for i in range(nargs)])


def matcher_for(text):
    return TemplateMatcher(parse_transformation(text))


class TestBasicMatching:
    def test_binop_with_constant_symbol(self):
        m = matcher_for("%r = add %x, C\n=>\n%r = add C, %x")
        fn = fn8()
        inst = fn.add("add", [fn.args[0], MConst(7, 8)], 8)
        match = m.match(inst, Analyses(fn))
        assert match is not None
        assert match.bindings["%x"] is fn.args[0]
        assert match.bindings["C"].value == 7

    def test_constant_symbol_requires_constant(self):
        m = matcher_for("%r = add %x, C\n=>\n%r = add C, %x")
        fn = fn8()
        inst = fn.add("add", [fn.args[0], fn.args[1]], 8)
        assert m.match(inst, Analyses(fn)) is None

    def test_opcode_mismatch(self):
        m = matcher_for("%r = add %x, C\n=>\n%r = add C, %x")
        fn = fn8()
        inst = fn.add("sub", [fn.args[0], MConst(7, 8)], 8)
        assert m.match(inst, Analyses(fn)) is None

    def test_nested_pattern(self):
        m = matcher_for("""
        %1 = xor %x, -1
        %2 = add %1, C
        =>
        %2 = sub C-1, %x
        """)
        fn = fn8()
        t1 = fn.add("xor", [fn.args[0], MConst(0xFF, 8)], 8)
        t2 = fn.add("add", [t1, MConst(3, 8)], 8)
        match = m.match(t2, Analyses(fn))
        assert match is not None
        assert match.bindings["%1"] is t1

    def test_literal_must_equal(self):
        m = matcher_for("%r = xor %x, -1\n=>\n%r = sub -1, %x")
        fn = fn8()
        good = fn.add("xor", [fn.args[0], MConst(0xFF, 8)], 8)
        bad = fn.add("xor", [fn.args[0], MConst(0xFE, 8)], 8)
        assert m.match(good, Analyses(fn)) is not None
        assert m.match(bad, Analyses(fn)) is None

    def test_repeated_input_must_be_same_value(self):
        m = matcher_for("%r = add %x, %x\n=>\n%r = shl %x, 1")
        fn = fn8()
        same = fn.add("add", [fn.args[0], fn.args[0]], 8)
        diff = fn.add("add", [fn.args[0], fn.args[1]], 8)
        assert m.match(same, Analyses(fn)) is not None
        assert m.match(diff, Analyses(fn)) is None

    def test_repeated_constant_matches_by_value(self):
        m = matcher_for("""
        %a = and %x, C
        %r = and %a, C
        =>
        %r = %a
        """)
        fn = fn8()
        a = fn.add("and", [fn.args[0], MConst(0x0F, 8)], 8)
        r = fn.add("and", [a, MConst(0x0F, 8)], 8)
        assert m.match(r, Analyses(fn)) is not None

    def test_flags_required_by_pattern(self):
        m = matcher_for("%r = add nsw %x, %y\n=>\n%r = add nsw %y, %x")
        fn = fn8()
        plain = fn.add("add", [fn.args[0], fn.args[1]], 8)
        flagged = fn.add("add", [fn.args[0], fn.args[1]], 8, flags=["nsw"])
        assert m.match(plain, Analyses(fn)) is None
        assert m.match(flagged, Analyses(fn)) is not None

    def test_pattern_without_flags_matches_flagged(self):
        m = matcher_for("%r = add %x, 0\n=>\n%r = %x")
        fn = fn8()
        inst = fn.add("add", [fn.args[0], MConst(0, 8)], 8, flags=["nuw"])
        assert m.match(inst, Analyses(fn)) is not None

    def test_icmp_condition_must_match(self):
        m = matcher_for("%c = icmp eq %x, %x\n=>\n%c = true")
        fn = fn8()
        eq = fn.add("icmp", [fn.args[0], fn.args[0]], 1, cond="eq")
        ne = fn.add("icmp", [fn.args[0], fn.args[0]], 1, cond="ne")
        assert m.match(eq, Analyses(fn)) is not None
        assert m.match(ne, Analyses(fn)) is None

    def test_explicit_type_annotation_restricts_width(self):
        m = matcher_for("%r = add i8 %x, %y\n=>\n%r = add %y, %x")
        fn16 = MFunction("g", [MArg("%x", 16), MArg("%y", 16)])
        wide = fn16.add("add", [fn16.args[0], fn16.args[1]], 16)
        assert m.match(wide, Analyses(fn16)) is None
        fn = fn8()
        narrow = fn.add("add", [fn.args[0], fn.args[1]], 8)
        assert m.match(narrow, Analyses(fn)) is not None

    def test_constexpr_operand_in_source(self):
        # `icmp sle %x, -1 u>> 1` style: constant expression must equal
        # the matched constant
        m = matcher_for("%r = and %x, -1 u>> C\n=>\n%a = shl %x, C\n%r = lshr %a, C")
        fn = fn8()
        # C is unbound when the constexpr is evaluated -> no match;
        # this documents that constexpr source operands only match once
        # their symbols are bound elsewhere first
        inst = fn.add("and", [fn.args[0], MConst(0x3F, 8)], 8)
        assert m.match(inst, Analyses(fn)) is None


class TestPreconditionEvaluation:
    def test_power_of_two_constant(self):
        m = matcher_for("Pre: isPowerOf2(C)\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)")
        fn = fn8()
        good = fn.add("mul", [fn.args[0], MConst(8, 8)], 8)
        bad = fn.add("mul", [fn.args[0], MConst(6, 8)], 8)
        assert m.match(good, Analyses(fn)) is not None
        assert m.match(bad, Analyses(fn)) is None

    def test_comparison_preconditions(self):
        m = matcher_for(
            "Pre: C1 u>= C2\n%a = shl %x, C1\n%r = lshr %a, C2\n=>\n"
            "%r = and %x, -1 u>> C2"
        )
        fn = fn8()
        a = fn.add("shl", [fn.args[0], MConst(3, 8)], 8)
        ok = fn.add("lshr", [a, MConst(2, 8)], 8)
        assert m.match(ok, Analyses(fn)) is not None
        b = fn.add("shl", [fn.args[0], MConst(1, 8)], 8)
        no = fn.add("lshr", [b, MConst(2, 8)], 8)
        assert m.match(no, Analyses(fn)) is None

    def test_signed_comparison(self):
        m = matcher_for("Pre: C > 0\n%r = sdiv %x, C\n=>\n%r = sdiv %x, C")
        fn = fn8()
        pos = fn.add("sdiv", [fn.args[0], MConst(3, 8)], 8)
        neg = fn.add("sdiv", [fn.args[0], MConst(0xFD, 8)], 8)
        assert m.match(pos, Analyses(fn)) is not None
        assert m.match(neg, Analyses(fn)) is None

    def test_masked_value_is_zero_via_known_bits(self):
        m = matcher_for(
            "Pre: MaskedValueIsZero(%x, ~C)\n%r = and %x, C\n=>\n%r = %x"
        )
        fn = fn8()
        # x = arg & 0x0F has its top nibble known zero
        masked = fn.add("and", [fn.args[0], MConst(0x0F, 8)], 8)
        covered = fn.add("and", [masked, MConst(0x0F, 8)], 8)
        assert m.match(covered, Analyses(fn)) is not None
        not_covered = fn.add("and", [masked, MConst(0x07, 8)], 8)
        assert m.match(not_covered, Analyses(fn)) is None

    def test_has_one_use(self):
        m = matcher_for(
            "Pre: hasOneUse(%a)\n%a = add %x, %y\n%r = mul %a, 2\n=>\n"
            "%b = shl %a, 1\n%r = %b"
        )
        fn = fn8()
        a = fn.add("add", [fn.args[0], fn.args[1]], 8)
        r = fn.add("mul", [a, MConst(2, 8)], 8)
        fn.ret = r
        assert m.match(r, Analyses(fn)) is not None
        # add a second use of %a: the precondition now fails
        extra = fn.add("xor", [a, r], 8)
        fn.ret = extra
        assert m.match(r, Analyses(fn)) is None

    def test_negated_predicate(self):
        m = matcher_for(
            "Pre: !isPowerOf2(C)\n%r = urem %x, C\n=>\n%r = urem %x, C"
        )
        fn = fn8()
        npow = fn.add("urem", [fn.args[0], MConst(6, 8)], 8)
        pow_ = fn.add("urem", [fn.args[0], MConst(8, 8)], 8)
        assert m.match(npow, Analyses(fn)) is not None
        assert m.match(pow_, Analyses(fn)) is None
