"""Differential tests: CDCL+bit-blasting vs brute-force enumeration.

These property tests are the linchpin of the reproduction: every
verification result downstream rests on the solver agreeing with the
ground-truth evaluator on the QF_BV fragment and on ∃∀ queries.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import terms as T
from repro.smt.brute import brute_check_sat, brute_exists_forall
from repro.smt.eval import evaluate
from repro.smt.solver import check_sat, solve_exists_forall

WIDTH = 3

VARS = [T.bv_var(n, WIDTH) for n in ("a", "b", "c")]

_BINOPS = [
    T.bvadd, T.bvsub, T.bvmul, T.bvudiv, T.bvsdiv, T.bvurem, T.bvsrem,
    T.bvshl, T.bvlshr, T.bvashr, T.bvand, T.bvor, T.bvxor,
]
_CMPS = [T.eq, T.ne, T.ult, T.ule, T.slt, T.sle, T.ugt, T.uge, T.sgt, T.sge]


def bv_terms(depth):
    """Hypothesis strategy for bitvector terms over VARS at WIDTH."""
    leaf = st.one_of(
        st.sampled_from(VARS),
        st.integers(0, (1 << WIDTH) - 1).map(lambda v: T.bv_const(v, WIDTH)),
    )
    if depth == 0:
        return leaf
    sub = bv_terms(depth - 1)
    return st.one_of(
        leaf,
        st.tuples(st.sampled_from(_BINOPS), sub, sub).map(lambda t: t[0](t[1], t[2])),
        sub.map(T.bvnot),
        sub.map(T.bvneg),
    )


def bool_terms(depth=2):
    cmp = st.tuples(st.sampled_from(_CMPS), bv_terms(depth), bv_terms(depth)).map(
        lambda t: t[0](t[1], t[2])
    )
    return st.one_of(
        cmp,
        st.tuples(cmp, cmp).map(lambda t: T.and_(t[0], t[1])),
        st.tuples(cmp, cmp).map(lambda t: T.or_(t[0], t[1])),
        cmp.map(T.not_),
    )


@settings(max_examples=120, deadline=None)
@given(bool_terms())
def test_check_sat_agrees_with_brute(formula):
    expected, _ = brute_check_sat(formula)
    result = check_sat(formula)
    assert result.status == expected
    if result.is_sat():
        model = {v: result.model.get(v, 0) for v in T.free_vars(formula)}
        assert evaluate(formula, model) == 1


@settings(max_examples=60, deadline=None)
@given(bool_terms(depth=1))
def test_validity_of_negation(formula):
    """sat(f) xor valid(not f)."""
    from repro.smt.solver import check_valid

    sat_res = check_sat(formula)
    valid_neg = check_valid(T.not_(formula))
    # not f is valid iff f is unsat
    assert sat_res.is_sat() == valid_neg.is_sat()


@settings(max_examples=40, deadline=None)
@given(bool_terms(depth=1))
def test_exists_forall_agrees_with_brute(formula):
    """Treat 'c' as universal, the rest as existential."""
    u = T.bv_var("c", WIDTH)
    expected, _ = brute_exists_forall([], [u], formula)
    result = solve_exists_forall([], [u], formula)
    assert result.status == expected
    if result.is_sat():
        # the returned outer model must make the formula hold for every u
        mapping = {v: T.bv_const(val, WIDTH) for v, val in result.model.items()}
        grounded = T.substitute(formula, mapping)
        for val in range(1 << WIDTH):
            g = T.substitute(grounded, {u: T.bv_const(val, WIDTH)})
            model = {v: 0 for v in T.free_vars(g)}
            assert evaluate(g, model) == 1


class TestKnownQueries:
    def test_demorgan_valid(self):
        x, y = T.bv_var("x", 8), T.bv_var("y", 8)
        f = T.eq(T.bvnot(T.bvand(x, y)), T.bvor(T.bvnot(x), T.bvnot(y)))
        assert check_sat(T.not_(f)).is_unsat()

    def test_mul_shift_equiv(self):
        x = T.bv_var("x", 8)
        f = T.eq(T.bvmul(x, T.bv_const(8, 8)), T.bvshl(x, T.bv_const(3, 8)))
        assert check_sat(T.not_(f)).is_unsat()

    def test_sub_is_add_neg(self):
        x, y = T.bv_var("x", 6), T.bv_var("y", 6)
        f = T.eq(T.bvsub(x, y), T.bvadd(x, T.bvneg(y)))
        assert check_sat(T.not_(f)).is_unsat()

    def test_udiv_known_value(self):
        x = T.bv_var("x", 8)
        f = T.and_(
            T.eq(T.bvudiv(x, T.bv_const(3, 8)), T.bv_const(5, 8)),
            T.eq(T.bvurem(x, T.bv_const(3, 8)), T.bv_const(2, 8)),
        )
        r = check_sat(f)
        assert r.is_sat()
        assert r.model[x] == 17

    def test_signed_division_rounding(self):
        # -7 sdiv 2 == -3 must be valid
        w = 8
        f = T.eq(
            T.bvsdiv(T.bv_const(-7, w), T.bv_const(2, w)), T.bv_const(-3, w)
        )
        assert f is T.TRUE  # constant-folded

    def test_sdiv_symbolic_negation(self):
        # (0 - x) sdiv y == 0 - (x sdiv y) is NOT valid (INT_MIN corner)
        x, y = T.bv_var("x", 4), T.bv_var("y", 4)
        zero = T.bv_const(0, 4)
        f = T.eq(T.bvsdiv(T.bvsub(zero, x), y), T.bvsub(zero, T.bvsdiv(x, y)))
        r = check_sat(T.not_(f))
        assert r.is_sat()  # counterexample exists (x = INT_MIN)

    def test_xor_add_transform(self):
        """The paper's running example at i8: (x ^ -1) + C == (C-1) - x."""
        x, c = T.bv_var("x", 8), T.bv_var("C", 8)
        lhs = T.bvadd(T.bvxor(x, T.bv_const(-1, 8)), c)
        rhs = T.bvsub(T.bvsub(c, T.bv_const(1, 8)), x)
        assert check_sat(T.ne(lhs, rhs)).is_unsat()

    def test_select_undef_ashr_example(self):
        """Paper §3.1.3: select undef ? -1 : 0  ==>  ashr undef, 3 at i4.

        Valid: ∀u2 ∃u1 : ite(u1) = u2 >> 3.  Negated: ∃u2 ∀u1 : ≠, which
        must be UNSAT.
        """
        u1 = T.bv_var("u1", 1)
        u2 = T.bv_var("u2", 4)
        src = T.ite(T.eq(u1, T.bv_const(1, 1)), T.bv_const(-1, 4), T.bv_const(0, 4))
        tgt = T.bvashr(u2, T.bv_const(3, 4))
        neg = solve_exists_forall([u2], [u1], T.ne(src, tgt))
        assert neg.is_unsat()

    def test_unknown_budget(self):
        # a hard multiplication equivalence with a tiny conflict budget
        x, y = T.bv_var("x", 12), T.bv_var("y", 12)
        f = T.eq(T.bvmul(x, y), T.bv_const(2039, 12))
        r = check_sat(f, conflict_limit=1)
        assert r.status in ("sat", "unknown")
