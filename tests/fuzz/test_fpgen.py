"""FP differential fuzzing: soft-float encoder vs IEEE-754 interpreter."""

import random

import pytest

from repro.fuzz import (
    Artifact,
    FuzzConfig,
    check_fp,
    check_fp_function,
    function_from_tree,
    function_to_tree,
    generate_fp_function,
    replay_artifact,
    run_campaign,
    run_fp_iteration,
    sample_inputs,
    shrink_fp_function,
)
from repro.fuzz.artifacts import load_corpus
from repro.smt import softfloat as SF
from repro.smt import terms as T

import os

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def test_generation_is_deterministic():
    fn1 = generate_fp_function(random.Random(7))
    fn2 = generate_fp_function(random.Random(7))
    assert function_to_tree(fn1) == function_to_tree(fn2)
    assert sample_inputs(random.Random(1), fn1, 4) == \
        sample_inputs(random.Random(1), fn2, 4)


def test_generated_functions_are_wellformed():
    for seed in range(20):
        fn = generate_fp_function(random.Random(seed))
        fn.verify()
        assert fn.ret is not None


def test_function_tree_roundtrip():
    for seed in range(10):
        fn = generate_fp_function(random.Random(seed))
        tree = function_to_tree(fn)
        assert function_to_tree(function_from_tree(tree)) == tree


def test_check_fp_agrees_on_seeds():
    """The fixed encoder and the interpreter agree across campaigns."""
    for seed in range(25):
        assert check_fp(seed, samples=6) == []


def test_run_fp_iteration_counts():
    report = run_fp_iteration(0, 0, samples=4)
    assert report.iterations == 1
    assert report.fp_checks == 1
    assert report.artifacts == []


def test_campaign_fp_pool_is_opt_in():
    base = FuzzConfig(mode="term", iters=4, jobs=1)
    assert base.fp is False
    report = run_campaign(FuzzConfig(mode="term", iters=4, jobs=1, fp=True))
    assert report.fp_checks == 4
    assert report.ok


def test_shrinker_finds_shortest_failing_prefix():
    fn = generate_fp_function(random.Random(3), max_instrs=5)
    assert len(fn.instrs) >= 2

    # a synthetic failure predicate: "fails" as soon as the program
    # contains at least one instruction — the shrinker must cut the
    # program down to exactly its first instruction
    shrunk = shrink_fp_function(fn, lambda cand: len(cand.instrs) >= 1)
    assert len(shrunk.instrs) == 1
    assert shrunk.ret is shrunk.instrs[0]
    used = {o.name for o in shrunk.instrs[0].operands
            if not isinstance(o, type(None)) and hasattr(o, "name")}
    assert all(a.name in used for a in shrunk.args)


def test_fp_artifact_roundtrip_and_replay():
    prog = {
        "args": [["%x", 16]],
        "instrs": [
            {"name": "%r", "op": "fptosi", "width": 32, "flags": [],
             "cond": None, "operands": ["%x"]},
        ],
        "ret": "%r",
    }
    art = Artifact("fp", "fp-poison", 0, 0,
                   {"program": prog, "inputs": [{"%x": 0x7C00}]})
    again = Artifact.from_json(art.to_json())
    assert again == art
    assert again.filename().startswith("fuzz-fp-")
    assert replay_artifact(again) == []


def test_fp_seed_artifact_replays_through_generator():
    art = Artifact("fp", "fp-value", 0, 0, {"fp_seed": 5})
    assert replay_artifact(art) == []


def test_corpus_contains_fp_reproducers():
    fps = [a for a in load_corpus(CORPUS_DIR) if a.kind == "fp"]
    assert len(fps) >= 3


def test_reproducer_detects_reintroduced_int_range_bug(monkeypatch):
    """Re-introduce the fp->int infinity leak; the checked-in corpus
    reproducer must catch it again."""
    original = SF.fp_to_int

    def buggy(opcode, fmt, width, x):
        value, in_range = original(opcode, fmt, width, x)
        # the original bug: infinities slipped past the range check
        # whenever their shifted significand fit the target width
        return value, T.or_(in_range, SF.is_inf(fmt, x))

    monkeypatch.setattr(SF, "fp_to_int", buggy)
    fps = [a for a in load_corpus(CORPUS_DIR)
           if a.kind == "fp" and a.check == "fp-poison"]
    assert fps, "fp-poison reproducer missing from corpus"
    assert any(replay_artifact(a) for a in fps)


def test_reproducer_detects_broken_conversion_overflow(monkeypatch):
    """Re-introduce a classic narrowing bug — overflow saturates to the
    largest finite value instead of rounding to infinity; the checked-in
    fptrunc reproducer must catch it."""
    original = SF.fpconvert_value

    def buggy(opcode, src, dst, x):
        value = original(opcode, src, dst, x)
        if opcode == "fptrunc":
            max_finite = ((((1 << dst.exp) - 2) << dst.man)
                          | ((1 << dst.man) - 1))
            saturated = T.ite(
                SF.sign_bool(dst, value),
                T.bv_const(max_finite | (1 << (dst.width - 1)), dst.width),
                T.bv_const(max_finite, dst.width))
            overflowed = T.and_(SF.is_inf(dst, value),
                                T.not_(SF.is_inf(src, x)))
            return T.ite(overflowed, saturated, value)
        return value

    monkeypatch.setattr(SF, "fpconvert_value", buggy)
    fps = [a for a in load_corpus(CORPUS_DIR)
           if a.kind == "fp" and "fptrunc" in str(a.data.get("program"))]
    assert fps, "fptrunc reproducer missing from corpus"
    assert any(replay_artifact(a) for a in fps)


def test_fp_disagreement_produces_shrunk_artifact(monkeypatch):
    """With an injected encoder bug the campaign iteration must emit a
    replayable artifact whose program is minimal."""
    original = SF.fbinop

    def buggy(opcode, fmt, a, b):
        result = original(opcode, fmt, a, b)
        if opcode == "fadd":
            # flip the sign of every fadd result
            return SF._flip_sign(fmt, result)
        return result

    monkeypatch.setattr(SF, "fbinop", buggy)
    found = []
    for index in range(30):
        report = run_fp_iteration(11, index, samples=8)
        found.extend(report.artifacts)
        if found:
            break
    assert found, "injected fadd bug was never exercised"
    art = found[0]
    assert art.kind == "fp"
    assert "program" in art.data and art.data["inputs"]
    # the artifact replays against the (still-buggy) encoder
    assert replay_artifact(art)
