"""CLI tests: the alive-repro subcommands end to end."""

import os

import pytest

from repro.cli import main

GOOD = """Name: good
%r = add %x, 0
=>
%r = %x
"""

BAD = """Name: bad
%r = add %x, 1
=>
%r = add %x, 2
"""

FLAGGED = """Name: flagged
%r = add nsw %x, %y
=>
%r = add %y, %x
"""


@pytest.fixture
def opt_file(tmp_path):
    def write(content, name="input.opt"):
        path = tmp_path / name
        path.write_text(content)
        return str(path)

    return write


class TestVerifyCommand:
    def test_valid_exits_zero(self, opt_file, capsys):
        rc = main(["verify", "--max-width", "4", opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "good: valid" in out
        assert "0 problem(s)" in out

    def test_invalid_exits_nonzero_with_counterexample(self, opt_file, capsys):
        rc = main(["verify", "--max-width", "4", opt_file(BAD)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ERROR: Mismatch in values" in out

    def test_multiple_files(self, opt_file, capsys):
        rc = main([
            "verify", "--max-width", "4",
            opt_file(GOOD, "a.opt"), opt_file(BAD, "b.opt"),
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "Verified 2 transformation(s)" in out


class TestInferCommand:
    def test_reports_attributes(self, opt_file, capsys):
        rc = main(["infer", "--max-width", "4", opt_file(FLAGGED)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strongest target attributes" in out
        assert "nsw" in out


class TestCodegenCommand:
    def test_emits_cpp(self, opt_file, capsys):
        rc = main(["codegen", opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "match(I" in out
        assert "replaceAllUsesWith" in out


class TestBugsCommand:
    def test_all_refuted(self, capsys):
        rc = main(["bugs", "--max-width", "4", "--max-types", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("PR20186", "PR21245", "PR21274"):
            assert name in out
        assert out.count("refuted") == 8
        assert "NOT refuted" not in out


class TestErrors:
    def test_no_command_prints_help(self, capsys):
        rc = main([])
        assert rc == 2

    def test_parse_error_reported(self, opt_file, capsys):
        rc = main(["verify", opt_file("%r = add %x\n=>\n%r = %x")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err


class TestDumpSmt:
    def test_scripts_emitted(self, opt_file, capsys):
        rc = main(["dump-smt", "--max-width", "4", opt_file(GOOD)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "(set-logic BV)" in out
        assert out.count("(check-sat)") == 3  # defined, poison, value
        assert "; good — negated value check" in out


class TestInferPreCommand:
    def test_precondition_synthesized(self, opt_file, capsys):
        rc = main([
            "infer-pre", "--max-width", "4", "--max-types", "2",
            opt_file("Name: fix-me\n%r = mul %x, C\n=>\n%r = shl %x, log2(C)\n"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "isPowerOf2(C)" in out


class TestCyclesCommand:
    def test_cycle_reported(self, opt_file, capsys):
        cyclic = ("Name: a\n%r = mul %x, 2\n=>\n%r = shl %x, 1\n\n"
                  "Name: b\n%r = shl %x, 1\n=>\n%r = mul %x, 2\n")
        rc = main(["cycles", opt_file(cyclic)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "cycle seeded by" in out

    def test_clean_set(self, opt_file, capsys):
        rc = main(["cycles", opt_file(GOOD)])
        assert rc == 0
        assert "no rewrite cycles" in capsys.readouterr().out
