"""Figure 9 — optimization firing counts under LLVM+Alive (§6.4).

The paper compiles the LLVM nightly suite + SPEC with the Alive-built
optimizer: ~87,000 total firings, 159 of the optimizations triggered,
the top ten accounting for ≈70% of all invocations, with a long tail.

We run the compiled corpus over the synthetic workload (DESIGN.md
documents the SPEC substitution) and report the same series.  Asserted
shape: a strongly head-heavy distribution (top-10 share between 50% and
90%), a long tail (≥ 25 distinct optimizations fired, many exactly
once or twice), and a total in the tens of thousands when scaled.
"""

from __future__ import annotations

from repro.opt import PeepholePass, compile_opts
from repro.suite import load_all_flat
from repro.workload import WorkloadConfig, generate_module


def run_figure9():
    opts = compile_opts(load_all_flat())
    module = generate_module(
        WorkloadConfig(seed=2015, functions=400, instructions=45,
                       pattern_rate=0.4)
    )
    pass_ = PeepholePass(opts)
    pass_.run_module(module)
    return pass_.stats


def test_figure9(benchmark, report):
    stats = benchmark.pedantic(run_figure9, iterations=1, rounds=1)
    counts = stats.sorted_counts()
    total = stats.total_fired()
    top10 = sum(c for _, c in counts[:10])
    singles = sum(1 for _, c in counts if c <= 2)

    report("Figure 9 — number of times each optimization fired")
    report("")
    report("paper: ~87,000 total firings over ~1M lines; 159 of 334")
    report("optimizations triggered; top-10 ~= 70%; long tail")
    report("")
    report("reproduced (synthetic workload, %d firings):" % total)
    report("")
    report("rank  count  optimization")
    for i, (name, count) in enumerate(counts, start=1):
        report("%4d  %5d  %s" % (i, count, name))
    report("")
    report("distinct optimizations fired: %d of %d compiled"
           % (len(counts), len(load_all_flat())))
    report("top-10 share: %.0f%% (paper ~70%%)" % (100.0 * top10 / total))
    report("fired at most twice (the long tail): %d" % singles)

    assert total > 1000
    assert len(counts) >= 25
    assert 0.5 <= top10 / total <= 0.9
    assert singles >= 5
