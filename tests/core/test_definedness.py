"""Table 1 — definedness constraints, checked exhaustively.

For every arithmetic instruction, the SMT definedness condition emitted
by the verifier must agree with the interpreter's notion of undefined
behavior at every input (width 4).
"""

import itertools

import pytest

from repro.core.semantics import definedness_condition
from repro.ir import intops
from repro.smt import terms as T
from repro.smt.eval import evaluate

WIDTH = 4

OPS = ["add", "sub", "mul", "udiv", "sdiv", "urem", "srem",
       "shl", "lshr", "ashr", "and", "or", "xor"]


@pytest.mark.parametrize("op", OPS)
def test_table1_matches_interpreter(op):
    a = T.bv_var("a", WIDTH)
    b = T.bv_var("b", WIDTH)
    cond = definedness_condition(op, a, b)
    for av, bv in itertools.product(range(1 << WIDTH), repeat=2):
        expected_defined = True
        try:
            intops.binop(op, av, bv, WIDTH)
        except intops.UndefinedBehavior:
            expected_defined = False
        got = bool(evaluate(cond, {a: av, b: bv}))
        assert got == expected_defined, (op, av, bv)


class TestSpecificRows:
    """Spot checks against the exact Table 1 entries."""

    def setup_method(self):
        self.a = T.bv_var("a", 8)
        self.b = T.bv_var("b", 8)

    def _defined(self, op, av, bv):
        cond = definedness_condition(op, self.a, self.b)
        return bool(evaluate(cond, {self.a: av, self.b: bv}))

    def test_sdiv_int_min_minus_one(self):
        assert not self._defined("sdiv", 0x80, 0xFF)  # INT_MIN / -1
        assert self._defined("sdiv", 0x80, 0xFE)       # INT_MIN / -2
        assert self._defined("sdiv", 0x7F, 0xFF)
        assert not self._defined("sdiv", 5, 0)

    def test_srem_same_rule(self):
        assert not self._defined("srem", 0x80, 0xFF)
        assert not self._defined("srem", 1, 0)

    def test_unsigned_division_only_zero(self):
        assert not self._defined("udiv", 0x80, 0)
        assert self._defined("udiv", 0x80, 0xFF)
        assert not self._defined("urem", 0, 0)

    def test_shifts_bounded_by_width(self):
        for op in ("shl", "lshr", "ashr"):
            assert self._defined(op, 1, 7)
            assert not self._defined(op, 1, 8)
            assert not self._defined(op, 1, 255)

    def test_always_defined_ops(self):
        for op in ("add", "sub", "mul", "and", "or", "xor"):
            cond = definedness_condition(op, self.a, self.b)
            assert cond is T.TRUE
