"""Metamorphic property tests of the whole verification pipeline.

Random source templates are generated, then paired with targets whose
correctness status is known *by construction*:

* identity      — target recomputes the same expression: always valid;
* commutation   — commutative root operands swapped: always valid;
* off-by-one    — target adds 1 to the root: always invalid
                  (x ≠ x + 1 at every width);
* flag-planting — an nsw added to a flag-free target root: must never
                  make an otherwise-valid transformation *more* valid.

Because the generator is unbiased over the instruction set, these checks
sweep encoder paths (definedness chains, poison chains, constant
expressions) that hand-written cases miss.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Config, verify
from repro.ir import parse_transformation

CFG = Config(max_width=4, prefer_widths=(4,), max_type_assignments=2)

_COMMUTATIVE = ["add", "mul", "and", "or", "xor"]
_ALL_BINOPS = _COMMUTATIVE + ["sub", "udiv", "sdiv", "urem", "srem",
                              "shl", "lshr", "ashr"]


@st.composite
def source_templates(draw, min_insts=1, max_insts=3):
    """A random straight-line source template over %x, %y and constants.

    Returns (lines, root_name, root_opcode).
    """
    n = draw(st.integers(min_insts, max_insts))
    lines = []
    values = ["%x", "%y"]
    name = None
    opcode = None
    for i in range(n):
        opcode = draw(st.sampled_from(_ALL_BINOPS))
        a = draw(st.sampled_from(values))
        b_kind = draw(st.sampled_from(["value", "const", "literal"]))
        if b_kind == "value":
            b = draw(st.sampled_from(values))
        elif b_kind == "const":
            b = "C"
        else:
            b = str(draw(st.integers(1, 3)))
        name = "%%t%d" % i
        lines.append("%s = %s %s, %s" % (name, opcode, a, b))
        values.append(name)
    return lines, name, opcode


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source_templates())
def test_identity_is_always_valid(template):
    lines, root, _ = template
    text = "\n".join(lines) + "\n=>\n" + "\n".join(lines)
    t = parse_transformation(text)
    result = verify(t, CFG)
    assert result.status == "valid", (text, result.detail)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source_templates(min_insts=1, max_insts=2), st.data())
def test_commuted_root_is_valid(template, data):
    lines, root, opcode = template
    if opcode not in _COMMUTATIVE:
        opcode = data.draw(st.sampled_from(_COMMUTATIVE))
        lines = lines[:-1] + ["%s = %s %s, %s" % (root, opcode, "%x", "%y")]
    # swap the root's operands in the target
    *prefix, last = lines
    parts = last.split("=", 1)[1].strip().split(" ", 1)[1]
    a, b = [p.strip() for p in parts.split(",")]
    target_lines = prefix + ["%s = %s %s, %s" % (root, opcode, b, a)]
    text = "\n".join(lines) + "\n=>\n" + "\n".join(target_lines)
    t = parse_transformation(text)
    result = verify(t, CFG)
    assert result.status == "valid", (text, result.detail)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(source_templates())
def test_off_by_one_is_always_invalid(template):
    lines, root, _ = template
    target = lines[:] + ["%bump = add " + root + ", 1"]
    # the bumped value overwrites nothing; instead make the root itself
    # the bumped computation by renaming
    target = lines[:-1] + [
        lines[-1].replace(root + " =", "%inner ="),
        "%s = add %%inner, 1" % root,
    ]
    text = "\n".join(lines) + "\n=>\n" + "\n".join(target)
    t = parse_transformation(text)
    # an always-undefined source (e.g. udiv by x^x) makes any target
    # vacuously correct; the property only applies to live sources
    from hypothesis import assume

    from repro.core.preinfer import _psi_satisfiable

    assume(_psi_satisfiable(t, CFG))
    result = verify(t, CFG)
    assert result.status == "invalid", text
    assert result.counterexample is not None


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.sampled_from(["add", "sub", "mul"]),
       st.sampled_from(["%y", "C"]))
def test_planted_nsw_never_valid_on_overflowing_op(opcode, operand):
    """Adding nsw to a flag-free source root is invalid: with free
    inputs/constants, signed overflow is always reachable."""
    text = "%%r = %s %%x, %s\n=>\n%%r = %s nsw %%x, %s" % (
        opcode, operand, opcode, operand
    )
    t = parse_transformation(text)
    result = verify(t, CFG)
    assert result.status == "invalid", text
    assert "poison" in result.detail
