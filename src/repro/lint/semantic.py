"""Tier-2 semantic lint checks and the engine worker that runs them.

Every check here is phrased as an SMT question over the same encodings
the verifier uses (:mod:`repro.core.semantics`), quantified over the
same feasible-type enumeration (:mod:`repro.typing.enumerate`):

* **dead precondition** — ``pre ∧ defined(src) ∧ ¬poison(src)`` is
  UNSAT for *every* feasible type assignment: the rule can never fire.
* **redundant clause** — for clause *i* of ``c₁ && … && cₙ``, the
  query ``(⋀_{j≠i} cⱼ) ∧ ¬cᵢ`` (under the same feasibility context) is
  UNSAT for every assignment: the other clauses already imply it.
* **subsumption** — the earlier rule's precondition, substituted
  through the structural match (:mod:`repro.lint.subsume`), is implied
  by the later rule's precondition: ``pre_specific ∧ ¬pre_general[σ]``
  UNSAT everywhere.
* **attribute slack** — Figure 6 inference (:mod:`repro.core.attrs`)
  disagrees with the declared nsw/nuw/exact placement.
* **rewrite cycle** — the concrete rewriter of :mod:`repro.opt.loops`
  fails to converge from this rule's instances.

Unlike verification-side precondition encoding — where an imprecise
``MUST`` analysis is modelled by a free boolean implied by the exact
condition — lint questions ask whether the rule can fire *at all*, so
:func:`encode_pre_exact` uses the exact semantic condition for MUST
builtins and a deterministic named boolean per SYNTACTIC call (two
occurrences of ``hasOneUse(%a)`` agree; distinct calls stay free).
This keeps "dead" meaning *semantically unsatisfiable*, not "the
analysis might not prove it".

The checks run as content-addressed jobs through the PR-1 engine
scheduler: each payload carries rule text (parse → print round-trips),
parameters and Config knobs; keys additionally bake in
:func:`lint_fingerprint`, which extends the engine's semantics
fingerprint with the ``lint`` and ``opt`` package sources so cached
lint verdicts invalidate when the linter itself changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Dict, List, Optional

from ..core.attrs import attribute_slots, infer_attributes
from ..core.config import Config
from ..core.semantics import (
    EncodeContext,
    TemplateEncoder,
    Unsupported,
    builtin_semantic_condition,
)
from ..core.typecheck import TypeAssignment, TypeChecker
from ..engine.cache import semantics_fingerprint
from ..ir import ast, parse_transformation
from ..ir.precond import (
    SYNTACTIC,
    Predicate,
    PredAnd,
    PredCall,
    PredCmp,
    PredNot,
    PredOr,
    PredTrue,
)
from ..opt import compile_opts
from ..opt.loops import detect_cycles
from ..smt import terms as T
from ..smt.solver import check_sat
from ..typing.constraints import TypeConstraintError
from ..typing.enumerate import enumerate_assignments
from .subsume import match_templates, substitute_predicate

_lint_fingerprint_memo: Optional[str] = None

#: packages beyond the engine's semantic set that define lint meaning
_LINT_PACKAGES = ("lint", "opt", "absint")


def lint_fingerprint() -> str:
    """Semantics fingerprint extended with the lint and opt sources.

    The engine cache already refuses entries whose fingerprint differs
    from the current tree; baking the extended hash into every job key
    additionally separates lint outcomes from verification outcomes
    and from older linter versions sharing one cache file.
    """
    global _lint_fingerprint_memo
    if _lint_fingerprint_memo is not None:
        return _lint_fingerprint_memo
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    digest = hashlib.sha256()
    digest.update(semantics_fingerprint().encode())
    for package in _LINT_PACKAGES:
        pkg_dir = os.path.join(root, package)
        for name in sorted(os.listdir(pkg_dir)):
            if not name.endswith(".py"):
                continue
            digest.update(("%s/%s\n" % (package, name)).encode())
            with open(os.path.join(pkg_dir, name), "rb") as handle:
                digest.update(handle.read())
    _lint_fingerprint_memo = digest.hexdigest()
    return _lint_fingerprint_memo


def lint_job_key(kind: str, bodies: List[str], params: dict,
                 knobs: dict) -> str:
    """Content-addressed key of one semantic lint job."""
    blob = json.dumps({
        "kind": kind,
        "bodies": bodies,
        "params": params,
        "knobs": knobs,
        "fingerprint": lint_fingerprint(),
    }, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# ---------------------------------------------------------------------------
# exact precondition encoding


def encode_pre_exact(pred: Predicate, encoder: TemplateEncoder) -> T.Term:
    """Encode a precondition with exact MUST semantics.

    Mirrors :func:`repro.core.semantics.encode_precondition` except:
    MUST builtins contribute their exact semantic condition (feasibility
    questions quantify over programs, not over analysis power), and
    SYNTACTIC builtins become named booleans keyed on their printed
    form, so the same call is one unknown rather than ``true``.
    """
    if isinstance(pred, PredTrue):
        return T.TRUE
    if isinstance(pred, PredAnd):
        return T.and_(*[encode_pre_exact(p, encoder) for p in pred.ps])
    if isinstance(pred, PredOr):
        return T.or_(*[encode_pre_exact(p, encoder) for p in pred.ps])
    if isinstance(pred, PredNot):
        return T.not_(encode_pre_exact(pred.p, encoder))
    if isinstance(pred, PredCmp):
        from ..core.semantics import _PRED_CMP_TERM
        a = encoder.value(pred.a)
        b = encoder.value(pred.b)
        return _PRED_CMP_TERM[pred.op](a, b)
    if isinstance(pred, PredCall):
        if pred.kind == SYNTACTIC:
            return T.bool_var("syn!%s" % pred)
        args = [encoder.value(a) for a in pred.args]
        return builtin_semantic_condition(pred.fn, args)
    raise Unsupported("cannot encode predicate %r" % (pred,))


def _feasibility_base(t: ast.Transformation, types: TypeAssignment,
                      config: Config):
    """(encoder, base) — source well-definedness under one assignment."""
    ctx = EncodeContext(types, config)
    encoder = TemplateEncoder(ctx, is_target=False)
    encoder.encode_template(t.src.values())
    root = t.src[t.root]
    base = T.and_(
        encoder.defined(root),
        encoder.poison_free(root),
        *ctx.side_constraints,
    )
    return encoder, base


def _clauses(pred: Predicate) -> List[Predicate]:
    if isinstance(pred, PredAnd):
        return list(pred.ps)
    return [pred]


# ---------------------------------------------------------------------------
# the checks (run inside worker processes)


def check_feasibility(t: ast.Transformation, config: Config) -> dict:
    """Dead-precondition + redundant-clause analysis for one rule.

    Returns ``{"assignments", "clauses", "dead", "redundant",
    "unknown"}``.  "dead" requires UNSAT at *every* feasible assignment
    with no solver give-ups; a clause is "redundant" only when the
    implication holds at every assignment (set-intersection semantics —
    one SAT or unknown at any assignment acquits it).
    """
    checker = TypeChecker()
    system = checker.check_transformation(t)
    clauses = _clauses(t.pre)
    n_clauses = len(clauses) if not isinstance(t.pre, PredTrue) else 0
    alive = False
    unknown = False
    candidates = set(range(n_clauses)) if n_clauses > 1 else set()
    assignments = 0
    for mapping in enumerate_assignments(
            system, max_width=config.max_width,
            prefer=config.prefer_widths,
            limit=config.max_type_assignments):
        assignments += 1
        types = TypeAssignment(checker, mapping)
        encoder, base = _feasibility_base(t, types, config)
        pre = encode_pre_exact(t.pre, encoder)
        result = check_sat(T.and_(pre, base),
                           conflict_limit=config.conflict_limit)
        if result.is_sat():
            alive = True
        elif not result.is_unsat():
            unknown = True
        for i in sorted(candidates):
            others = [encode_pre_exact(c, encoder)
                      for j, c in enumerate(clauses) if j != i]
            query = T.and_(*(others + [
                T.not_(encode_pre_exact(clauses[i], encoder)), base]))
            verdict = check_sat(query, conflict_limit=config.conflict_limit)
            if not verdict.is_unsat():
                candidates.discard(i)
    dead = assignments > 0 and not alive and not unknown
    redundant = sorted(candidates) if (alive and not unknown) else []
    return {
        "assignments": assignments,
        "clauses": n_clauses,
        "dead": dead,
        "redundant": redundant,
        "unknown": unknown,
    }


def check_subsumption(general: ast.Transformation,
                      specific: ast.Transformation,
                      config: Config) -> dict:
    """Does *general* (earlier in the file) shadow *specific*?

    Structural match first; then the precondition implication
    ``pre_specific ⇒ pre_general[σ]`` must hold at every feasible type
    assignment of the specific rule.
    """
    bindings = match_templates(general, specific)
    if bindings is None:
        return {"subsumed": False, "reason": "no structural match"}
    try:
        subst_pre = substitute_predicate(general.pre, bindings)
    except ast.AliveError as e:
        return {"subsumed": False, "reason": str(e)}
    if isinstance(subst_pre, PredTrue):
        # an unconditional general rule covers everything it matches
        return {"subsumed": True, "assignments": 0,
                "reason": "general precondition is trivially true"}
    checker = TypeChecker()
    system = checker.check_transformation(specific)
    # the substituted predicate may introduce literals/expressions the
    # specific rule never typed; register them before enumerating
    checker.visit_predicate(subst_pre)
    assignments = 0
    for mapping in enumerate_assignments(
            system, max_width=config.max_width,
            prefer=config.prefer_widths,
            limit=config.max_type_assignments):
        assignments += 1
        types = TypeAssignment(checker, mapping)
        encoder, base = _feasibility_base(specific, types, config)
        query = T.and_(
            encode_pre_exact(specific.pre, encoder),
            T.not_(encode_pre_exact(subst_pre, encoder)),
            base,
        )
        result = check_sat(query, conflict_limit=config.conflict_limit)
        if not result.is_unsat():
            return {"subsumed": False, "assignments": assignments,
                    "reason": "implication fails"}
    if assignments == 0:
        return {"subsumed": False, "reason": "untypeable"}
    return {"subsumed": True, "assignments": assignments,
            "reason": "precondition implied"}


class SubsumptionVerdict:
    """Result of :func:`subsumes`; truthy exactly when subsumed.

    Attributes:
        subsumed: does the general rule shadow the specific one?
        reason: human-readable justification either way.
        assignments: feasible type assignments the implication was
            proven at (0 when decided structurally).
    """

    __slots__ = ("subsumed", "reason", "assignments")

    def __init__(self, subsumed: bool, reason: str, assignments: int = 0):
        self.subsumed = subsumed
        self.reason = reason
        self.assignments = assignments

    def __bool__(self) -> bool:
        return self.subsumed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "SubsumptionVerdict(%r, %r)" % (self.subsumed, self.reason)


def subsumes(general: ast.Transformation,
             specific: ast.Transformation,
             config: Optional[Config] = None) -> SubsumptionVerdict:
    """Stable library entry point: does *general* shadow *specific*?

    True exactly when a pattern-directed rewriter trying *general*
    first would fire on every program *specific* matches: the general
    source template structurally covers the specific one (see
    :mod:`repro.lint.subsume` — purely syntactic, no commutativity)
    and ``pre_specific ⇒ pre_general[σ]`` holds at every feasible type
    assignment.  The structural check is a cheap AST walk, so callers
    (e.g. :mod:`repro.discover`'s rank stage) can fire this against a
    whole corpus without pre-filtering; the SMT implication only runs
    on structural matches.

    Memory rules never subsume (aliasing context is invisible to the
    structural matcher) and floating-point rules are declined rather
    than half-analyzed with the integer feasibility machinery.
    """
    if config is None:
        from ..core.config import DEFAULT_CONFIG
        config = DEFAULT_CONFIG
    from .subsume import uses_fp
    if uses_fp(general) or uses_fp(specific):
        return SubsumptionVerdict(
            False, "floating-point rules are outside the subsumption "
                   "lint's integer-only scope")
    raw = check_subsumption(general, specific, config)
    return SubsumptionVerdict(bool(raw.get("subsumed")),
                              raw.get("reason", ""),
                              raw.get("assignments", 0))


def check_attr_slack(t: ast.Transformation, config: Config) -> dict:
    """Diff declared nsw/nuw/exact flags against Figure 6 inference."""
    if not attribute_slots(t):
        return {"droppable": [], "strengthenable": []}
    result = infer_attributes(t, config)
    if result.weakest_source is None:
        return {"skipped": "rule does not verify as written"}
    original = set(result.original)
    weakest = set(result.weakest_source)
    strongest = set(result.strongest_target or ())
    droppable = sorted(
        "%s.%s" % (name, flag)
        for (template, name, flag) in original
        if template == "src" and ("src", name, flag) not in weakest)
    strengthenable = sorted(
        "%s.%s" % (name, flag)
        for (template, name, flag) in strongest
        if template == "tgt" and ("tgt", name, flag) not in original)
    return {
        "droppable": droppable,
        "strengthenable": strengthenable,
    }


def check_absint(t: ast.Transformation, config: Config) -> dict:
    """Abstract-interpretation lint for one rule.

    Two questions, both quantified over the feasible type enumeration:

    * **provable** — :func:`repro.absint.prove_refinement` discharges
      the refinement at *every* assignment, i.e. verifying this rule
      never needs the solver (the engine fast path always fires).
    * **refuted** — a precondition atom that the must-analysis proves
      always-false at every assignment, each carrying the concrete
      witness :func:`repro.absint.refuted_pre_atoms` validated through
      the interpreter semantics.  Intersection across assignments: an
      atom satisfiable at any width is acquitted.
    """
    from ..absint.prove import prove_refinement, refuted_pre_atoms

    checker = TypeChecker()
    system = checker.check_transformation(t)
    assignments = 0
    proved_all = True
    refuted: Optional[Dict[str, dict]] = None
    for mapping in enumerate_assignments(
            system, max_width=config.max_width,
            prefer=config.prefer_widths,
            limit=config.max_type_assignments):
        assignments += 1
        types = TypeAssignment(checker, mapping)
        if proved_all and not prove_refinement(t, types, config):
            proved_all = False
        found = {f["atom"]: f for f in refuted_pre_atoms(t, types, config)}
        if refuted is None:
            refuted = found
        else:
            refuted = {k: v for k, v in refuted.items() if k in found}
        if not proved_all and not refuted:
            break
    return {
        "assignments": assignments,
        "provable": assignments > 0 and proved_all,
        "refuted": sorted((refuted or {}).values(),
                          key=lambda f: f["atom"]),
    }


def check_cycles(rules: List[ast.Transformation], params: dict) -> dict:
    """Run the fixpoint-divergence detector over the whole rule set."""
    opts = compile_opts(rules)
    reports = detect_cycles(
        opts,
        width=int(params.get("width", 8)),
        samples_per_opt=int(params.get("samples", 3)),
        spin_limit=int(params.get("spin_limit", 64)),
        seed=int(params.get("seed", 0)),
    )
    return {"cycles": [{
        "opt": r.opt_name,
        "consts": {k: v for k, v in sorted(r.const_values.items())},
        "rules": list(r.spinning_rules),
        "fired": r.fired,
        "describe": r.describe(),
    } for r in reports]}


# ---------------------------------------------------------------------------
# the engine worker


def run_lint_job(payload: dict) -> dict:
    """Module-level worker for :class:`repro.engine.scheduler.Scheduler`.

    ``payload``: ``{"key", "kind", "texts": [rule text, ...], "params",
    "knobs"}``.  Returns an outcome dict with ``status: "ok"`` and the
    check's structured result under ``data`` — checks that cannot run
    (unsupported features, untypeable rules) report ``data.skipped``
    rather than failing the job, so the cache still learns them.
    """
    start = time.monotonic()
    kind = payload["kind"]
    params = payload.get("params", {})
    config = Config.from_dict(payload["knobs"])
    try:
        rules = [parse_transformation(text) for text in payload["texts"]]
        if kind == "feasibility":
            data = check_feasibility(rules[0], config)
        elif kind == "subsume":
            data = check_subsumption(rules[0], rules[1], config)
        elif kind == "attrs":
            data = check_attr_slack(rules[0], config)
        elif kind == "absint":
            data = check_absint(rules[0], config)
        elif kind == "cycles":
            data = check_cycles(rules, params)
        else:
            raise ast.AliveError("unknown lint job kind %r" % kind)
    except (Unsupported, TypeConstraintError, ast.AliveError) as e:
        data = {"skipped": str(e)}
    return {
        "key": payload["key"],
        "status": "ok",
        "kind": kind,
        "data": data,
        "elapsed": time.monotonic() - start,
    }
