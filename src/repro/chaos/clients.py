"""Misbehaving network clients for chaos-testing ``repro.serve``.

Worker crashes and torn writes are injected *inside* the process via
:mod:`repro.chaos.plan`; a hostile client, by definition, lives outside
it.  These helpers speak raw TCP so tests and the CI chaos-smoke job
can aim the exact attacks the server hardens against:

* :func:`send_malformed` — a frame that is not JSON; the server must
  answer with a structured ``bad_request`` error, not drop the
  connection silently or crash.
* :func:`send_oversize` — a frame above the server's bounded frame
  size; the server must reject and close without buffering it.
* :func:`slowloris` — open a connection, trickle (or send nothing),
  and hold it; the server's per-connection read deadline must reap it
  while ``/healthz`` stays responsive.

All helpers are blocking and self-contained (stdlib ``socket`` only)
so they run anywhere the CLI does.
"""

from __future__ import annotations

import socket
import time
from typing import Optional

from ..serve.client import parse_addr


def _connect(addr: str, timeout: float) -> socket.socket:
    host, port = parse_addr(addr)
    sock = socket.create_connection((host, port), timeout=timeout)
    return sock


def _read_reply(sock: socket.socket, timeout: float) -> bytes:
    """Read until newline, EOF, or timeout; returns what arrived."""
    sock.settimeout(timeout)
    chunks = []
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
    except socket.timeout:
        pass
    return b"".join(chunks)


def send_malformed(addr: str, payload: bytes = b"this is not json\n",
                   timeout: float = 10.0) -> bytes:
    """Send a non-JSON frame; returns the server's raw reply bytes."""
    with _connect(addr, timeout) as sock:
        sock.sendall(payload)
        return _read_reply(sock, timeout)


def send_oversize(addr: str, size: int = 8 * 1024 * 1024,
                  timeout: float = 10.0) -> bytes:
    """Send one giant frame; returns the reply (may be empty: closed)."""
    frame = b"{" + b"x" * size + b"}\n"
    with _connect(addr, timeout) as sock:
        try:
            sock.sendall(frame)
        except (BrokenPipeError, ConnectionResetError):
            return b""  # server already slammed the door: also a pass
        return _read_reply(sock, timeout)


def slowloris(addr: str, hold: float = 1.0,
              trickle: Optional[bytes] = b'{"id":',
              timeout: float = 10.0) -> dict:
    """Hold a half-sent request open for *hold* seconds.

    Returns ``{"closed_by_server": bool, "held": seconds}`` —
    ``closed_by_server`` is True when the read deadline reaped the
    connection before we gave up.
    """
    start = time.monotonic()
    with _connect(addr, timeout) as sock:
        if trickle:
            sock.sendall(trickle)  # a frame that never completes
        sock.settimeout(hold)
        closed = False
        try:
            while time.monotonic() - start < hold:
                chunk = sock.recv(4096)
                if not chunk:
                    closed = True  # server hung up on us: reaped
                    break
        except socket.timeout:
            pass
        except (ConnectionResetError, BrokenPipeError):
            closed = True
        return {"closed_by_server": closed,
                "held": time.monotonic() - start}
